"""Tests for the shared ANNIndex interface and QueryResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import ANNIndex, QueryResult


class TestQueryResult:
    def test_from_pairs_sorts(self):
        result = QueryResult.from_pairs([(3, 2.0), (1, 1.0), (2, 3.0)])
        np.testing.assert_array_equal(result.ids, [1, 3, 2])
        np.testing.assert_array_equal(result.distances, [1.0, 2.0, 3.0])

    def test_len(self):
        result = QueryResult(ids=np.array([1, 2]), distances=np.array([0.1, 0.2]))
        assert len(result) == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QueryResult(ids=np.array([1, 2]), distances=np.array([0.1]))

    def test_stats_default(self):
        result = QueryResult.from_pairs([(1, 1.0)])
        assert result.stats == {}


class _Dummy(ANNIndex):
    name = "Dummy"

    def build(self):
        self._built = True
        return self

    def query(self, q, k):
        q = self._validate_query(q, k)
        dists = np.linalg.norm(self.data - q, axis=1)
        order = np.argsort(dists)[:k]
        return QueryResult(ids=order, distances=dists[order])


class TestANNIndex:
    def test_properties(self, tiny_uniform):
        index = _Dummy(tiny_uniform)
        assert index.n == tiny_uniform.shape[0]
        assert index.d == tiny_uniform.shape[1]
        assert not index.is_built

    def test_rejects_bad_data(self):
        with pytest.raises(ValueError):
            _Dummy(np.zeros(5))
        with pytest.raises(ValueError):
            _Dummy(np.empty((0, 3)))

    def test_require_built(self, tiny_uniform):
        index = _Dummy(tiny_uniform)
        with pytest.raises(RuntimeError):
            index._require_built()

    def test_validate_query(self, tiny_uniform):
        index = _Dummy(tiny_uniform).build()
        with pytest.raises(ValueError):
            index.query(np.zeros(tiny_uniform.shape[1] + 1), 1)
        with pytest.raises(ValueError):
            index.query(tiny_uniform[0], 0)
