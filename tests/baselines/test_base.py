"""Tests for the shared ANNIndex interface and QueryResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import ANNIndex, QueryResult


class TestQueryResult:
    def test_from_pairs_sorts(self):
        result = QueryResult.from_pairs([(3, 2.0), (1, 1.0), (2, 3.0)])
        np.testing.assert_array_equal(result.ids, [1, 3, 2])
        np.testing.assert_array_equal(result.distances, [1.0, 2.0, 3.0])

    def test_from_pairs_breaks_ties_by_id(self):
        """Tied distances order by id — the same (distance, id) key the
        sharded engine's merge uses, so single-index and merged results
        agree on ties."""
        result = QueryResult.from_pairs([(9, 1.0), (2, 1.0), (5, 0.5), (7, 1.0)])
        np.testing.assert_array_equal(result.ids, [5, 2, 7, 9])
        np.testing.assert_array_equal(result.distances, [0.5, 1.0, 1.0, 1.0])

    def test_len(self):
        result = QueryResult(ids=np.array([1, 2]), distances=np.array([0.1, 0.2]))
        assert len(result) == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QueryResult(ids=np.array([1, 2]), distances=np.array([0.1]))

    def test_stats_default(self):
        result = QueryResult.from_pairs([(1, 1.0)])
        assert result.stats == {}


class _Dummy(ANNIndex):
    name = "Dummy"

    def _fit(self):
        pass

    def query(self, q, k):
        q = self._validate_query(q, k)
        dists = np.linalg.norm(self.data - q, axis=1)
        order = np.argsort(dists)[:k]
        return QueryResult(ids=order, distances=dists[order])


class TestANNIndex:
    def test_properties(self, tiny_uniform):
        index = _Dummy().fit(tiny_uniform)
        assert index.n == tiny_uniform.shape[0]
        assert index.d == tiny_uniform.shape[1]
        assert index.is_built

    def test_unfitted_index_has_no_shape(self):
        index = _Dummy()
        assert not index.is_built
        with pytest.raises(RuntimeError):
            index.n

    def test_rejects_bad_data(self):
        with pytest.raises(ValueError):
            _Dummy().fit(np.zeros(5))
        with pytest.raises(ValueError):
            _Dummy().fit(np.empty((0, 3)))

    def test_require_built(self):
        index = _Dummy()
        with pytest.raises(RuntimeError):
            index._require_built()

    def test_validate_query(self, tiny_uniform):
        index = _Dummy().fit(tiny_uniform)
        with pytest.raises(ValueError):
            index.query(np.zeros(tiny_uniform.shape[1] + 1), 1)
        with pytest.raises(ValueError):
            index.query(tiny_uniform[0], 0)

    def test_legacy_shims_removed(self, tiny_uniform):
        with pytest.raises(TypeError):
            _Dummy(tiny_uniform)
        index = _Dummy().fit(tiny_uniform)
        with pytest.raises(AttributeError):
            index.build()

    def test_default_search_matches_query(self, tiny_uniform):
        index = _Dummy().fit(tiny_uniform)
        queries = tiny_uniform[:6] + 0.001
        batch = index.search(queries, k=4)
        for i, q in enumerate(queries):
            np.testing.assert_array_equal(batch.ids[i], index.query(q, 4).ids)

    def test_default_add_refits(self, tiny_uniform):
        index = _Dummy().fit(tiny_uniform[:150])
        new_ids = index.add(tiny_uniform[150:])
        assert list(new_ids) == list(range(150, tiny_uniform.shape[0]))
        assert index.n == tiny_uniform.shape[0]
        hit = index.query(tiny_uniform[160], k=1)
        assert int(hit.ids[0]) == 160
