"""Tests for SRS: incremental projected-space NN + early termination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.srs import SRS


@pytest.fixture(scope="module")
def index(small_clustered):
    return SRS(m=15, c=1.5, seed=0).fit(small_clustered)


class TestSRS:
    def test_returns_k_sorted(self, index, small_clustered):
        result = index.query(small_clustered[1] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_recall_reflects_early_stop_tradeoff(self, index, small_clustered):
        # On tightly clustered data the χ² early-termination test passes
        # quickly (the k-th best distance sits far below the bulk of the
        # distance spectrum), trading recall for speed — the documented SRS
        # behaviour PM-LSH improves on.  The floor here only fences off
        # regressions; the integration suite checks realistic recall on the
        # emulated Audio workload.
        exact = ExactKNN().fit(small_clustered)
        rng = np.random.default_rng(2)
        def run(early_stop_threshold):
            srs = SRS(early_stop_threshold=early_stop_threshold, seed=0).fit(small_clustered)
            hits = total = 0
            for _ in range(15):
                base = small_clustered[rng.integers(0, srs.n)]
                q = base + rng.normal(size=small_clustered.shape[1]) * 0.5
                got = set(srs.query(q, 10).ids.tolist())
                truth = set(exact.query(q, 10).ids.tolist())
                hits += len(got & truth)
                total += 10
            return hits / total

        default_recall = run(0.8107)
        thorough_recall = run(0.99999)
        assert default_recall > 0.35
        assert thorough_recall > 0.85
        assert thorough_recall >= default_recall

    def test_candidates_respect_budget(self, index, small_clustered):
        result = index.query(small_clustered[0], k=5)
        budget = max(5, int(np.ceil(index.max_fraction * index.n)))
        assert result.stats["candidates"] <= budget

    def test_early_stop_reduces_work(self, small_clustered):
        """A permissive early-stop threshold should verify fewer candidates
        than a disabled one."""
        eager = SRS(early_stop_threshold=0.5, seed=1).fit(small_clustered)
        thorough = SRS(early_stop_threshold=0.999, seed=1).fit(small_clustered)
        q = small_clustered[0] + 0.01
        assert (
            eager.query(q, 5).stats["candidates"]
            <= thorough.query(q, 5).stats["candidates"]
        )

    def test_early_stop_zero_best_distance(self, index, small_clustered):
        """Query identical to a data point: best distance 0 triggers the
        guard (returns immediately once found)."""
        result = index.query(small_clustered[42], k=1)
        assert result.distances[0] == pytest.approx(0.0, abs=1e-12)

    def test_invalid_params(self, small_clustered):
        with pytest.raises(ValueError):
            SRS(c=1.0)
        with pytest.raises(ValueError):
            SRS(early_stop_threshold=1.0)
        with pytest.raises(ValueError):
            SRS(max_fraction=0.0)

    def test_full_fraction_is_near_exact(self, small_clustered):
        """With T = 1.0 and no early stop shortcut, SRS degenerates to an
        exhaustive scan in projected order — recall should be ~1."""
        index = SRS(max_fraction=1.0, early_stop_threshold=0.9999, seed=3).fit(small_clustered)
        exact = ExactKNN().fit(small_clustered)
        q = small_clustered[7] + 0.001
        got = set(index.query(q, 5).ids.tolist())
        truth = set(exact.query(q, 5).ids.tolist())
        assert len(got & truth) >= 4
