"""Tests for the exact oracle and the LScan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.lscan import LinearScan


class TestExactKNN:
    def test_matches_numpy(self, small_clustered):
        index = ExactKNN().fit(small_clustered)
        q = small_clustered[3] + 0.02
        result = index.query(q, k=8)
        dists = np.linalg.norm(small_clustered - q, axis=1)
        expected = np.argsort(dists, kind="stable")[:8]
        np.testing.assert_allclose(result.distances, np.sort(dists)[:8], rtol=1e-9)
        assert set(result.ids.tolist()) == set(int(i) for i in expected)

    def test_batch_matches_single(self, small_clustered):
        index = ExactKNN().fit(small_clustered)
        queries = small_clustered[:4] + 0.01
        batch = index.search(queries, k=5)
        for row, q in enumerate(queries):
            single = index.query(q, k=5)
            np.testing.assert_array_equal(batch.ids[row], single.ids)

    def test_batch_dimension_check(self, small_clustered):
        index = ExactKNN().fit(small_clustered)
        with pytest.raises(ValueError):
            index.search(np.zeros((2, 3)), k=1)


class TestLinearScan:
    def test_scans_requested_portion(self, small_clustered):
        index = LinearScan(portion=0.5, seed=0).fit(small_clustered)
        result = index.query(small_clustered[0], k=5)
        assert result.stats["candidates"] == pytest.approx(
            0.5 * small_clustered.shape[0], abs=1.0
        )

    def test_full_portion_is_exact(self, small_clustered):
        index = LinearScan(portion=1.0, seed=0).fit(small_clustered)
        exact = ExactKNN().fit(small_clustered)
        q = small_clustered[9] + 0.01
        np.testing.assert_array_equal(
            index.query(q, 10).ids, exact.query(q, 10).ids
        )

    def test_recall_limited_by_portion(self, small_clustered):
        """Expected recall ≈ portion for random subsets — LScan's ceiling
        in Table 4 (recall ≈ 0.7 at portion 0.7)."""
        index = LinearScan(portion=0.7, seed=1).fit(small_clustered)
        exact = ExactKNN().fit(small_clustered)
        rng = np.random.default_rng(2)
        recalls = []
        for _ in range(30):
            q = small_clustered[rng.integers(0, small_clustered.shape[0])] + 0.01
            got = set(index.query(q, 10).ids.tolist())
            truth = set(exact.query(q, 10).ids.tolist())
            recalls.append(len(got & truth) / 10)
        assert 0.55 <= float(np.mean(recalls)) <= 0.85

    def test_results_only_from_subset(self, small_clustered):
        index = LinearScan(portion=0.3, seed=3).fit(small_clustered)
        subset = set(index._subset.tolist())
        result = index.query(small_clustered[0], k=20)
        assert set(result.ids.tolist()) <= subset

    def test_invalid_portion(self):
        with pytest.raises(ValueError):
            LinearScan(portion=0.0)
        with pytest.raises(ValueError):
            LinearScan(portion=1.5)
