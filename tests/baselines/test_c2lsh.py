"""Tests for C2LSH (dynamic collision counting)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.c2lsh import C2LSH, derive_parameters
from repro.baselines.exact import ExactKNN
from repro.core.hashing import collision_probability


class TestParameterDerivation:
    def test_alpha_between_probabilities(self):
        n, c, w = 10_000, 1.5, 1.0
        m, alpha = derive_parameters(n, c, w, delta=1 / math.e, beta=100 / n)
        p1 = collision_probability(1.0, w)
        p2 = collision_probability(c, w)
        assert p2 < alpha < p1
        assert m >= 1

    def test_m_grows_with_n(self):
        m_small, _ = derive_parameters(1_000, 1.5, 1.0, 1 / math.e, 100 / 1_000)
        m_large, _ = derive_parameters(100_000, 1.5, 1.0, 1 / math.e, 100 / 100_000)
        assert m_large > m_small

    def test_invalid(self):
        with pytest.raises(ValueError):
            derive_parameters(0, 1.5, 1.0, 0.5, 0.1)
        with pytest.raises(ValueError):
            derive_parameters(10, 1.0, 1.0, 0.5, 0.1)


class TestC2LSHIndex:
    @pytest.fixture(scope="class")
    def data(self, small_clustered):
        return small_clustered[:400]

    @pytest.fixture(scope="class")
    def index(self, data):
        return C2LSH(c=1.5, seed=0).fit(data)

    def test_returns_k_sorted(self, index, data):
        result = index.query(data[0] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_recall_floor(self, index, data):
        exact = ExactKNN().fit(data)
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(10):
            q = data[rng.integers(0, index.n)] + 0.01
            got = set(index.query(q, 10).ids.tolist())
            truth = set(exact.query(q, 10).ids.tolist())
            hits += len(got & truth)
            total += 10
        assert hits / total > 0.7

    def test_threshold_in_range(self, index):
        assert 1 <= index.collision_threshold <= index.m

    def test_stats_populated(self, index, data):
        result = index.query(data[3], k=5)
        assert result.stats["rounds"] >= 1
        assert result.stats["candidates"] >= 5

    def test_deterministic(self, data):
        a = C2LSH(seed=9).fit(data).query(data[0], 5)
        b = C2LSH(seed=9).fit(data).query(data[0], 5)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_invalid_params(self, data):
        with pytest.raises(ValueError):
            C2LSH(c=1.0)
        with pytest.raises(ValueError):
            C2LSH(w=0.0)

    def test_bucket_alignment_differs_from_query_centering(self, index, data):
        """C2LSH's cells are grid-aligned: the query need not be centred in
        its own cell (the 'bucket-to-bucket' granularity weakness)."""
        q = data[0]
        query_shifted = (index._query_directions @ q) + index._offsets
        cell = index._unit_width
        # Position of the query inside its cell, per hash function.
        within = query_shifted - np.floor(query_shifted / cell) * cell
        assert within.min() >= 0.0
        assert within.max() <= cell
        # Some hash functions leave the query visibly off-centre.
        assert np.abs(within / cell - 0.5).max() > 0.2
