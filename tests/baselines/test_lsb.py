"""Tests for the LSB-Forest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.lsb import LSBForest


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:500]


@pytest.fixture(scope="module")
def index(data):
    return LSBForest(num_trees=4, m=8, seed=0).fit(data)


class TestLSBForest:
    def test_returns_k_sorted(self, index, data):
        result = index.query(data[0] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_trees_built(self, index):
        assert len(index._trees) == 4
        for tree in index._trees:
            assert len(tree) == index.n
            tree.check_invariants()

    def test_recall_floor(self, index, data):
        exact = ExactKNN().fit(data)
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(10):
            q = data[rng.integers(0, index.n)] + 0.01
            got = set(index.query(q, 10).ids.tolist())
            truth = set(exact.query(q, 10).ids.tolist())
            hits += len(got & truth)
            total += 10
        assert hits / total > 0.5

    def test_budget_respected(self, index, data):
        result = index.query(data[1], k=5)
        budget = max(5, int(np.ceil(index.budget_fraction * index.n)))
        # Union across trees can exceed a single tree's share but not the
        # total cursor steps (num_trees * per-tree share).
        assert result.stats["candidates"] <= budget + index.num_trees * 5

    def test_more_trees_no_worse_at_fixed_per_tree_budget(self, data):
        """With the per-tree cursor budget held constant, extra trees can
        only add candidate diversity (the LSB-*forest* argument)."""
        exact = ExactKNN().fit(data)

        def mean_recall(num_trees):
            forest = LSBForest(num_trees=num_trees, m=8, budget_fraction=min(1.0, 0.08 * num_trees), seed=3, ).fit(data)
            rng = np.random.default_rng(4)
            hits = 0
            for _ in range(10):
                q = data[rng.integers(0, forest.n)] + 0.01
                got = set(forest.query(q, 10).ids.tolist())
                truth = set(exact.query(q, 10).ids.tolist())
                hits += len(got & truth)
            return hits / 100

        assert mean_recall(4) >= mean_recall(1) - 0.05

    def test_deterministic(self, data):
        a = LSBForest(seed=8).fit(data).query(data[0], 5)
        b = LSBForest(seed=8).fit(data).query(data[0], 5)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_invalid_params(self, data):
        with pytest.raises(ValueError):
            LSBForest(num_trees=0)
        with pytest.raises(ValueError):
            LSBForest(w=-1.0)
        with pytest.raises(ValueError):
            LSBForest(budget_fraction=0.0)

    def test_explicit_width(self, data):
        forest = LSBForest(w=25.0, seed=0).fit(data)
        assert forest.w == 25.0
