"""Regression tests for per-bucket tombstone overfetch bounds.

``ANNIndex.run`` widens a kNN request so tombstoned ids cannot crowd
live results out of the window.  The old behaviour widened every batch
by the FULL tombstone count; bucketed backends now override
``_tombstone_overfetch`` with a structural bound — the worst probed
bucket's dead count per table, summed over tables — which is usually
far smaller.  The bound is only correct if tightening it never changes
results, which is exactly what these tests pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import create_index
from repro.queries import Knn


def _dataset(seed=4, n=1200, d=10):
    return np.random.default_rng(seed).normal(size=(n, d))


def _fresh(name, data, dead, **kwargs):
    index = create_index(name, seed=7, **kwargs).fit(data)
    index.delete(dead)
    return index


@pytest.mark.parametrize("name", ["e2lsh", "multi-probe"])
class TestStructuralBound:
    def test_results_equal_full_widening(self, name):
        """Tightening the overfetch cannot change any returned id/distance:
        the same index state queried with the structural bound and with
        the old full-count widening answers byte-identically."""
        data = _dataset()
        dead = list(range(0, 240, 2))
        queries = _dataset(seed=9, n=8, d=10)

        tight = _fresh(name, data, dead).run(queries, Knn(k=10))
        cls = type(create_index(name, seed=0))
        original = cls._tombstone_overfetch
        try:
            cls._tombstone_overfetch = lambda self, k: self.num_tombstones
            full = _fresh(name, data, dead).run(queries, Knn(k=10))
        finally:
            cls._tombstone_overfetch = original

        assert tight.ids.tobytes() == full.ids.tobytes()
        assert tight.distances.tobytes() == full.distances.tobytes()

    def test_no_dead_ids_returned(self, name):
        data = _dataset(seed=6)
        dead = list(range(0, 300, 3))
        index = _fresh(name, data, dead)
        result = index.run(_dataset(seed=2, n=6, d=10), Knn(k=12))
        returned = set(result.ids.ravel().tolist()) - {-1}
        assert not returned & set(dead)
        assert result.ids.shape == (6, 12)

    def test_bound_cached_per_epoch(self, name):
        data = _dataset()
        index = _fresh(name, data, list(range(50)))
        first = index._tombstone_overfetch(5)
        assert index._overfetch_cache == (index.epoch, first)
        assert index._tombstone_overfetch(5) == first  # served from cache
        index.delete([300])  # epoch bump invalidates
        second = index._tombstone_overfetch(5)
        assert index._overfetch_cache == (index.epoch, second)
        assert second >= first


def test_e2lsh_bound_is_genuinely_tighter():
    """The point of the fix: on spread-out deletes the per-bucket bound
    is far below the full tombstone count the old code widened by."""
    data = _dataset()
    dead = list(range(0, 200, 2))
    index = _fresh("e2lsh", data, dead)
    bound = index._tombstone_overfetch(10)
    assert bound < index.num_tombstones


def test_default_bound_is_full_tombstone_count():
    """Backends without bucket structure keep the always-safe default."""
    data = _dataset(n=400)
    index = create_index("lscan", seed=1).fit(data)
    index.delete(list(range(40)))
    assert index._tombstone_overfetch(5) == 40


def test_widening_clamped_to_dead_count():
    """Even if a structural bound over-counts (buckets overlap across
    tables), run() clamps the widening at the actual tombstone count."""
    data = _dataset(n=500)
    index = create_index("e2lsh", seed=1).fit(data)
    index.delete(list(range(10)))
    type(index)._tombstone_overfetch = lambda self, k: 10_000
    try:
        result = index.run(data[:3], Knn(k=5))
    finally:
        del type(index)._tombstone_overfetch
    assert result.ids.shape == (3, 5)
    returned = set(result.ids.ravel().tolist()) - {-1}
    assert returned and min(returned) >= 10
