"""Tests for basic E2LSH (§2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.e2lsh import E2LSH


@pytest.fixture(scope="module")
def index(small_clustered):
    return E2LSH(num_tables=8, m=6, w=None_or_default(), seed=0).fit(small_clustered)


def None_or_default():
    # E2LSH keeps a fixed w; use a width matched to the fixture's scale so
    # buckets are neither empty nor global.
    return 30.0


class TestBuild:
    def test_tables_created(self, index):
        assert len(index._tables) == 8
        total = sum(len(ids) for table in index._tables for ids in table.values())
        assert total == 8 * index.n

    def test_invalid_params(self, small_clustered):
        with pytest.raises(ValueError):
            E2LSH(num_tables=0)
        with pytest.raises(ValueError):
            E2LSH(probe_cap_per_table=0)


class TestBallCover:
    def test_near_query_found(self, index, small_clustered):
        q = small_clustered[0] + 1e-6
        nn = float(np.sort(np.linalg.norm(small_clustered - q, axis=1))[0])
        hit = index.ball_cover_query(q, r=max(nn, 1e-3) * 2, c=2.0)
        assert hit is not None
        _, dist = hit
        assert dist <= 2.0 * max(nn, 1e-3) * 2 + 1e-9

    def test_far_query_returns_none(self, index, small_clustered):
        q = small_clustered.max(axis=0) + 1000.0
        assert index.ball_cover_query(q, r=0.01, c=2.0) is None

    def test_invalid_args(self, index, small_clustered):
        with pytest.raises(ValueError):
            index.ball_cover_query(small_clustered[0], r=0.0, c=2.0)
        with pytest.raises(ValueError):
            index.ball_cover_query(small_clustered[0], r=1.0, c=1.0)


class TestQuery:
    def test_returns_k(self, index, small_clustered):
        result = index.query(small_clustered[4] + 0.01, k=5)
        assert len(result) == 5
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_reasonable_recall(self, index, small_clustered):
        from repro.baselines.exact import ExactKNN

        exact = ExactKNN().fit(small_clustered)
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(15):
            q = small_clustered[rng.integers(0, index.n)] + 0.01
            got = set(index.query(q, 5).ids.tolist())
            truth = set(exact.query(q, 5).ids.tolist())
            hits += len(got & truth)
            total += 5
        assert hits / total > 0.5
