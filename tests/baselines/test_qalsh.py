"""Tests for QALSH: parameter derivation, backends, query quality."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.qalsh import (
    QALSH,
    collision_probabilities,
    derive_parameters,
    optimal_bucket_width,
)


class TestParameterDerivation:
    def test_optimal_width_formula(self):
        c = 1.5
        expected = math.sqrt(8 * c * c * math.log(c) / (c * c - 1))
        assert optimal_bucket_width(c) == pytest.approx(expected)

    def test_width_rejects_c(self):
        with pytest.raises(ValueError):
            optimal_bucket_width(1.0)

    def test_probabilities_ordered(self):
        w = optimal_bucket_width(2.0)
        p1, p2 = collision_probabilities(w, 2.0)
        assert 0 < p2 < p1 < 1

    def test_m_grows_with_n(self):
        m_small, _, _ = derive_parameters(1_000, 1.5, delta=1 / math.e, beta=100 / 1_000)
        m_large, _, _ = derive_parameters(100_000, 1.5, delta=1 / math.e, beta=100 / 100_000)
        assert m_large > m_small

    def test_alpha_between_p2_p1(self):
        n, c = 10_000, 1.5
        m, alpha, w = derive_parameters(n, c, delta=1 / math.e, beta=100 / n)
        p1, p2 = collision_probabilities(w, c)
        assert p2 < alpha < p1

    def test_invalid(self):
        with pytest.raises(ValueError):
            derive_parameters(0, 1.5, 0.5, 0.1)
        with pytest.raises(ValueError):
            derive_parameters(10, 1.5, 0.0, 0.1)


class TestQALSHIndex:
    @pytest.fixture(scope="class")
    def data(self, small_clustered):
        return small_clustered[:400]

    @pytest.fixture(scope="class")
    def index(self, data):
        return QALSH(c=1.5, seed=0).fit(data)

    def test_returns_k_sorted(self, index, data):
        result = index.query(data[0] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_high_recall(self, index, data):
        exact = ExactKNN().fit(data)
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(10):
            q = data[rng.integers(0, index.n)] + 0.01
            got = set(index.query(q, 10).ids.tolist())
            truth = set(exact.query(q, 10).ids.tolist())
            hits += len(got & truth)
            total += 10
        assert hits / total > 0.8

    def test_backends_agree(self, data):
        """The sorted-array backend must be collision-for-collision
        equivalent to the B+-tree cursor backend."""
        array_backend = QALSH(backend="array", seed=3).fit(data)
        bptree_backend = QALSH(backend="bptree", seed=3).fit(data)
        for i in range(3):
            q = data[i] + 0.01
            a = array_backend.query(q, 5)
            b = bptree_backend.query(q, 5)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)

    def test_collision_threshold_positive(self, index):
        assert index.collision_threshold >= 1
        assert index.collision_threshold <= index.m

    def test_stats(self, index, data):
        result = index.query(data[2], k=3)
        assert result.stats["m"] == index.m
        assert result.stats["candidates"] >= 3

    def test_invalid_params(self, data):
        with pytest.raises(ValueError):
            QALSH(c=1.0)
        with pytest.raises(ValueError):
            QALSH(backend="gpu")
