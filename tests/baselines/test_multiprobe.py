"""Tests for Multi-Probe LSH, including the perturbation-sequence generator."""

from __future__ import annotations


import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.multiprobe import MultiProbeLSH


class TestPerturbationSequence:
    def test_home_bucket_first(self):
        to_lower = np.array([0.3, 0.7])
        to_upper = np.array([0.7, 0.3])
        sequence = MultiProbeLSH.perturbation_sequence(to_lower, to_upper, 5)
        assert sequence[0] == []

    def test_scores_non_decreasing(self):
        rng = np.random.default_rng(0)
        to_lower = rng.uniform(0.1, 1.0, size=6)
        to_upper = 1.0 - to_lower + 0.1

        def score(perturbation):
            total = 0.0
            for axis, delta in perturbation:
                total += (to_lower[axis] if delta == -1 else to_upper[axis]) ** 2
            return total

        sequence = MultiProbeLSH.perturbation_sequence(to_lower, to_upper, 30)
        scores = [score(p) for p in sequence]
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))

    def test_no_axis_repeated_within_set(self):
        rng = np.random.default_rng(1)
        to_lower = rng.uniform(0.1, 1.0, size=5)
        to_upper = rng.uniform(0.1, 1.0, size=5)
        for perturbation in MultiProbeLSH.perturbation_sequence(to_lower, to_upper, 40):
            axes = [axis for axis, _ in perturbation]
            assert len(axes) == len(set(axes))

    def test_no_duplicate_sets(self):
        rng = np.random.default_rng(2)
        to_lower = rng.uniform(0.1, 1.0, size=4)
        to_upper = rng.uniform(0.1, 1.0, size=4)
        sequence = MultiProbeLSH.perturbation_sequence(to_lower, to_upper, 25)
        frozen = [tuple(sorted(p)) for p in sequence]
        assert len(frozen) == len(set(frozen))

    def test_count_respected(self):
        to_lower = np.array([0.5])
        to_upper = np.array([0.5])
        assert len(MultiProbeLSH.perturbation_sequence(to_lower, to_upper, 1)) == 1

    def test_covers_cheapest_singletons(self):
        """The first few perturbations must include the globally cheapest
        single-axis shifts."""
        to_lower = np.array([0.1, 0.9, 0.5])
        to_upper = np.array([0.9, 0.1, 0.5])
        sequence = MultiProbeLSH.perturbation_sequence(to_lower, to_upper, 3)
        assert [(0, -1)] in sequence  # cost 0.01
        assert [(1, +1)] in sequence  # cost 0.01


class TestMultiProbeIndex:
    @pytest.fixture(scope="class")
    def index(self, small_clustered):
        return MultiProbeLSH(num_tables=4, m=8, seed=0).fit(small_clustered)

    def test_width_calibrated(self, index):
        assert index.w is not None and index.w > 0

    def test_returns_k_sorted(self, index, small_clustered):
        result = index.query(small_clustered[0] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_decent_recall_on_clustered(self, index, small_clustered):
        exact = ExactKNN().fit(small_clustered)
        rng = np.random.default_rng(3)
        hits = total = 0
        for _ in range(15):
            q = small_clustered[rng.integers(0, index.n)] + 0.01
            got = set(index.query(q, 10).ids.tolist())
            truth = set(exact.query(q, 10).ids.tolist())
            hits += len(got & truth)
            total += 10
        assert hits / total > 0.6

    def test_more_probes_no_worse(self, small_clustered):
        exact = ExactKNN().fit(small_clustered)

        def mean_recall(num_probes):
            index = MultiProbeLSH(num_tables=2, m=8, num_probes=num_probes, seed=4).fit(small_clustered)
            rng = np.random.default_rng(5)
            hits = 0
            for _ in range(10):
                q = small_clustered[rng.integers(0, index.n)] + 0.01
                got = set(index.query(q, 10).ids.tolist())
                truth = set(exact.query(q, 10).ids.tolist())
                hits += len(got & truth)
            return hits / 100

        assert mean_recall(32) >= mean_recall(1) - 0.05

    def test_explicit_width_respected(self, small_clustered):
        index = MultiProbeLSH(w=12.0, seed=0).fit(small_clustered)
        assert index.w == 12.0

    def test_invalid_params(self, small_clustered):
        with pytest.raises(ValueError):
            MultiProbeLSH(num_tables=0)
        with pytest.raises(ValueError):
            MultiProbeLSH(w=-1.0)
        with pytest.raises(ValueError):
            MultiProbeLSH(max_candidates_fraction=0.0)
        with pytest.raises(ValueError):
            MultiProbeLSH(width_scale=0.0)
