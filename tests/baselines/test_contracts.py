"""Contract tests every ANN algorithm must satisfy, run against all nine
implementations through the shared interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    C2LSH,
    E2LSH,
    ExactKNN,
    LSBForest,
    LinearScan,
    MultiProbeLSH,
    PMLSH,
    PMLSHParams,
    QALSH,
    RLSH,
    SRS,
)

FACTORIES = {
    "PM-LSH": lambda data: PMLSH(data, params=PMLSHParams(node_capacity=32), seed=3),
    "SRS": lambda data: SRS(data, seed=3),
    "QALSH": lambda data: QALSH(data, seed=3),
    "Multi-Probe": lambda data: MultiProbeLSH(data, seed=3),
    "R-LSH": lambda data: RLSH(data, params=PMLSHParams(node_capacity=32), seed=3),
    "LScan": lambda data: LinearScan(data, seed=3),
    "E2LSH": lambda data: E2LSH(data, w=30.0, seed=3),
    "C2LSH": lambda data: C2LSH(data, seed=3),
    "LSB-Forest": lambda data: LSBForest(data, seed=3),
    "Exact": lambda data: ExactKNN(data),
}


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:400]


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def built(request, data):
    return FACTORIES[request.param](data).build()


class TestUniversalContracts:
    def test_query_before_build_raises(self, data):
        for name, make in FACTORIES.items():
            index = make(data)
            with pytest.raises(RuntimeError):
                index.query(data[0], 1)

    def test_returns_exactly_k(self, built, data):
        result = built.query(data[0] + 0.01, k=7)
        assert len(result) == 7

    def test_distances_sorted_ascending(self, built, data):
        result = built.query(data[5] + 0.01, k=10)
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_ids_unique_and_valid(self, built, data):
        result = built.query(data[9] + 0.01, k=10)
        ids = result.ids.tolist()
        assert len(set(ids)) == len(ids)
        assert all(0 <= pid < data.shape[0] for pid in ids)

    def test_distances_are_true_distances(self, built, data):
        q = data[3] + 0.01
        result = built.query(q, k=5)
        for pid, dist in zip(result.ids, result.distances):
            actual = float(np.linalg.norm(data[pid] - q))
            assert dist == pytest.approx(actual, rel=1e-9)

    def test_k_equals_one(self, built, data):
        result = built.query(data[0] + 0.01, k=1)
        assert len(result) == 1

    def test_invalid_k_rejected(self, built, data):
        with pytest.raises(ValueError):
            built.query(data[0], 0)
        with pytest.raises(ValueError):
            built.query(data[0], data.shape[0] + 1)

    def test_wrong_dimension_rejected(self, built):
        with pytest.raises(ValueError):
            built.query(np.zeros(3), 1)

    def test_self_query_finds_self(self, built, data):
        """Querying with an indexed point must return it at distance 0
        (every method probes the query's own region first)."""
        result = built.query(data[21], k=1)
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)
        assert int(result.ids[0]) == 21


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(set(FACTORIES) - {"Exact"}))
    def test_same_seed_same_answer(self, name, data):
        a = FACTORIES[name](data).build().query(data[2] + 0.01, 5)
        b = FACTORIES[name](data).build().query(data[2] + 0.01, 5)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)
