"""Contract tests every ANN algorithm must satisfy, run against all
registered implementations through the shared interface — kNN, range and
closest-pair alike."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    C2LSH,
    E2LSH,
    ExactKNN,
    LSBForest,
    LinearScan,
    MultiProbeLSH,
    PMLSH,
    PMLSHParams,
    QALSH,
    RLSH,
    SRS,
    ShardedIndex,
)
from repro.evaluation.metrics import range_recall

FACTORIES = {
    "PM-LSH": lambda: PMLSH(params=PMLSHParams(node_capacity=32), seed=3),
    "SRS": lambda: SRS(seed=3),
    "QALSH": lambda: QALSH(seed=3),
    "Multi-Probe": lambda: MultiProbeLSH(seed=3),
    "R-LSH": lambda: RLSH(params=PMLSHParams(node_capacity=32), seed=3),
    "LScan": lambda: LinearScan(seed=3),
    "E2LSH": lambda: E2LSH(w=30.0, seed=3),
    "C2LSH": lambda: C2LSH(seed=3),
    "LSB-Forest": lambda: LSBForest(seed=3),
    "Exact": lambda: ExactKNN(),
    "Sharded": lambda: ShardedIndex(backend="exact", num_shards=3, seed=3),
}

#: Backends whose range path is *native approximate* rather than the exact
#: brute-force fallback — their range contract is recall, not equality.
NATIVE_RANGE = {"PM-LSH"}
#: Same for closest pairs.
NATIVE_CP = {"PM-LSH"}


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:400]


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def built(request, data):
    index = FACTORIES[request.param]().fit(data)
    index.contract_label = request.param
    return index


@pytest.fixture(scope="module")
def exact_reference(data):
    return ExactKNN().fit(data)


class TestUniversalContracts:
    def test_query_before_build_raises(self, data):
        for name, make in FACTORIES.items():
            index = make()
            with pytest.raises(RuntimeError):
                index.query(data[0], 1)

    def test_returns_exactly_k(self, built, data):
        result = built.query(data[0] + 0.01, k=7)
        assert len(result) == 7

    def test_distances_sorted_ascending(self, built, data):
        result = built.query(data[5] + 0.01, k=10)
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_ids_unique_and_valid(self, built, data):
        result = built.query(data[9] + 0.01, k=10)
        ids = result.ids.tolist()
        assert len(set(ids)) == len(ids)
        assert all(0 <= pid < data.shape[0] for pid in ids)

    def test_distances_are_true_distances(self, built, data):
        q = data[3] + 0.01
        result = built.query(q, k=5)
        for pid, dist in zip(result.ids, result.distances):
            actual = float(np.linalg.norm(data[pid] - q))
            assert dist == pytest.approx(actual, rel=1e-9)

    def test_k_equals_one(self, built, data):
        result = built.query(data[0] + 0.01, k=1)
        assert len(result) == 1

    def test_invalid_k_rejected(self, built, data):
        with pytest.raises(ValueError):
            built.query(data[0], 0)
        with pytest.raises(ValueError):
            built.query(data[0], data.shape[0] + 1)

    def test_wrong_dimension_rejected(self, built):
        with pytest.raises(ValueError):
            built.query(np.zeros(3), 1)

    def test_self_query_finds_self(self, built, data):
        """Querying with an indexed point must return it at distance 0
        (every method probes the query's own region first)."""
        result = built.query(data[21], k=1)
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)
        assert int(result.ids[0]) == 21


class TestRangeContract:
    """Every backend answers range_search; measured against brute force."""

    RADIUS = 5.0

    def test_range_vs_exact(self, built, data, exact_reference):
        queries = data[:8] + 0.01
        truth = exact_reference.range_search(queries, self.RADIUS)
        result = built.range_search(queries, self.RADIUS)
        assert result.num_queries == truth.num_queries
        if built.contract_label in NATIVE_RANGE:
            # Native approximate path: high recall on the exact ball, and
            # nothing admitted beyond the c·r slack.
            c = built.params.c
            for i in range(len(truth)):
                assert range_recall(result[i].ids, truth[i].ids) >= 0.9
                assert np.all(result[i].distances <= c * self.RADIUS + 1e-9)
        else:
            # Fallback (or sharded-exact) path: byte-identical to brute force.
            np.testing.assert_array_equal(result.lims, truth.lims)
            np.testing.assert_array_equal(result.ids, truth.ids)
            np.testing.assert_allclose(result.distances, truth.distances, rtol=1e-12)

    def test_range_distances_true_and_sorted(self, built, data):
        queries = data[:4] + 0.01
        result = built.range_search(queries, self.RADIUS)
        for i in range(len(result)):
            one = result[i]
            # sorted by (distance, id)
            key = list(zip(one.distances.tolist(), one.ids.tolist()))
            assert key == sorted(key)
            for pid, dist in zip(one.ids, one.distances):
                actual = float(np.linalg.norm(data[pid] - queries[i]))
                assert dist == pytest.approx(actual, rel=1e-9)

    def test_invalid_radius_rejected(self, built, data):
        with pytest.raises(ValueError):
            built.range_search(data[:2], 0.0)
        with pytest.raises(ValueError):
            built.range_search(data[:2], -1.0)


class TestClosestPairContract:
    """Every backend answers closest_pairs; measured against brute force."""

    M = 5

    def test_closest_pairs_vs_exact(self, built, data, exact_reference):
        truth = exact_reference.closest_pairs(self.M)
        result = built.closest_pairs(self.M)
        assert len(result) == self.M
        if built.contract_label in NATIVE_CP:
            # Approximate self-join: pair distances within a modest factor
            # of the exact ones, rank by rank (seeded — a regression fence).
            ratios = result.distances / truth.distances
            assert np.all(ratios >= 1.0 - 1e-12)
            assert np.mean(ratios) <= 1.25
        else:
            np.testing.assert_array_equal(result.pairs, truth.pairs)
            np.testing.assert_allclose(result.distances, truth.distances, rtol=1e-12)

    def test_pairs_well_formed(self, built, data):
        result = built.closest_pairs(self.M)
        assert np.all(result.pairs[:, 0] < result.pairs[:, 1])
        assert np.all(result.pairs >= 0) and np.all(result.pairs < data.shape[0])
        # verified distances are true distances
        for (i, j), dist in zip(result.pairs, result.distances):
            actual = float(np.linalg.norm(data[i] - data[j]))
            assert dist == pytest.approx(actual, rel=1e-9)
        # sorted by (distance, i, j)
        key = [
            (d, int(i), int(j))
            for (i, j), d in zip(result.pairs.tolist(), result.distances.tolist())
        ]
        assert key == sorted(key)

    def test_m_capped_at_pair_count(self, built, data):
        assert len(built.closest_pairs(1)) == 1

    def test_invalid_m_rejected(self, built):
        with pytest.raises(ValueError):
            built.closest_pairs(0)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(set(FACTORIES) - {"Exact"}))
    def test_same_seed_same_answer(self, name, data):
        a = FACTORIES[name]().fit(data).query(data[2] + 0.01, 5)
        b = FACTORIES[name]().fit(data).query(data[2] + 0.01, 5)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)
