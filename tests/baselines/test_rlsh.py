"""Tests for R-LSH (the R-tree ablation of PM-LSH)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.rlsh import RLSH
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH


@pytest.fixture(scope="module")
def index(small_clustered):
    return RLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(small_clustered)


class TestRLSH:
    def test_returns_k_sorted(self, index, small_clustered):
        result = index.query(small_clustered[0] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_high_recall(self, index, small_clustered):
        exact = ExactKNN().fit(small_clustered)
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(15):
            q = small_clustered[rng.integers(0, index.n)] + 0.01
            got = set(index.query(q, 10).ids.tolist())
            truth = set(exact.query(q, 10).ids.tolist())
            hits += len(got & truth)
            total += 10
        assert hits / total > 0.85

    def test_same_projection_as_pmlsh_with_same_seed(self, small_clustered):
        """R-LSH is PM-LSH with only the tree swapped: identical seed must
        produce identical projections."""
        pm = PMLSH(seed=11).fit(small_clustered[:200])
        rl = RLSH(seed=11).fit(small_clustered[:200])
        np.testing.assert_allclose(pm.projected, rl.projected)

    def test_pm_tree_does_fewer_distance_computations(self, small_clustered):
        """The Table 2 claim, measured on live queries: at identical
        parameters and collection semantics, the PM-tree needs fewer
        distance computations than the R-tree."""
        params = PMLSHParams(node_capacity=32)
        pm = PMLSH(params=params, seed=5).fit(small_clustered)
        rl = RLSH(params=params, seed=5).fit(small_clustered)
        pm.tree.reset_counters()
        rl.tree.reset_counters()
        rng = np.random.default_rng(6)
        for _ in range(10):
            q = small_clustered[rng.integers(0, small_clustered.shape[0])] + 0.01
            pm.query(q, 10)
            rl.query(q, 10)
        assert pm.tree.distance_computations < rl.tree.distance_computations

    def test_stats(self, index, small_clustered):
        result = index.query(small_clustered[3], k=5)
        assert result.stats["rounds"] >= 1
        assert result.stats["candidates"] > 0
