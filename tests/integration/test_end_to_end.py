"""End-to-end integration: every algorithm on a shared emulated workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    E2LSH,
    LinearScan,
    MultiProbeLSH,
    PMLSH,
    PMLSHParams,
    QALSH,
    RLSH,
    SRS,
)
from repro.datasets import load_dataset
from repro.evaluation import compute_ground_truth, run_query_set


@pytest.fixture(scope="module")
def workload():
    return load_dataset("Audio", n=1200, num_queries=12, seed=0)


@pytest.fixture(scope="module")
def ground_truth(workload):
    return compute_ground_truth(workload.data, workload.queries, k_max=20)


ALGORITHMS = {
    "PM-LSH": lambda: PMLSH(params=PMLSHParams(node_capacity=32), seed=0),
    "SRS": lambda: SRS(seed=0),
    "QALSH": lambda: QALSH(seed=0),
    "Multi-Probe": lambda: MultiProbeLSH(seed=0),
    "R-LSH": lambda: RLSH(params=PMLSHParams(node_capacity=32), seed=0),
    "LScan": lambda: LinearScan(seed=0),
}


@pytest.fixture(scope="module")
def results(workload, ground_truth):
    output = {}
    for name, make in ALGORITHMS.items():
        index = make().fit(workload.data)
        output[name] = run_query_set(index, workload.queries, k=20, ground_truth=ground_truth)
    return output


class TestQualityFloors:
    """Seeded quality floors per algorithm — regression fences, not tuning
    targets.  Values are comfortably below typical measurements."""

    def test_pmlsh(self, results):
        assert results["PM-LSH"].recall > 0.9
        assert results["PM-LSH"].overall_ratio < 1.02

    def test_srs(self, results):
        assert results["SRS"].recall > 0.6

    def test_qalsh(self, results):
        assert results["QALSH"].recall > 0.8

    def test_multiprobe(self, results):
        assert results["Multi-Probe"].recall > 0.6

    def test_rlsh(self, results):
        assert results["R-LSH"].recall > 0.85

    def test_lscan_near_its_portion(self, results):
        assert 0.5 < results["LScan"].recall < 0.9


class TestPaperShape:
    """The qualitative Table 4 orderings the reproduction must preserve."""

    def test_pmlsh_beats_lscan_on_both_metrics(self, results):
        assert results["PM-LSH"].recall > results["LScan"].recall
        assert results["PM-LSH"].overall_ratio < results["LScan"].overall_ratio

    def test_pmlsh_recall_at_least_srs(self, results):
        assert results["PM-LSH"].recall >= results["SRS"].recall - 0.02

    def test_all_ratios_at_least_one(self, results):
        for name, result in results.items():
            assert result.overall_ratio >= 1.0 - 1e-9, name

    def test_everyone_returns_k(self, workload, ground_truth):
        for name, make in ALGORITHMS.items():
            index = make().fit(workload.data)
            result = index.query(workload.queries[0], 20)
            assert len(result) == 20, name


class TestE2LSHBallCoverLadder:
    def test_ladder_answers_cann(self, workload):
        """The §2.2 reduction: running (r, c)-BC queries with growing r
        eventually returns a c²-approximate neighbour."""
        data = workload.data
        index = E2LSH(num_tables=6, m=6, w=30.0, seed=0).fit(data)
        q = workload.queries[0]
        exact_nn = float(np.min(np.linalg.norm(data - q, axis=1)))
        c = 1.5
        r = max(exact_nn / 4, 1e-3)
        answer = None
        for _ in range(20):
            answer = index.ball_cover_query(q, r=r, c=c)
            if answer is not None:
                break
            r *= c
        assert answer is not None
        _, dist = answer
        # c-BC at radius r implies distance <= c*r; the ladder guarantees
        # r <= c * exact_nn at the stopping round (so dist <= c^2 * exact_nn)
        # modulo the probabilistic miss, which the seed fixes.
        assert dist <= c * r + 1e-9
