"""Smoke tests: the example scripts run end to end.

Each example is executed in a subprocess with a small scale override where
the script supports one; the assertions only check successful completion
and the presence of headline output, not numbers.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    output = run_example("quickstart.py")
    assert "recall" in output
    assert "(r, c)-BC query" in output


@pytest.mark.slow
def test_algorithm_comparison_runs():
    output = run_example("algorithm_comparison.py", "Audio", "1500")
    assert "PM-LSH" in output
    assert "LScan" in output


@pytest.mark.slow
def test_deduplication_runs():
    output = run_example("deduplication.py")
    assert "planted duplicates found" in output


@pytest.mark.slow
def test_serving_runs():
    output = run_example("serving.py", "600", "120")
    assert "QPS" in output
    assert "fresh findable: True" in output
    assert "Serving stats (async micro-batcher)" in output
    assert "Engine stats (4 shards)" in output
