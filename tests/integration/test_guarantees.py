"""Statistical verification of the paper's theoretical guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.datasets.synthetic import gaussian_mixture


class TestTheorem1:
    """Algorithm 2 returns a c²-ANN with probability ≥ 1/2 − 1/e ≈ 0.132.

    We measure the empirical success frequency over many queries and
    require it to clear the bound with margin; in practice it is near 1."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = gaussian_mixture(1000, 24, num_clusters=8, cluster_std=0.8, seed=0)
        index = PMLSH(data, params=PMLSHParams(node_capacity=32), seed=1).build()
        exact = ExactKNN(data).build()
        return data, index, exact

    def test_c_squared_ann_frequency(self, setup):
        data, index, exact = setup
        c = index.params.c
        rng = np.random.default_rng(2)
        successes = trials = 0
        for _ in range(40):
            q = data[rng.integers(0, data.shape[0])] + rng.normal(size=24) * 0.05
            got = index.query(q, k=1)
            truth = exact.query(q, k=1)
            r_star = max(float(truth.distances[0]), 1e-12)
            successes += float(got.distances[0]) <= c * c * r_star + 1e-9
            trials += 1
        assert successes / trials >= 0.5 - 1 / np.e

    def test_ck_ann_per_rank_guarantee(self, setup):
        """(c, k)-ANN: every returned o_i within c²·||q, o*_i|| for most
        queries (Definition 2 with the Theorem 1 ratio)."""
        data, index, exact = setup
        c2 = index.params.c ** 2
        rng = np.random.default_rng(3)
        per_query_ok = []
        for _ in range(20):
            q = data[rng.integers(0, data.shape[0])] + rng.normal(size=24) * 0.05
            got = index.query(q, k=5)
            truth = exact.query(q, k=5)
            ok = all(
                got.distances[i] <= c2 * max(truth.distances[i], 1e-12) + 1e-9
                for i in range(5)
            )
            per_query_ok.append(ok)
        assert np.mean(per_query_ok) >= 0.5 - 1 / np.e


class TestLemma4Empirical:
    """E1: points inside B(q, r) project within t·r with prob ≥ 1 − α1."""

    def test_e1_on_real_queries(self):
        data = gaussian_mixture(600, 16, num_clusters=6, seed=4)
        hits = trials = 0
        rng = np.random.default_rng(5)
        for trial in range(60):
            index = PMLSH(data, seed=int(rng.integers(0, 2**31))).build()
            q = data[trial % data.shape[0]] + 0.01
            dists = np.linalg.norm(data - q, axis=1)
            near_id = int(np.argmin(dists))
            r = max(float(dists[near_id]), 1e-9)
            q_proj = index.projection.project(q)
            o_proj = index.projected[near_id]
            projected = float(np.linalg.norm(q_proj - o_proj))
            hits += projected <= index.solved.t * r
            trials += 1
        assert hits / trials >= 1 - 1 / np.e - 0.1


class TestSpaceAndTime:
    """Theorem 2's shape: query cost grows sublinearly with n (O(log n + βn)
    with small β), and the index stores O(n) items."""

    def test_tree_stores_each_point_once(self):
        data = gaussian_mixture(700, 16, num_clusters=5, seed=6)
        index = PMLSH(data, params=PMLSHParams(node_capacity=32), seed=0).build()
        leaf_ids = [
            pid
            for _, node in index.tree.iter_nodes()
            if node.is_leaf
            for pid in node.ids
        ]
        assert sorted(leaf_ids) == list(range(data.shape[0]))

    def test_candidates_scale_with_beta_n(self):
        small = gaussian_mixture(400, 16, num_clusters=5, seed=7)
        large = gaussian_mixture(1200, 16, num_clusters=5, seed=7)
        k = 5
        small_index = PMLSH(small, params=PMLSHParams(node_capacity=32), seed=0).build()
        large_index = PMLSH(large, params=PMLSHParams(node_capacity=32), seed=0).build()
        small_cand = small_index.query(small[0], k).stats["candidates"]
        large_cand = large_index.query(large[0], k).stats["candidates"]
        beta = small_index.solved.beta
        assert small_cand <= beta * 400 + k + 1
        assert large_cand <= beta * 1200 + k + 1
