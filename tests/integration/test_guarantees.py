"""Statistical verification of the paper's theoretical guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.datasets.synthetic import gaussian_mixture


class TestTheorem1:
    """Algorithm 2 returns a c²-ANN with probability ≥ 1/2 − 1/e ≈ 0.132.

    We measure the empirical success frequency over many queries and
    require it to clear the bound with margin; in practice it is near 1."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = gaussian_mixture(1000, 24, num_clusters=8, cluster_std=0.8, seed=0)
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=1).fit(data)
        exact = ExactKNN().fit(data)
        return data, index, exact

    def test_c_squared_ann_frequency(self, setup):
        data, index, exact = setup
        c = index.params.c
        rng = np.random.default_rng(2)
        successes = trials = 0
        for _ in range(40):
            q = data[rng.integers(0, data.shape[0])] + rng.normal(size=24) * 0.05
            got = index.query(q, k=1)
            truth = exact.query(q, k=1)
            r_star = max(float(truth.distances[0]), 1e-12)
            successes += float(got.distances[0]) <= c * c * r_star + 1e-9
            trials += 1
        assert successes / trials >= 0.5 - 1 / np.e

    def test_ck_ann_per_rank_guarantee(self, setup):
        """(c, k)-ANN: every returned o_i within c²·||q, o*_i|| for most
        queries (Definition 2 with the Theorem 1 ratio)."""
        data, index, exact = setup
        c2 = index.params.c ** 2
        rng = np.random.default_rng(3)
        per_query_ok = []
        for _ in range(20):
            q = data[rng.integers(0, data.shape[0])] + rng.normal(size=24) * 0.05
            got = index.query(q, k=5)
            truth = exact.query(q, k=5)
            ok = all(
                got.distances[i] <= c2 * max(truth.distances[i], 1e-12) + 1e-9
                for i in range(5)
            )
            per_query_ok.append(ok)
        assert np.mean(per_query_ok) >= 0.5 - 1 / np.e


class TestLemma4Empirical:
    """E1: points inside B(q, r) project within t·r with prob ≥ 1 − α1."""

    def test_e1_on_real_queries(self):
        data = gaussian_mixture(600, 16, num_clusters=6, seed=4)
        hits = trials = 0
        rng = np.random.default_rng(5)
        for trial in range(60):
            index = PMLSH(seed=int(rng.integers(0, 2**31))).fit(data)
            q = data[trial % data.shape[0]] + 0.01
            dists = np.linalg.norm(data - q, axis=1)
            near_id = int(np.argmin(dists))
            r = max(float(dists[near_id]), 1e-9)
            q_proj = index.projection.project(q)
            o_proj = index.projected[near_id]
            projected = float(np.linalg.norm(q_proj - o_proj))
            hits += projected <= index.solved.t * r
            trials += 1
        assert hits / trials >= 1 - 1 / np.e - 0.1


class TestSpaceAndTime:
    """Theorem 2's shape: query cost grows sublinearly with n (O(log n + βn)
    with small β), and the index stores O(n) items."""

    def test_tree_stores_each_point_once(self):
        data = gaussian_mixture(700, 16, num_clusters=5, seed=6)
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(data)
        leaf_ids = [
            pid
            for _, node in index.tree.iter_nodes()
            if node.is_leaf
            for pid in node.ids
        ]
        assert sorted(leaf_ids) == list(range(data.shape[0]))

    def test_candidates_scale_with_beta_n(self):
        small = gaussian_mixture(400, 16, num_clusters=5, seed=7)
        large = gaussian_mixture(1200, 16, num_clusters=5, seed=7)
        k = 5
        small_index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(small)
        large_index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(large)
        small_cand = small_index.query(small[0], k).stats["candidates"]
        large_cand = large_index.query(large[0], k).stats["candidates"]
        beta = small_index.solved.beta
        assert small_cand <= beta * 400 + k + 1
        assert large_cand <= beta * 1200 + k + 1


class TestRangeQueryGuarantee:
    """The (r, c)-ball promise on a fixed-seed synthetic dataset: at the
    paper's defaults (c = 1.5) the native range path recovers ≥ 0.9 of
    the exact ball while scanning strictly fewer candidates than the
    brute-force reference, and never reports beyond c·r."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = gaussian_mixture(1200, 32, num_clusters=10, cluster_std=0.8, seed=4)
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=5).fit(data)
        exact = ExactKNN().fit(data)
        return data, index, exact

    def test_recall_and_sublinear_candidates(self, setup):
        from repro.evaluation.metrics import range_recall

        data, index, exact = setup
        rng = np.random.default_rng(6)
        queries = data[rng.integers(0, data.shape[0], size=20)] + 0.01
        radius = float(
            np.quantile(index.distance_distribution.samples, 0.02)
        )
        truth = exact.range_search(queries, radius)
        result = index.range_search(queries, radius)
        recalls = [
            range_recall(result[i].ids, truth[i].ids) for i in range(len(truth))
        ]
        assert float(np.mean(recalls)) >= 0.9
        # strictly fewer candidates than the n-point scan brute force pays
        assert result.stats["candidates"] < data.shape[0]
        # the (r, c) contract: nothing beyond c*r is ever reported
        c = index.params.c
        assert np.all(result.distances <= c * radius + 1e-9)

    def test_per_query_budget_respected(self, setup):
        data, index, exact = setup
        radius = float(np.quantile(index.distance_distribution.samples, 0.02))
        result = index.range_search(data[:5] + 0.01, radius, budget=40)
        assert result.stats["candidates"] <= 40


class TestClosestPairGuarantee:
    """The projected self-join verifies a vanishing fraction of the n²/2
    pairs yet lands within a small factor of the exact closest pairs."""

    def test_quality_vs_verified_pairs(self):
        data = gaussian_mixture(1000, 32, num_clusters=10, cluster_std=0.8, seed=7)
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=8).fit(data)
        exact = ExactKNN().fit(data)
        m = 10
        truth = exact.closest_pairs(m)
        result = index.closest_pairs(m)
        ratios = result.distances / truth.distances
        assert np.all(ratios >= 1.0 - 1e-12)
        assert float(np.mean(ratios)) <= 1.25
        total_pairs = data.shape[0] * (data.shape[0] - 1) / 2
        assert result.stats["verified"] < 0.01 * total_pairs
