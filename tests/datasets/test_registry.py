"""Tests for the emulated dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASET_SPECS,
    available_datasets,
    load_dataset,
)
from repro.datasets.stats import dataset_statistics


class TestSpecs:
    def test_all_seven_present(self):
        assert set(DATASET_SPECS) == {
            "Audio", "Deep", "NUS", "MNIST", "GIST", "Cifar", "Trevi",
        }

    def test_paper_dimensions(self):
        expected = {
            "Audio": 192, "Deep": 256, "NUS": 500, "MNIST": 784,
            "GIST": 960, "Cifar": 1024, "Trevi": 4096,
        }
        for name, d in expected.items():
            assert DATASET_SPECS[name].paper_d == d

    def test_generate_shape(self):
        points = DATASET_SPECS["Audio"].generate(n=500)
        assert points.shape == (500, 192)

    def test_generate_deterministic(self):
        a = DATASET_SPECS["MNIST"].generate(n=300)
        b = DATASET_SPECS["MNIST"].generate(n=300)
        np.testing.assert_array_equal(a, b)

    def test_generate_rejects_bad_n(self):
        with pytest.raises(ValueError):
            DATASET_SPECS["Audio"].generate(n=0)

    def test_default_n_scales_down(self):
        for spec in DATASET_SPECS.values():
            assert 0 < spec.default_n() <= spec.paper_n


class TestLoadDataset:
    def test_workload_shapes(self):
        workload = load_dataset("Audio", n=600, num_queries=15)
        assert workload.n == 600 - 15
        assert workload.queries.shape == (15, 192)
        assert workload.name == "Audio"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("ImageNet")

    def test_available_datasets_order(self):
        assert available_datasets()[0] == "Audio"
        assert len(available_datasets()) == 7


class TestHardnessOrdering:
    """The emulations must reproduce the paper's qualitative hardness
    ordering (Table 3): NUS is the hardest (largest LID, smallest RC) and
    Audio among the easiest."""

    @pytest.fixture(scope="class")
    def stats(self):
        result = {}
        for name in ["Audio", "NUS"]:
            points = DATASET_SPECS[name].generate(n=1500)
            result[name] = dataset_statistics(points, seed=0)
        return result

    def test_nus_has_higher_lid(self, stats):
        assert stats["NUS"].lid > stats["Audio"].lid

    def test_nus_has_lower_rc(self, stats):
        assert stats["NUS"].rc < stats["Audio"].rc

    def test_hv_is_high_everywhere(self, stats):
        for row in stats.values():
            assert row.hv >= 0.85
