"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    clustered_manifold,
    gaussian_mixture,
    low_intrinsic_dimension,
    sample_queries,
    uniform_hypercube,
)


class TestUniform:
    def test_shape_and_range(self):
        points = uniform_hypercube(100, 5, low=-1.0, high=2.0, seed=0)
        assert points.shape == (100, 5)
        assert points.min() >= -1.0
        assert points.max() <= 2.0

    def test_deterministic(self):
        a = uniform_hypercube(50, 3, seed=7)
        b = uniform_hypercube(50, 3, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_hypercube(10, 2, low=1.0, high=1.0)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            uniform_hypercube(0, 2)
        with pytest.raises(ValueError):
            uniform_hypercube(10, 0)


class TestGaussianMixture:
    def test_shape(self):
        points = gaussian_mixture(200, 16, num_clusters=4, seed=0)
        assert points.shape == (200, 16)

    def test_clusters_make_structure(self):
        """Clustered data must have smaller NN distances than uniform noise
        of the same scale."""
        clustered = gaussian_mixture(300, 8, num_clusters=5, cluster_std=0.2, seed=1)
        from repro.datasets.distance import chunked_knn

        _, dists = chunked_knn(clustered[:50], clustered, k=2)
        nn = dists[:, 1].mean()
        spread = np.linalg.norm(clustered.std(axis=0))
        assert nn < spread  # neighbours are much closer than the global scale

    def test_weights_control_assignment(self):
        # All mass on cluster 0 -> one tight blob.
        points = gaussian_mixture(
            100, 4, num_clusters=3, cluster_std=0.1,
            weights=np.array([1.0, 0.0, 0.0]), seed=2,
        )
        assert points.std(axis=0).max() < 1.0

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, num_clusters=2, weights=np.array([1.0]))
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, num_clusters=2, weights=np.array([-1.0, 2.0]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, num_clusters=0)
        with pytest.raises(ValueError):
            gaussian_mixture(10, 2, cluster_std=-1.0)


class TestLowIntrinsicDimension:
    def test_shape(self):
        points = low_intrinsic_dimension(150, 32, intrinsic_dim=4, seed=0)
        assert points.shape == (150, 32)

    def test_rank_reflects_intrinsic_dim(self):
        points = low_intrinsic_dimension(200, 32, intrinsic_dim=4, ambient_noise=0.0, seed=0)
        singular_values = np.linalg.svd(points - points.mean(axis=0), compute_uv=False)
        # Only ~4 directions carry energy.
        assert singular_values[4] < 1e-8 * singular_values[0]

    def test_noise_fills_ambient_space(self):
        points = low_intrinsic_dimension(200, 16, intrinsic_dim=2, ambient_noise=0.5, seed=0)
        singular_values = np.linalg.svd(points - points.mean(axis=0), compute_uv=False)
        assert singular_values[-1] > 0.1

    def test_invalid_intrinsic_dim(self):
        with pytest.raises(ValueError):
            low_intrinsic_dimension(10, 4, intrinsic_dim=5)
        with pytest.raises(ValueError):
            low_intrinsic_dimension(10, 4, intrinsic_dim=0)


class TestClusteredManifold:
    def test_shape(self):
        points = clustered_manifold(100, 64, intrinsic_dim=6, num_clusters=5, seed=0)
        assert points.shape == (100, 64)

    def test_deterministic(self):
        a = clustered_manifold(60, 16, intrinsic_dim=3, num_clusters=4, seed=9)
        b = clustered_manifold(60, 16, intrinsic_dim=3, num_clusters=4, seed=9)
        np.testing.assert_array_equal(a, b)


class TestSampleQueries:
    def test_hold_out_removes_queries(self, small_clustered):
        data, queries = sample_queries(small_clustered, num_queries=10, seed=0)
        assert data.shape[0] == small_clustered.shape[0] - 10
        assert queries.shape == (10, small_clustered.shape[1])
        # No query row should exist verbatim in the retained data.
        for query in queries:
            assert not np.any(np.all(np.isclose(data, query), axis=1))

    def test_no_hold_out_keeps_data(self, small_clustered):
        data, queries = sample_queries(
            small_clustered, num_queries=5, hold_out=False, seed=0
        )
        assert data.shape == small_clustered.shape

    def test_perturbation_moves_queries(self, small_clustered):
        _, clean = sample_queries(small_clustered, num_queries=5, seed=3)
        _, noisy = sample_queries(
            small_clustered, num_queries=5, perturbation=0.1, seed=3
        )
        assert not np.allclose(clean, noisy)

    def test_invalid_count(self, small_clustered):
        with pytest.raises(ValueError):
            sample_queries(small_clustered, num_queries=0)
        with pytest.raises(ValueError):
            sample_queries(small_clustered, num_queries=small_clustered.shape[0])
