"""Tests for distance kernels, F(x), and per-dimension marginals."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets.distance import (
    DistanceDistribution,
    MarginalDistribution,
    chunked_knn,
    pairwise_distances,
    point_to_points_distances,
    sample_distance_distribution,
)


class TestPointToPoints:
    def test_matches_norm(self, tiny_uniform):
        query = tiny_uniform[0]
        got = point_to_points_distances(query, tiny_uniform)
        expected = np.linalg.norm(tiny_uniform - query, axis=1)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_self_distance_zero(self, tiny_uniform):
        dists = point_to_points_distances(tiny_uniform[3], tiny_uniform)
        assert dists[3] == pytest.approx(0.0, abs=1e-12)

    def test_rejects_2d_query(self, tiny_uniform):
        with pytest.raises(ValueError):
            point_to_points_distances(tiny_uniform[:2], tiny_uniform)

    def test_rejects_dimension_mismatch(self, tiny_uniform):
        with pytest.raises(ValueError):
            point_to_points_distances(np.zeros(3), tiny_uniform)


class TestPairwise:
    def test_symmetric_with_zero_diagonal(self, tiny_uniform):
        matrix = pairwise_distances(tiny_uniform[:50])
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-7)

    def test_cross_matches_norms(self, tiny_uniform):
        a, b = tiny_uniform[:10], tiny_uniform[10:25]
        matrix = pairwise_distances(a, b)
        for i in range(10):
            np.testing.assert_allclose(
                matrix[i], np.linalg.norm(b - a[i], axis=1), rtol=1e-8
            )

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 4)), np.zeros((3, 5)))

    @given(
        arrays(np.float64, (7, 3), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=25)
    def test_triangle_inequality(self, points):
        matrix = pairwise_distances(points)
        for i in range(7):
            for j in range(7):
                for k in range(7):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-6


class TestChunkedKnn:
    def test_matches_argsort(self, tiny_uniform):
        queries = tiny_uniform[:5] + 0.01
        ids, dists = chunked_knn(queries, tiny_uniform, k=7)
        for row, query in enumerate(queries):
            full = np.linalg.norm(tiny_uniform - query, axis=1)
            expected = np.argsort(full, kind="stable")[:7]
            np.testing.assert_allclose(dists[row], full[expected], rtol=1e-8)
            assert set(ids[row]) == set(expected)

    def test_rows_sorted(self, tiny_uniform):
        _, dists = chunked_knn(tiny_uniform[:4], tiny_uniform, k=10)
        assert np.all(np.diff(dists, axis=1) >= -1e-12)

    def test_k_equals_n(self, tiny_uniform):
        ids, _ = chunked_knn(tiny_uniform[:2], tiny_uniform, k=tiny_uniform.shape[0])
        assert sorted(ids[0]) == list(range(tiny_uniform.shape[0]))

    def test_k_out_of_range(self, tiny_uniform):
        with pytest.raises(ValueError):
            chunked_knn(tiny_uniform[:1], tiny_uniform, k=0)
        with pytest.raises(ValueError):
            chunked_knn(tiny_uniform[:1], tiny_uniform, k=tiny_uniform.shape[0] + 1)


class TestDistanceDistribution:
    def test_cdf_monotone(self):
        dist = DistanceDistribution(np.array([1.0, 2.0, 2.0, 3.0, 10.0]))
        xs = np.linspace(0, 11, 50)
        values = dist.cdf(xs)
        assert np.all(np.diff(values) >= 0)

    def test_cdf_extremes(self):
        dist = DistanceDistribution(np.array([1.0, 2.0, 3.0]))
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(3.0) == 1.0

    def test_quantile_inverts_cdf(self):
        samples = np.sort(np.random.default_rng(0).uniform(0, 10, size=1000))
        dist = DistanceDistribution(samples)
        for p in [0.1, 0.5, 0.9]:
            x = dist.quantile(p)
            assert dist.cdf(x) >= p - 1e-9

    def test_quantile_bounds(self):
        dist = DistanceDistribution(np.array([2.0, 4.0, 6.0]))
        assert dist.quantile(0.0) == 2.0
        assert dist.quantile(1.0) == 6.0
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_unsorted_input_is_sorted(self):
        dist = DistanceDistribution(np.array([3.0, 1.0, 2.0]))
        assert list(dist.samples) == [1.0, 2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistanceDistribution(np.array([]))

    def test_summary_stats(self):
        dist = DistanceDistribution(np.array([1.0, 3.0]))
        assert dist.max_distance == 3.0
        assert dist.mean_distance == 2.0


class TestSampleDistanceDistribution:
    def test_no_self_pairs(self, tiny_uniform):
        dist = sample_distance_distribution(tiny_uniform, num_pairs=2000, seed=0)
        assert dist.samples.min() > 0.0

    def test_mean_close_to_exact(self, tiny_uniform):
        sampled = sample_distance_distribution(tiny_uniform, num_pairs=20000, seed=0)
        exact = pairwise_distances(tiny_uniform)
        exact_mean = exact[np.triu_indices_from(exact, k=1)].mean()
        assert sampled.mean_distance == pytest.approx(exact_mean, rel=0.05)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            sample_distance_distribution(np.zeros((1, 4)))


class TestMarginalDistribution:
    def test_cdf_per_dimension(self):
        points = np.array([[0.0, 10.0], [1.0, 20.0], [2.0, 30.0]])
        marginals = MarginalDistribution.from_points(points)
        assert marginals.dims == 2
        assert marginals.cdf(0, 1.0) == pytest.approx(2 / 3)
        assert marginals.cdf(1, 15.0) == pytest.approx(1 / 3)

    def test_interval_mass(self):
        points = np.linspace(0, 9, 10)[:, None]
        marginals = MarginalDistribution.from_points(points)
        assert marginals.interval_mass(0, 2.0, 5.0) == pytest.approx(0.3)
        assert marginals.interval_mass(0, 5.0, 2.0) == 0.0

    def test_full_range_mass_is_one(self, tiny_uniform):
        marginals = MarginalDistribution.from_points(tiny_uniform)
        for dim in range(marginals.dims):
            assert marginals.interval_mass(dim, -1e9, 1e9) == pytest.approx(1.0)
