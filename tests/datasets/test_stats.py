"""Tests for the Table 3 hardness statistics (HV, RC, LID)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.stats import (
    dataset_statistics,
    homogeneity_of_viewpoints,
    local_intrinsic_dimensionality,
    relative_contrast,
)
from repro.datasets.synthetic import (
    gaussian_mixture,
    low_intrinsic_dimension,
    uniform_hypercube,
)


class TestHV:
    def test_in_unit_interval(self, small_clustered):
        hv = homogeneity_of_viewpoints(small_clustered, seed=0)
        assert 0.0 <= hv <= 1.0

    def test_homogeneous_data_scores_high(self):
        """Uniform hypercube data: every viewpoint sees a similar distance
        profile, so HV should be close to 1 (the paper's datasets all have
        HV >= 0.9)."""
        points = uniform_hypercube(800, 16, seed=0)
        assert homogeneity_of_viewpoints(points, seed=0) > 0.9

    def test_scale_heterogeneous_data_scores_lower(self):
        """Points at log-spread radii from the origin: a viewpoint near the
        centre and one on the outer shell see very different distance
        profiles, so HV must drop below the homogeneous uniform case."""
        rng = np.random.default_rng(0)
        directions = rng.normal(size=(600, 8))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = 10 ** rng.uniform(-1, 2, size=600)
        heterogeneous = directions * radii[:, None]
        uniform = uniform_hypercube(600, 8, seed=1)
        assert homogeneity_of_viewpoints(heterogeneous, seed=0) < (
            homogeneity_of_viewpoints(uniform, seed=0) - 0.02
        )

    def test_requires_points(self):
        with pytest.raises(ValueError):
            homogeneity_of_viewpoints(np.zeros((2, 3)))


class TestRC:
    def test_at_least_one(self, small_clustered):
        assert relative_contrast(small_clustered, seed=0) >= 1.0

    def test_clustered_beats_uniform(self):
        """Clustered data has near neighbours => large RC; uniform
        high-dimensional data has RC -> 1 (hard)."""
        clustered = gaussian_mixture(600, 24, num_clusters=10, cluster_std=0.2, seed=0)
        uniform = np.random.default_rng(1).normal(size=(600, 24))
        assert relative_contrast(clustered, seed=0) > relative_contrast(uniform, seed=0)

    def test_requires_points(self):
        with pytest.raises(ValueError):
            relative_contrast(np.zeros((2, 3)))


class TestLID:
    def test_positive(self, small_clustered):
        assert local_intrinsic_dimensionality(small_clustered, seed=0) > 0.0

    def test_tracks_manifold_dimension(self):
        low = low_intrinsic_dimension(1500, 32, intrinsic_dim=3, ambient_noise=0.0, seed=0)
        high = low_intrinsic_dimension(1500, 32, intrinsic_dim=16, ambient_noise=0.0, seed=0)
        lid_low = local_intrinsic_dimensionality(low, seed=0)
        lid_high = local_intrinsic_dimensionality(high, seed=0)
        assert lid_low < lid_high
        # The MLE should land in the right ballpark for the low case.
        assert 1.0 < lid_low < 8.0

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            local_intrinsic_dimensionality(np.zeros((5, 3)), k=20)


class TestDatasetStatistics:
    def test_full_row(self, small_clustered):
        stats = dataset_statistics(small_clustered, seed=0)
        assert stats.n == small_clustered.shape[0]
        assert stats.d == small_clustered.shape[1]
        assert 0.0 <= stats.hv <= 1.0
        assert stats.rc >= 1.0
        assert stats.lid > 0.0

    def test_as_row_formatting(self, small_clustered):
        stats = dataset_statistics(small_clustered, seed=0)
        row = stats.as_row("Test")
        assert "Test" in row
        assert str(small_clustered.shape[1]) in row
