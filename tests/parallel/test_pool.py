"""Worker-pool tests: lifecycle, IPC, and failure handling."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.parallel import WorkerPool, leaked_segments
from repro.queries import Knn


@pytest.fixture()
def data():
    return np.random.default_rng(21).normal(size=(240, 12))


@pytest.fixture()
def pool():
    built = WorkerPool(2).start()
    yield built
    built.close()
    assert leaked_segments() == ()


class TestLifecycle:
    def test_ping_reaches_every_worker(self, pool):
        assert pool.ping() == list(range(pool.num_workers))

    def test_double_close_is_idempotent(self, data):
        pool = WorkerPool(2).start()
        index = repro.create_index("exact").fit(data)
        pool.publish(0, index)
        pool.close()
        pool.close()
        assert leaked_segments() == ()

    def test_start_is_idempotent(self, pool):
        assert pool.start() is pool
        assert pool.ping() == list(range(pool.num_workers))

    def test_cannot_restart_after_close(self, data):
        pool = WorkerPool(1).start()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.start()

    def test_terminate_never_raises(self, data):
        pool = WorkerPool(2).start()
        index = repro.create_index("exact").fit(data)
        pool.publish(1, index)
        pool.terminate()
        pool.terminate()
        assert leaked_segments() == ()


class TestQueries:
    def test_knn_matches_local_index(self, pool, data):
        index = repro.create_index("exact").fit(data)
        pool.publish(0, index)
        queries = data[:5] * 1.01
        outcome = pool.run("knn", {"queries": queries, "spec": Knn(k=6)})
        assert set(outcome) == {0}
        result, elapsed_ms = outcome[0]
        expected = index.run(queries, Knn(k=6))
        np.testing.assert_array_equal(result.ids, expected.ids)
        np.testing.assert_array_equal(result.distances, expected.distances)
        assert elapsed_ms >= 0.0

    def test_shards_land_on_owning_workers(self, pool, data):
        for shard_id in range(4):
            index = repro.create_index("exact").fit(data[shard_id::4])
            pool.publish(shard_id, index)
            assert pool.owner(shard_id) == shard_id % pool.num_workers
        outcome = pool.run("knn", {"queries": data[:3], "spec": Knn(k=2)})
        assert set(outcome) == {0, 1, 2, 3}

    def test_republish_replaces_snapshot(self, pool, data):
        index = repro.create_index("exact").fit(data)
        pool.publish(0, index)
        index.delete([0, 1, 2])
        pool.publish(0, index)
        outcome = pool.run("knn", {"queries": data[:4], "spec": Knn(k=3)})
        result, _ = outcome[0]
        assert not np.isin(result.ids, [0, 1, 2]).any()

    def test_worker_error_surfaces_with_traceback(self, pool, data):
        index = repro.create_index("exact").fit(data)
        pool.publish(0, index)
        bad_dim = np.zeros((2, data.shape[1] + 3))
        with pytest.raises(RuntimeError, match="worker"):
            pool.run("knn", {"queries": bad_dim, "spec": Knn(k=3)})
        # The worker survives the error and keeps serving.
        outcome = pool.run("knn", {"queries": data[:2], "spec": Knn(k=3)})
        assert 0 in outcome

    def test_unknown_job_kind_raises(self, pool, data):
        index = repro.create_index("exact").fit(data)
        pool.publish(0, index)
        with pytest.raises(RuntimeError, match="unknown job kind"):
            pool.run("no-such-kind", {})


class TestMetrics:
    def test_counters_accumulate(self, data):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        pool = WorkerPool(2, registry=registry, labels={"pool": "p0"}).start()
        try:
            index = repro.create_index("exact").fit(data)
            pool.publish(0, index)
            pool.run("knn", {"queries": data[:2], "spec": Knn(k=2)})
            labels = {"pool": "p0"}
            assert registry.value("pool_publishes", labels) == 1.0
            assert registry.value("pool_ipc_roundtrips", labels) >= 2.0
            assert registry.value("pool_bytes_published", labels) > 0.0
            assert registry.value("pool_workers", labels) == 2.0
        finally:
            pool.close()
        assert leaked_segments() == ()
