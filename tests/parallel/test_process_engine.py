"""Process-backend engine tests: byte-identity with serial and thread
fan-out, epoch re-attach after lifecycle operations, and clean teardown
(no leaked shared-memory segments)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import create_index
from repro.parallel.shm import leaked_segments


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(31)
    data = rng.normal(size=(500, 20))
    data[101] = data[40]  # planted duplicate: exercises distance-0 tie order
    return data


@pytest.fixture()
def queries(dataset):
    rng = np.random.default_rng(32)
    return dataset[:10] + rng.normal(size=(10, dataset.shape[1])) * 0.02


def _build(dataset, *, pool_backend, backend="pm-lsh", **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("num_workers", 2)
    engine = create_index(
        "sharded", backend=backend, pool_backend=pool_backend, seed=5, **kwargs
    )
    return engine.fit(dataset)


def _assert_knn_equal(a, b, queries, k=8):
    ra, rb = a.search(queries, k), b.search(queries, k)
    np.testing.assert_array_equal(ra.ids, rb.ids)
    np.testing.assert_array_equal(ra.distances, rb.distances)


def _assert_range_equal(a, b, queries, radius=5.0):
    ra, rb = a.range_search(queries, radius), b.range_search(queries, radius)
    np.testing.assert_array_equal(ra.lims, rb.lims)
    np.testing.assert_array_equal(ra.ids, rb.ids)
    np.testing.assert_array_equal(ra.distances, rb.distances)


def _assert_cp_equal(a, b, m=10):
    ra, rb = a.closest_pairs(m), b.closest_pairs(m)
    np.testing.assert_array_equal(ra.pairs, rb.pairs)
    np.testing.assert_array_equal(ra.distances, rb.distances)


class TestByteIdentity:
    def test_process_matches_serial_and_thread(self, dataset, queries):
        serial = _build(dataset, pool_backend="thread", num_workers=1)
        thread = _build(dataset, pool_backend="thread")
        process = _build(dataset, pool_backend="process")
        try:
            _assert_knn_equal(serial, process, queries)
            _assert_range_equal(serial, process, queries)
            _assert_cp_equal(serial, process)
            _assert_knn_equal(thread, process, queries)
            _assert_range_equal(thread, process, queries)
            _assert_cp_equal(thread, process)
        finally:
            process.close()
            thread.close()
            serial.close()
        assert leaked_segments() == ()

    def test_backend_string_shorthand(self, dataset, queries):
        """``backend="process"`` selects pm-lsh shards behind the pool."""
        process = create_index(
            "sharded", backend="process", num_shards=3, num_workers=2, seed=5
        ).fit(dataset)
        explicit = _build(dataset, pool_backend="process")
        try:
            assert process.pool_backend == "process"
            _assert_knn_equal(process, explicit, queries)
        finally:
            process.close()
            explicit.close()

    def test_registry_alias(self, dataset, queries):
        alias = create_index(
            "process-sharded", num_shards=3, num_workers=2, seed=5
        ).fit(dataset)
        explicit = _build(dataset, pool_backend="process")
        try:
            assert alias.pool_backend == "process"
            _assert_knn_equal(alias, explicit, queries)
            _assert_cp_equal(alias, explicit)
        finally:
            alias.close()
            explicit.close()

    def test_exact_backend_matches_single_index(self, dataset, queries):
        """The strongest oracle: process-sharded exact == one exact index."""
        single = create_index("exact").fit(dataset)
        process = _build(dataset, pool_backend="process", backend="exact")
        try:
            _assert_knn_equal(single, process, queries)
            _assert_range_equal(single, process, queries)
            _assert_cp_equal(single, process)
        finally:
            process.close()


class TestLifecycle:
    def test_epoch_bumps_republish(self, dataset, queries):
        serial = _build(dataset, pool_backend="thread", num_workers=1)
        process = _build(dataset, pool_backend="process")
        rng = np.random.default_rng(40)
        extra = rng.normal(size=(30, dataset.shape[1]))
        try:
            process.search(queries, 3)  # force the initial publish round
            for engine in (serial, process):
                engine.add(extra)
                engine.delete([2, 7, 150, 420])
                engine.add(extra + 0.5)
                engine.compact()
            _assert_knn_equal(serial, process, queries)
            _assert_range_equal(serial, process, queries)
            _assert_cp_equal(serial, process)
            reattaches = process.metrics.value(
                "pool_reattaches", process._obs_labels
            )
            assert reattaches > 0.0
        finally:
            process.close()
            serial.close()
        assert leaked_segments() == ()

    def test_deleted_ids_never_returned(self, dataset, queries):
        process = _build(dataset, pool_backend="process")
        try:
            process.delete([0, 1, 2, 3])
            result = process.search(queries, 6)
            assert not np.isin(result.ids, [0, 1, 2, 3]).any()
        finally:
            process.close()

    def test_refit_invalidates_snapshots(self, dataset, queries):
        process = _build(dataset, pool_backend="process")
        try:
            process.search(queries, 4)
            process.fit(dataset[:400])
            result = process.search(queries, 4)
            assert result.ids.max() < 400
        finally:
            process.close()
        assert leaked_segments() == ()


class TestTeardown:
    def test_close_is_idempotent(self, dataset):
        process = _build(dataset, pool_backend="process")
        process.search(dataset[:3], 2)
        process.close()
        process.close()
        assert leaked_segments() == ()

    def test_del_terminates_pool(self, dataset):
        process = _build(dataset, pool_backend="process")
        process.search(dataset[:3], 2)
        process.__del__()
        assert leaked_segments() == ()

    def test_close_with_in_flight_server_batches(self, dataset, queries):
        """Drain an async server over the process backend, then shut
        everything down: no hangs, no leaked segments."""
        from repro.serving import AsyncSearchServer

        process = _build(dataset, pool_backend="process")

        async def drive():
            async with AsyncSearchServer(process, max_batch=4) as server:
                return await asyncio.gather(
                    *[server.submit(queries[i], 5) for i in range(len(queries))]
                )

        try:
            results = asyncio.run(drive())
            reference = process.search(queries, 5)
            for i, result in enumerate(results):
                np.testing.assert_array_equal(result.ids, reference.ids[i])
        finally:
            process.close()
        assert leaked_segments() == ()


class TestDiagnostics:
    def test_stats_report_pool_backend(self, dataset):
        process = _build(dataset, pool_backend="process")
        thread = _build(dataset, pool_backend="thread")
        try:
            assert process.stats().pool_backend == "process"
            assert "(process)" in process.stats().as_table()
            assert thread.stats().pool_backend == "thread"
            assert "process" in repr(process)
        finally:
            process.close()
            thread.close()

    def test_pool_metrics_flow_into_engine_registry(self, dataset, queries):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        process = _build(dataset, pool_backend="process")
        process.metrics = registry
        try:
            process.search(queries, 4)
            labels = process._obs_labels
            assert registry.value("pool_publishes", labels) >= 3.0
            assert registry.value("pool_ipc_roundtrips", labels) > 0.0
            assert registry.value("pool_workers", labels) == 2.0
        finally:
            process.close()

    def test_invalid_pool_backend_rejected(self, dataset):
        with pytest.raises(ValueError, match="pool_backend"):
            create_index("sharded", pool_backend="fiber", num_shards=2)

    def test_start_pool_requires_process_backend(self, dataset):
        thread = _build(dataset, pool_backend="thread")
        try:
            with pytest.raises(RuntimeError):
                thread.start_pool()
        finally:
            thread.close()

    def test_start_pool_warms_up_workers(self, dataset, queries):
        process = _build(dataset, pool_backend="process")
        try:
            process.start_pool()
            assert process.worker_pool is not None
            _assert_knn_equal(
                process, _build(dataset, pool_backend="thread", num_workers=1), queries
            )
        finally:
            process.close()
        assert leaked_segments() == ()
