"""Tests for the shared-memory segment layer (:mod:`repro.parallel.shm`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SegmentHandle,
    attach_segment,
    leaked_segments,
    publish_arrays,
)


@pytest.fixture()
def sample_arrays():
    rng = np.random.default_rng(9)
    return {
        "floats": rng.normal(size=(13, 7)),
        "ints": rng.integers(0, 1000, size=29, dtype=np.int64),
        "bools": rng.random(17) < 0.5,
        "empty": np.empty((0, 4), dtype=np.float32),
        "scalarish": np.asarray([3], dtype=np.int32),
    }


class TestPublishAttach:
    def test_round_trip_preserves_values_dtypes_shapes(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        try:
            attachment = attach_segment(segment.handle)
            try:
                assert set(attachment.arrays) == set(sample_arrays)
                for key, original in sample_arrays.items():
                    view = attachment.arrays[key]
                    assert view.dtype == original.dtype, key
                    assert view.shape == original.shape, key
                    np.testing.assert_array_equal(view, original)
            finally:
                attachment.close()
        finally:
            segment.close()

    def test_views_are_read_only(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        try:
            attachment = attach_segment(segment.handle)
            try:
                view = attachment.arrays["floats"]
                assert not view.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    view[0, 0] = 42.0
            finally:
                attachment.close()
        finally:
            segment.close()

    def test_publish_copies_the_data(self, sample_arrays):
        """Mutating the source after publish must not change the segment."""
        source = sample_arrays["floats"].copy()
        segment = publish_arrays({"floats": source})
        try:
            before = source.copy()
            source[...] = -1.0
            attachment = attach_segment(segment.handle)
            try:
                np.testing.assert_array_equal(attachment.arrays["floats"], before)
            finally:
                attachment.close()
        finally:
            segment.close()

    def test_non_contiguous_input_round_trips(self):
        base = np.arange(48, dtype=np.float64).reshape(6, 8)
        strided = base[::2, ::2]  # non-contiguous view
        segment = publish_arrays({"strided": strided})
        try:
            attachment = attach_segment(segment.handle)
            try:
                np.testing.assert_array_equal(attachment.arrays["strided"], strided)
            finally:
                attachment.close()
        finally:
            segment.close()

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError, match="object dtype"):
            publish_arrays({"bad": np.asarray(["a", None], dtype=object)})

    def test_empty_mapping_publishes(self):
        segment = publish_arrays({})
        try:
            attachment = attach_segment(segment.handle)
            try:
                assert attachment.arrays == {}
            finally:
                attachment.close()
        finally:
            segment.close()

    def test_handle_is_picklable(self, sample_arrays):
        import pickle

        segment = publish_arrays(sample_arrays)
        try:
            clone = pickle.loads(pickle.dumps(segment.handle))
            assert isinstance(clone, SegmentHandle)
            assert clone == segment.handle
            attachment = attach_segment(clone)
            try:
                np.testing.assert_array_equal(
                    attachment.arrays["ints"], sample_arrays["ints"]
                )
            finally:
                attachment.close()
        finally:
            segment.close()

    def test_alignment_of_every_array(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        try:
            for spec in segment.handle.specs:
                assert spec.offset % 64 == 0
        finally:
            segment.close()


class TestLifetime:
    def test_segment_names_carry_prefix(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        try:
            assert segment.name.startswith(SEGMENT_PREFIX)
        finally:
            segment.close()

    def test_publisher_close_is_idempotent(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        segment.close()
        segment.close()  # second close must be a no-op
        assert leaked_segments() == ()

    def test_attacher_close_does_not_unlink(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        try:
            attachment = attach_segment(segment.handle)
            attachment.close()
            attachment.close()
            # Still attachable: the attacher never unlinks.
            again = attach_segment(segment.handle)
            again.close()
        finally:
            segment.close()
        assert leaked_segments() == ()

    def test_no_leaks_after_close(self, sample_arrays):
        segment = publish_arrays(sample_arrays)
        assert any(segment.name in name for name in leaked_segments())
        segment.close()
        assert all(segment.name not in name for name in leaked_segments())
