"""Index shared-memory snapshots: ``to_shm`` / ``from_shm`` round trips.

The contract under test: restoring an index from its published segment
yields **byte-identical** query results — including tie order — for kNN
and range search, with lifecycle state (epoch, tombstones) intact, and
without rebuilding any structures (the restore is a zero-copy attach).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.parallel.shm import attach_segment, leaked_segments, publish_arrays
from repro.queries import Knn, Range
from repro.registry import get_index_class


def _round_trip(index):
    """Publish the index snapshot and restore a replica from the views."""
    arrays, state = index.to_shm()
    segment = publish_arrays(arrays)
    attachment = attach_segment(segment.handle)
    replica = type(index).from_shm(attachment.arrays, state)
    return replica, segment, attachment


@pytest.fixture(params=["exact", "pm-lsh"])
def index(request, small_gaussian):
    if request.param == "exact":
        built = repro.create_index("exact").fit(small_gaussian)
    else:
        built = repro.create_index("pm-lsh", seed=11).fit(small_gaussian)
    return built


class TestRoundTrip:
    def test_knn_byte_identity(self, index, small_gaussian):
        queries = small_gaussian[:12] * 1.01
        replica, segment, attachment = _round_trip(index)
        try:
            expected = index.run(queries, Knn(k=9))
            got = replica.run(queries, Knn(k=9))
            np.testing.assert_array_equal(got.ids, expected.ids)
            np.testing.assert_array_equal(got.distances, expected.distances)
        finally:
            attachment.close()
            segment.close()

    def test_range_byte_identity(self, index, small_gaussian):
        queries = small_gaussian[:8]
        replica, segment, attachment = _round_trip(index)
        try:
            expected = index.run(queries, Range(r=5.0))
            got = replica.run(queries, Range(r=5.0))
            np.testing.assert_array_equal(got.lims, expected.lims)
            np.testing.assert_array_equal(got.ids, expected.ids)
            np.testing.assert_array_equal(got.distances, expected.distances)
        finally:
            attachment.close()
            segment.close()

    def test_lifecycle_state_travels(self, index, small_gaussian):
        index.delete([0, 5, 17])
        replica, segment, attachment = _round_trip(index)
        try:
            assert replica.epoch == index.epoch
            assert replica.nlive == index.nlive
            queries = small_gaussian[:6]
            expected = index.run(queries, Knn(k=5))
            got = replica.run(queries, Knn(k=5))
            np.testing.assert_array_equal(got.ids, expected.ids)
            assert not np.isin(got.ids, [0, 5, 17]).any()
        finally:
            attachment.close()
            segment.close()

    def test_replica_dataset_is_zero_copy(self, index):
        """The replica's dataset must be a view into the shared segment,
        not a private copy (that is the point of the snapshot path)."""
        replica, segment, attachment = _round_trip(index)
        try:
            view = attachment.arrays["data"]
            assert replica.data.base is not None or replica.data is view
            assert np.shares_memory(replica.data, view)
            assert not replica.data.flags.writeable
        finally:
            attachment.close()
            segment.close()

    def test_registry_name_round_trips(self, index):
        """Workers restore through the registry, so the class must be
        reachable by its registered name."""
        assert get_index_class(index.registry_name) is type(index)


def test_unsupported_backend_raises(small_gaussian):
    qalsh = repro.create_index("qalsh", seed=0).fit(small_gaussian)
    with pytest.raises(NotImplementedError, match="to_shm"):
        qalsh.to_shm()


def test_no_segments_leak(small_gaussian):
    index = repro.create_index("exact").fit(small_gaussian)
    replica, segment, attachment = _round_trip(index)
    attachment.close()
    segment.close()
    assert leaked_segments() == ()
