"""Tests for the per-shard top-k merge (id translation, padding, ties)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import BatchResult, QueryResult
from repro.engine.merge import merge_per_query_stats, merge_shard_results, translate_ids


def batch_of(rows, k, stats=None):
    """Build a BatchResult from per-query (ids, distances) pairs."""
    results = [
        QueryResult(
            ids=np.asarray(ids, dtype=np.int64),
            distances=np.asarray(dists, dtype=np.float64),
            stats=(stats or {}),
        )
        for ids, dists in rows
    ]
    return BatchResult.from_queries(results, k=k)


class TestTranslateIds:
    def test_maps_through_id_map(self):
        id_map = np.asarray([10, 20, 30], dtype=np.int64)
        local = np.asarray([[2, 0], [1, 2]], dtype=np.int64)
        np.testing.assert_array_equal(
            translate_ids(local, id_map), [[30, 10], [20, 30]]
        )

    def test_preserves_padding(self):
        id_map = np.asarray([10, 20], dtype=np.int64)
        local = np.asarray([[1, -1]], dtype=np.int64)
        np.testing.assert_array_equal(translate_ids(local, id_map), [[20, -1]])


class TestMerge:
    def test_global_top_k_across_shards(self):
        shard_a = batch_of([[(0, 1), (0.1, 0.5)]], k=2)
        shard_b = batch_of([[(1, 0), (0.2, 0.3)]], k=2)
        merged = merge_shard_results(
            [shard_a, shard_b],
            [np.asarray([100, 101]), np.asarray([200, 201])],
            k=3,
        )
        np.testing.assert_array_equal(merged.ids, [[100, 201, 200]])
        np.testing.assert_allclose(merged.distances, [[0.1, 0.2, 0.3]])

    def test_padding_sorts_last_and_stays_canonical(self):
        shard_a = batch_of([[(0,), (0.4,)]], k=3)  # only 1 of 3 found
        shard_b = batch_of([[(0,), (0.1,)]], k=3)
        merged = merge_shard_results(
            [shard_a, shard_b], [np.asarray([7]), np.asarray([9])], k=3
        )
        np.testing.assert_array_equal(merged.ids, [[9, 7, -1]])
        assert merged.distances[0, 2] == np.inf

    def test_ties_break_by_global_id(self):
        shard_a = batch_of([[(0,), (0.5,)]], k=1)
        shard_b = batch_of([[(0,), (0.5,)]], k=1)
        merged = merge_shard_results(
            [shard_b, shard_a], [np.asarray([42]), np.asarray([3])], k=2
        )
        np.testing.assert_array_equal(merged.ids, [[3, 42]])

    def test_mismatched_inputs_rejected(self):
        batch = batch_of([[(0,), (0.5,)]], k=1)
        with pytest.raises(ValueError, match="id maps"):
            merge_shard_results([batch], [np.asarray([1]), np.asarray([2])], k=1)
        with pytest.raises(ValueError, match="at least one shard"):
            merge_shard_results([], [], k=1)
        two_queries = batch_of([[(0,), (0.5,)], [(0,), (0.5,)]], k=1)
        with pytest.raises(ValueError, match="query counts"):
            merge_shard_results(
                [batch, two_queries], [np.asarray([1]), np.asarray([2])], k=1
            )


class TestStatMerging:
    def test_counters_sum_and_rest_average(self):
        merged = merge_per_query_stats(
            [
                ({"candidates": 10.0, "rounds": 2.0},),
                ({"candidates": 30.0, "rounds": 4.0},),
            ]
        )
        assert merged[0]["candidates"] == 40.0
        assert merged[0]["rounds"] == 3.0

    def test_missing_keys_tolerated(self):
        merged = merge_per_query_stats([({"candidates": 5.0},), ({},)])
        assert merged[0]["candidates"] == 5.0
