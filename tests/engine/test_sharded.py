"""Tests for the ShardedIndex serving engine.

The load-bearing guarantees:

* sharded search over the *exact* backend merges to results identical to
  a single exact index on the same data (ids and distances);
* a fixed engine seed gives identical results across runs and across
  worker counts, for every shard count;
* ``add()`` routing keeps global ids append-only and stable, with the
  global → (shard, local) mapping consistent at all times.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ShardedIndex, create_index
from repro.engine.stats import EngineStats


@pytest.fixture(scope="module")
def queries(small_clustered):
    rng = np.random.default_rng(77)
    return small_clustered[:20] + rng.normal(size=(20, small_clustered.shape[1])) * 0.05


class TestExactEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_matches_single_exact_index(self, small_clustered, queries, num_shards):
        single = create_index("exact").fit(small_clustered)
        sharded = create_index(
            "sharded", backend="exact", num_shards=num_shards
        ).fit(small_clustered)
        expected = single.search(queries, k=10)
        merged = sharded.search(queries, k=10)
        np.testing.assert_array_equal(merged.ids, expected.ids)
        np.testing.assert_allclose(merged.distances, expected.distances, rtol=1e-12)

    def test_matches_after_interleaved_adds(self, small_clustered, queries):
        base, extra = small_clustered[:700], small_clustered[700:]
        sharded = create_index("sharded", backend="exact", num_shards=4).fit(base)
        sharded.add(extra[:50])
        sharded.add(extra[50:])
        single = create_index("exact").fit(small_clustered)
        expected = single.search(queries, k=10)
        merged = sharded.search(queries, k=10)
        np.testing.assert_array_equal(merged.ids, expected.ids)
        np.testing.assert_allclose(merged.distances, expected.distances, rtol=1e-12)

    def test_k_exceeding_shard_size_stays_exact(self, tiny_uniform):
        """With 200 points over 8 shards, k=40 > 25 per shard: every shard
        contributes everything it can and the merge is still exact."""
        single = create_index("exact").fit(tiny_uniform)
        sharded = create_index("sharded", backend="exact", num_shards=8).fit(
            tiny_uniform
        )
        q = tiny_uniform[:5] + 0.001
        expected = single.search(q, k=40)
        merged = sharded.search(q, k=40)
        np.testing.assert_array_equal(merged.ids, expected.ids)

    def test_single_query_path_matches_batch(self, small_clustered, queries):
        sharded = create_index("sharded", backend="exact", num_shards=3).fit(
            small_clustered
        )
        batch = sharded.search(queries, k=5)
        single = sharded.query(queries[0], k=5)
        np.testing.assert_array_equal(single.ids, batch.ids[0])


class TestDeterminism:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_fixed_seed_reproduces(self, small_clustered, queries, num_shards):
        def run():
            engine = create_index(
                "sharded", backend="pm-lsh", num_shards=num_shards, seed=9
            ).fit(small_clustered)
            return engine.search(queries, k=10)

        first, second = run(), run()
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_allclose(first.distances, second.distances, rtol=1e-12)

    def test_worker_count_does_not_change_results(self, small_clustered, queries):
        results = []
        for workers in (1, 2, 4):
            engine = create_index(
                "sharded",
                backend="pm-lsh",
                num_shards=4,
                num_workers=workers,
                seed=9,
            ).fit(small_clustered)
            results.append(engine.search(queries, k=10))
        np.testing.assert_array_equal(results[0].ids, results[1].ids)
        np.testing.assert_array_equal(results[0].ids, results[2].ids)

    def test_shard_seeds_differ_under_one_master_seed(self, small_clustered):
        engine = create_index(
            "sharded", backend="pm-lsh", num_shards=2, seed=3
        ).fit(small_clustered)
        a, b = engine.shards
        assert not np.allclose(
            a.projection.directions, b.projection.directions
        ), "shards must draw independent projections from the master seed"

    def test_backend_params_seed_is_derived_not_copied(self, small_clustered):
        """A seed supplied through backend_params acts as the master seed:
        deterministic, but never the *same* seed in every shard."""

        def run():
            return create_index(
                "sharded",
                backend="pm-lsh",
                num_shards=2,
                backend_params={"seed": 5},
            ).fit(small_clustered)

        engine = run()
        a, b = engine.shards
        assert not np.allclose(a.projection.directions, b.projection.directions)
        again = run()
        np.testing.assert_array_equal(
            a.projection.directions, again.shards[0].projection.directions
        )


class TestAddRouting:
    def test_global_ids_stay_stable_and_contiguous(self, small_clustered):
        base, extra = small_clustered[:600], small_clustered[600:650]
        engine = create_index("sharded", backend="exact", num_shards=4).fit(base)
        before = [m.copy() for m in engine._id_maps]
        new_ids = engine.add(extra)
        np.testing.assert_array_equal(new_ids, np.arange(600, 650))
        assert engine.ntotal == 650
        # Existing assignments never move: the old maps are prefixes.
        for old, now in zip(before, engine._id_maps):
            np.testing.assert_array_equal(now[: old.size], old)

    def test_locate_round_trip(self, small_clustered):
        engine = create_index("sharded", backend="exact", num_shards=3).fit(
            small_clustered[:500]
        )
        engine.add(small_clustered[500:530])
        for gid in [0, 1, 7, 499, 500, 529]:
            shard, local = engine.locate(gid)
            np.testing.assert_array_equal(
                engine.shards[shard].data[local], engine.data[gid]
            )
            assert int(engine._id_maps[shard][local]) == gid

    def test_locate_out_of_range(self, tiny_uniform):
        engine = create_index("sharded", backend="exact", num_shards=2).fit(
            tiny_uniform
        )
        with pytest.raises(IndexError):
            engine.locate(tiny_uniform.shape[0])

    def test_round_robin_keeps_shards_balanced(self, tiny_uniform):
        engine = create_index("sharded", backend="exact", num_shards=4).fit(
            tiny_uniform
        )
        engine.add(tiny_uniform[:10])
        engine.add(tiny_uniform[:3])
        sizes = engine.shard_sizes
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == engine.ntotal

    def test_least_loaded_rebalances(self, tiny_uniform):
        engine = create_index(
            "sharded", backend="exact", num_shards=4, router="least-loaded"
        ).fit(tiny_uniform)  # 200 points stripe evenly: 50 per shard
        engine.shards  # noqa: B018  (just materialise the tuple)
        engine.add(tiny_uniform[:6])
        sizes = engine.shard_sizes
        assert max(sizes) - min(sizes) <= 1

    def test_fresh_points_immediately_findable(self, small_clustered):
        engine = create_index(
            "sharded", backend="pm-lsh", num_shards=4, seed=2
        ).fit(small_clustered[:600])
        new_ids = engine.add(small_clustered[600:610])
        hit = engine.query(small_clustered[605], k=1)
        assert int(hit.ids[0]) == int(new_ids[5])
        assert hit.distances[0] == pytest.approx(0.0, abs=1e-9)


class TestStats:
    def test_engine_stats_aggregate(self, small_clustered, queries):
        engine = create_index(
            "sharded", backend="pm-lsh", num_shards=4, seed=1
        ).fit(small_clustered)
        engine.search(queries, k=5)
        engine.search(queries[:8], k=5)
        engine.add(small_clustered[:12])
        stats = engine.stats()
        assert isinstance(stats, EngineStats)
        assert stats.batches_served == 2
        assert stats.queries_served == queries.shape[0] + 8
        assert stats.points_added == 12
        assert stats.ntotal == engine.ntotal
        assert stats.qps > 0
        assert stats.last_batch_queries == 8
        assert sum(shard.ntotal for shard in stats.shards) == engine.ntotal

    def test_per_shard_stats_surface_repr_and_ntotal(self, small_clustered, queries):
        engine = create_index(
            "sharded", backend="pm-lsh", num_shards=2, seed=1
        ).fit(small_clustered)
        engine.search(queries, k=5)
        stats = engine.stats()
        for s, shard_stats in enumerate(stats.shards):
            assert shard_stats.backend == "pm-lsh"
            assert shard_stats.ntotal == engine.shards[s].ntotal
            assert f"ntotal={shard_stats.ntotal}" in shard_stats.repr
            assert shard_stats.search_ms >= 0.0
        table = stats.as_table()
        assert "Shard" in table and "pm-lsh" in table

    def test_batch_stats_carry_engine_fields(self, small_clustered, queries):
        engine = create_index(
            "sharded", backend="exact", num_shards=4, num_workers=2
        ).fit(small_clustered)
        batch = engine.search(queries, k=5)
        assert batch.stats["num_shards"] == 4.0
        assert batch.stats["num_workers"] == 2.0
        assert batch.stats["batch_qps"] > 0
        assert batch.stats["shard_time_ms_max"] >= batch.stats["shard_time_ms_mean"]
        # Per-query candidate counts sum over shards: exact scans everything.
        assert batch.stats["candidates"] == float(engine.ntotal)

    def test_stats_before_fit_raise(self):
        with pytest.raises(RuntimeError):
            ShardedIndex(num_shards=2).stats()


class TestValidationAndLifecycle:
    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedIndex(num_shards=0)
        with pytest.raises(ValueError, match="num_workers"):
            ShardedIndex(num_workers=0)
        with pytest.raises(TypeError, match="backend"):
            ShardedIndex(backend=42)
        with pytest.raises(ValueError, match="unknown router policy"):
            ShardedIndex(router="no-such-policy")
        with pytest.raises(KeyError, match="unknown index"):
            ShardedIndex(backend="no-such-backend")

    def test_fit_requires_one_point_per_shard(self):
        data = np.random.default_rng(0).normal(size=(3, 4))
        with pytest.raises(ValueError, match="stripe"):
            ShardedIndex(backend="exact", num_shards=4).fit(data)

    def test_rejected_refit_leaves_engine_healthy(self, tiny_uniform):
        engine = create_index("sharded", backend="exact", num_shards=4).fit(
            tiny_uniform
        )
        with pytest.raises(ValueError, match="stripe"):
            engine.fit(tiny_uniform[:2])
        assert engine.is_built
        assert engine.ntotal == tiny_uniform.shape[0]
        result = engine.query(tiny_uniform[5], k=1)
        assert int(result.ids[0]) == 5

    def test_backend_params_reach_every_shard(self, tiny_uniform):
        engine = create_index(
            "sharded",
            backend="lscan",
            num_shards=2,
            backend_params={"portion": 0.4},
            seed=1,
        ).fit(tiny_uniform)
        assert all(shard.portion == 0.4 for shard in engine.shards)

    def test_refit_rebuilds_cleanly(self, tiny_uniform, small_gaussian):
        engine = create_index("sharded", backend="exact", num_shards=2).fit(
            tiny_uniform
        )
        engine.search(tiny_uniform[:3], k=2)
        engine.fit(small_gaussian)
        assert engine.ntotal == small_gaussian.shape[0]
        assert engine.stats().batches_served == 0  # counters reset on refit
        result = engine.query(small_gaussian[3], k=1)
        assert int(result.ids[0]) == 3

    def test_close_is_idempotent_and_recoverable(self, tiny_uniform):
        engine = create_index(
            "sharded", backend="exact", num_shards=2, num_workers=2
        ).fit(tiny_uniform)
        engine.search(tiny_uniform[:2], k=1)
        engine.close()
        engine.close()
        batch = engine.search(tiny_uniform[:2], k=1)  # pool comes back
        assert batch.ids.shape == (2, 1)

    def test_registered_in_factory_and_package(self):
        assert repro.get_index_class("sharded") is ShardedIndex
        assert "sharded" in repro.available_indexes()

    def test_harness_drives_engine_with_no_special_casing(self, tiny_uniform):
        from repro.evaluation import evaluate_algorithm

        result = evaluate_algorithm(
            "sharded",
            tiny_uniform,
            tiny_uniform[:5] + 0.001,
            k=3,
            index_params={"backend": "exact", "num_shards": 4},
        )
        assert result.recall == pytest.approx(1.0)
        assert result.extra["ntotal"] == float(tiny_uniform.shape[0])
        assert "n=200" in result.as_row()
