"""Tests for the shard routing policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.router import (
    LeastLoadedRouter,
    RoundRobinRouter,
    ShardRouter,
    make_router,
)


class TestRoundRobin:
    def test_cycles_through_shards(self):
        router = RoundRobinRouter()
        assignment = router.route(7, loads=[0, 0, 0])
        np.testing.assert_array_equal(assignment, [0, 1, 2, 0, 1, 2, 0])

    def test_cursor_persists_across_calls(self):
        router = RoundRobinRouter()
        router.route(2, loads=[0, 0, 0])
        assignment = router.route(3, loads=[0, 0, 0])
        np.testing.assert_array_equal(assignment, [2, 0, 1])

    def test_reset_continues_the_fit_stripe(self):
        """After striping 10 points over 4 shards, point 10 belongs on
        shard 10 mod 4 = 2."""
        router = RoundRobinRouter()
        router.reset(loads=[3, 3, 2, 2])
        assignment = router.route(2, loads=[3, 3, 2, 2])
        np.testing.assert_array_equal(assignment, [2, 3])


class TestLeastLoaded:
    def test_fills_smallest_first(self):
        router = LeastLoadedRouter()
        assignment = router.route(4, loads=[5, 1, 3])
        # loads evolve [5,1,3] -> [5,2,3] -> [5,3,3] -> [5,4,3] (ties -> lowest)
        np.testing.assert_array_equal(assignment, [1, 1, 1, 2])

    def test_counts_points_within_batch(self):
        router = LeastLoadedRouter()
        assignment = router.route(6, loads=[0, 0])
        np.testing.assert_array_equal(np.bincount(assignment), [3, 3])

    def test_ties_break_to_lowest_shard(self):
        router = LeastLoadedRouter()
        assert router.route(1, loads=[2, 2, 2])[0] == 0


class TestMakeRouter:
    def test_by_name(self):
        assert isinstance(make_router("round-robin"), RoundRobinRouter)
        assert isinstance(make_router("least-loaded"), LeastLoadedRouter)

    def test_instance_passthrough(self):
        router = RoundRobinRouter()
        assert make_router(router) is router

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            make_router("hash-ring")

    def test_custom_router_is_a_shard_router(self):
        class Constant(ShardRouter):
            policy = "constant"

            def route(self, num_points, loads):
                return np.zeros(num_points, dtype=np.int64)

        assert make_router(Constant()).route(2, [0, 0]).tolist() == [0, 0]
