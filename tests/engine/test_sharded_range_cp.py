"""Sharded range / closest-pair equivalence with the single-index path.

With exact shards every stage of the distributed pipeline is exact, so
the merged answers must be **byte-identical** to one exact index over the
full dataset — including under exact distance ties (duplicate points),
which the deterministic ``(distance, id)`` / ``(distance, i, j)``
orderings resolve identically on both paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExactKNN, ShardedIndex, create_index
from repro.engine.merge import merge_shard_range_results
from repro.queries import RangeResult

RADIUS = 5.0


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:500]


@pytest.fixture(scope="module")
def tied_data(small_clustered):
    """A dataset with planted exact duplicates: tied distances everywhere.

    Rows 0..49 are repeated three times, so every query sits at exactly
    the same distance from three distinct ids, and zero-distance pairs
    abound for closest-pair search.
    """
    base = small_clustered[:200]
    return np.vstack([base, base[:50], base[:50]])


@pytest.fixture(scope="module")
def single(data):
    return ExactKNN().fit(data)


def make_engine(num_shards, num_workers, backend="exact"):
    return create_index(
        "sharded", backend=backend, num_shards=num_shards, num_workers=num_workers
    )


class TestShardedRangeEquivalence:
    @pytest.mark.parametrize("num_shards,num_workers", [(2, 1), (3, 2), (5, 4)])
    def test_byte_identical_to_single_exact(
        self, data, single, num_shards, num_workers
    ):
        queries = data[:12] + 0.01
        truth = single.range_search(queries, RADIUS)
        engine = make_engine(num_shards, num_workers).fit(data)
        merged = engine.range_search(queries, RADIUS)
        np.testing.assert_array_equal(merged.lims, truth.lims)
        np.testing.assert_array_equal(merged.ids, truth.ids)
        np.testing.assert_array_equal(merged.distances, truth.distances)
        engine.close()

    def test_tied_distances_order_identically(self, tied_data):
        single = ExactKNN().fit(tied_data)
        engine = make_engine(3, 2).fit(tied_data)
        queries = tied_data[:8]  # duplicated rows: exact ties at distance 0
        truth = single.range_search(queries, RADIUS)
        merged = engine.range_search(queries, RADIUS)
        np.testing.assert_array_equal(merged.lims, truth.lims)
        np.testing.assert_array_equal(merged.ids, truth.ids)
        np.testing.assert_array_equal(merged.distances, truth.distances)
        engine.close()

    def test_range_after_add(self, data, single):
        engine = make_engine(3, 1).fit(data[:400])
        engine.add(data[400:])
        queries = data[:6] + 0.01
        truth = single.range_search(queries, RADIUS)
        merged = engine.range_search(queries, RADIUS)
        np.testing.assert_array_equal(merged.ids, truth.ids)
        np.testing.assert_array_equal(merged.distances, truth.distances)
        engine.close()

    def test_stats_counters(self, data):
        engine = make_engine(2, 1).fit(data)
        engine.range_search(data[:5] + 0.01, RADIUS)
        stats = engine.stats()
        assert stats.range_queries_served == 5
        assert stats.queries_served == 5
        engine.close()


class TestShardedClosestPairEquivalence:
    @pytest.mark.parametrize("num_shards,num_workers", [(2, 1), (3, 2), (4, 4)])
    def test_byte_identical_to_single_exact(
        self, data, single, num_shards, num_workers
    ):
        truth = single.closest_pairs(8)
        engine = make_engine(num_shards, num_workers).fit(data)
        merged = engine.closest_pairs(8)
        np.testing.assert_array_equal(merged.pairs, truth.pairs)
        np.testing.assert_array_equal(merged.distances, truth.distances)
        engine.close()

    def test_tied_zero_distance_pairs(self, tied_data):
        """Duplicate triples create zero-distance pairs whose members live
        on different shards; the cross-shard sweep must recover them and
        order the ties by (i, j) exactly like the single index."""
        single = ExactKNN().fit(tied_data)
        truth = single.closest_pairs(20)
        assert float(truth.distances[0]) == 0.0  # the planting worked
        engine = make_engine(3, 2).fit(tied_data)
        merged = engine.closest_pairs(20)
        np.testing.assert_array_equal(merged.pairs, truth.pairs)
        np.testing.assert_array_equal(merged.distances, truth.distances)
        engine.close()

    def test_fallback_when_shards_too_small(self, data):
        """More shards than intra pairs per shard: the engine's exact
        global fallback still answers correctly."""
        tiny = data[:8]
        single = ExactKNN().fit(tiny)
        engine = make_engine(4, 1).fit(tiny)
        truth = single.closest_pairs(20)
        merged = engine.closest_pairs(20)
        np.testing.assert_array_equal(merged.pairs, truth.pairs)
        np.testing.assert_array_equal(merged.distances, truth.distances)
        engine.close()

    def test_cp_counter(self, data):
        engine = make_engine(2, 1).fit(data)
        engine.closest_pairs(3)
        assert engine.stats().closest_pair_calls == 1
        engine.close()


class TestShardedPMLSHRangeCP:
    """With LSH shards the engine inherits the approximate guarantees."""

    def test_pmlsh_sharded_range_recall(self, data, single):
        from repro.evaluation.metrics import range_recall

        engine = ShardedIndex(
            backend="pm-lsh", num_shards=3, num_workers=2, seed=5
        ).fit(data)
        queries = data[:10] + 0.01
        truth = single.range_search(queries, RADIUS)
        merged = engine.range_search(queries, RADIUS)
        recalls = [
            range_recall(merged[i].ids, truth[i].ids) for i in range(len(truth))
        ]
        assert float(np.mean(recalls)) >= 0.9
        # nothing beyond the c·r slack
        assert all(
            np.all(merged[i].distances <= 1.5 * RADIUS + 1e-9)
            for i in range(len(merged))
        )
        engine.close()

    def test_pmlsh_sharded_cp_quality(self, data, single):
        truth = single.closest_pairs(5)
        engine = ShardedIndex(
            backend="pm-lsh", num_shards=3, num_workers=2, seed=5
        ).fit(data)
        merged = engine.closest_pairs(5)
        ratios = merged.distances / truth.distances
        assert np.all(ratios >= 1.0 - 1e-12)
        assert float(np.mean(ratios)) <= 1.3
        engine.close()


class TestRangeMergeUnit:
    def test_merge_reorders_by_distance_then_gid(self):
        shard_a = RangeResult(
            lims=np.array([0, 2]),
            ids=np.array([0, 1]),          # local ids
            distances=np.array([0.5, 0.2]),
        )
        shard_b = RangeResult(
            lims=np.array([0, 2]),
            ids=np.array([0, 1]),
            distances=np.array([0.2, 0.4]),
        )
        merged = merge_shard_range_results(
            [shard_a, shard_b],
            [np.array([0, 2]), np.array([1, 3])],
        )
        np.testing.assert_array_equal(merged.lims, [0, 4])
        # distances 0.2 (gid 2), 0.2 (gid 1) tie -> gid order; then 0.4, 0.5
        np.testing.assert_array_equal(merged.ids, [1, 2, 3, 0])
        np.testing.assert_array_equal(merged.distances, [0.2, 0.2, 0.4, 0.5])

    def test_mismatched_query_counts_rejected(self):
        one = RangeResult(
            lims=np.array([0, 1]), ids=np.array([0]), distances=np.array([0.1])
        )
        two = RangeResult(
            lims=np.array([0, 0, 0]),
            ids=np.empty(0, dtype=np.int64),
            distances=np.empty(0),
        )
        with pytest.raises(ValueError):
            merge_shard_range_results([one, two], [np.array([0]), np.array([1])])

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            merge_shard_range_results([], [])


class TestKnnBoundaryTies:
    def test_exact_knn_matches_sharded_when_ties_straddle_k(self):
        """Regression: argpartition used to pick an arbitrary subset of
        points tied at the k-th distance, so single-exact and sharded-exact
        could disagree on which tied ids made the cut."""
        # 8 points at distance 1 from the origin-query, 42 tied at 2.
        d = 6
        close = np.zeros((8, d))
        close[:, 0] = 1.0
        far = np.zeros((42, d))
        far[:, 1] = 2.0
        data = np.vstack([close, far])
        q = np.zeros((1, d))
        single = ExactKNN().fit(data).search(q, 10)
        engine = make_engine(3, 2).fit(data)
        merged = engine.search(q, 10)
        np.testing.assert_array_equal(single.ids, merged.ids)
        np.testing.assert_array_equal(single.distances, merged.distances)
        # the deterministic cut: the two tied slots go to the SMALLEST ids
        np.testing.assert_array_equal(np.sort(single.ids[0][:8]), np.arange(8))
        np.testing.assert_array_equal(single.ids[0][8:], [8, 9])
        engine.close()
