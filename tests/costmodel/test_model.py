"""Tests for the §4.2 cost models (Table 2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import gammaln

from repro.costmodel.model import (
    compare_trees,
    isochoric_cube_side,
    pm_tree_computation_cost,
    r_tree_computation_cost,
    selectivity_radius,
)
from repro.datasets.distance import (
    MarginalDistribution,
    sample_distance_distribution,
)
from repro.pmtree.tree import PMTree
from repro.rtree.tree import RTree


@pytest.fixture(scope="module")
def setup(projected_points):
    distribution = sample_distance_distribution(projected_points, num_pairs=20000, seed=0)
    marginals = MarginalDistribution.from_points(projected_points)
    pm = PMTree.build(projected_points, num_pivots=5, capacity=16, seed=1)
    rt = RTree.build(projected_points, capacity=16)
    return projected_points, distribution, marginals, pm, rt


class TestIsochoricCube:
    def test_matches_closed_form_low_dim(self):
        # m = 2: ball area pi*r^2 -> square side sqrt(pi)*r.
        assert isochoric_cube_side(2, 1.0) == pytest.approx(np.sqrt(np.pi))

    def test_matches_log_gamma_form(self):
        for m in [1, 5, 15, 50]:
            expected = np.exp(
                ((m / 2) * np.log(np.pi) - gammaln(m / 2 + 1)) / m
            )
            assert isochoric_cube_side(m, 1.0) == pytest.approx(expected)

    def test_scales_linearly_with_radius(self):
        assert isochoric_cube_side(15, 2.0) == pytest.approx(
            2.0 * isochoric_cube_side(15, 1.0)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            isochoric_cube_side(0, 1.0)
        with pytest.raises(ValueError):
            isochoric_cube_side(3, -1.0)


class TestSelectivityRadius:
    def test_hits_target_fraction(self, setup):
        _, distribution, _, _, _ = setup
        radius = selectivity_radius(distribution, fraction=0.08)
        assert distribution.cdf(radius) == pytest.approx(0.08, abs=0.01)

    def test_invalid_fraction(self, setup):
        _, distribution, _, _, _ = setup
        with pytest.raises(ValueError):
            selectivity_radius(distribution, fraction=0.0)


class TestCostModels:
    def test_costs_positive_and_bounded(self, setup):
        points, distribution, marginals, pm, rt = setup
        radius = selectivity_radius(distribution, 0.08)
        pm_cost = pm_tree_computation_cost(pm, distribution, radius)
        rt_cost = r_tree_computation_cost(rt, marginals, radius)
        total_entries_pm = sum(
            len(node.ids) if node.is_leaf else len(node.entries)
            for _, node in pm.iter_nodes()
        )
        assert 0 < pm_cost <= total_entries_pm
        assert 0 < rt_cost

    def test_cost_monotone_in_radius(self, setup):
        _, distribution, marginals, pm, rt = setup
        radii = [selectivity_radius(distribution, f) for f in (0.02, 0.08, 0.3)]
        pm_costs = [pm_tree_computation_cost(pm, distribution, r) for r in radii]
        rt_costs = [r_tree_computation_cost(rt, marginals, r) for r in radii]
        assert pm_costs == sorted(pm_costs)
        assert rt_costs == sorted(rt_costs)

    def test_pm_tree_cheaper_at_paper_selectivity(self, setup):
        """Table 2's claim on our emulation: the PM-tree's estimated CC is
        below the R-tree's at ~8% selectivity."""
        _, distribution, marginals, pm, rt = setup
        radius = selectivity_radius(distribution, 0.08)
        comparison = compare_trees("test", pm, rt, distribution, marginals, radius)
        assert comparison.pm_tree_cost < comparison.r_tree_cost
        assert 0.0 < comparison.reduction < 1.0

    def test_model_tracks_measured_cost(self, setup):
        """The PM-tree model should predict the measured distance
        computations within a small factor (it is a model, not an oracle)."""
        points, distribution, _, pm, _ = setup
        radius = selectivity_radius(distribution, 0.08)
        predicted = pm_tree_computation_cost(pm, distribution, radius)
        pm.reset_counters()
        rng = np.random.default_rng(3)
        trials = 20
        for _ in range(trials):
            query = points[rng.integers(0, len(points))]
            pm.range_query(query, radius)
        measured = pm.distance_computations / trials
        assert predicted == pytest.approx(measured, rel=1.0)

    def test_negative_radius_rejected(self, setup):
        _, distribution, marginals, pm, rt = setup
        with pytest.raises(ValueError):
            pm_tree_computation_cost(pm, distribution, -1.0)
        with pytest.raises(ValueError):
            r_tree_computation_cost(rt, marginals, -1.0)

    def test_reduction_zero_when_rtree_free(self):
        from repro.costmodel.model import CostComparison

        comparison = CostComparison(dataset="x", pm_tree_cost=1.0, r_tree_cost=0.0)
        assert comparison.reduction == 0.0
