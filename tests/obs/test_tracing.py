"""Tests for trace spans: sampling, nesting, cross-thread attachment,
and the determinism contract (same seed + queries → same structure)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Knn, create_index
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Trace, Tracer, current_trace, use_trace


class TestSampling:
    def test_rate_zero_returns_none_and_allocates_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        for _ in range(50):
            assert tracer.start() is None
        assert tracer.started == 50
        assert tracer.sampled == 0
        assert tracer.peek() == []

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.start() for _ in range(10)]
        assert all(t is not None for t in traces)
        assert tracer.sampled == 10
        assert [t.trace_id for t in traces] == list(range(10))

    def test_partial_rate_is_seed_deterministic(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample_rate=0.5, seed=42)
            decisions.append([tracer.start() is not None for _ in range(100)])
        assert decisions[0] == decisions[1]
        assert 10 < sum(decisions[0]) < 90  # actually partial

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, keep=4)
        for _ in range(10):
            tracer.finish(tracer.start())
        kept = tracer.peek()
        assert len(kept) == 4
        assert [t.trace_id for t in kept] == [6, 7, 8, 9]
        assert len(tracer.drain()) == 4
        assert tracer.peek() == []


class TestSpanTree:
    def test_nesting_and_depth_first_names(self):
        trace = Trace(0, "request")
        with trace.span("a"):
            with trace.span("b", detail=1):
                pass
            with trace.span("c"):
                pass
        assert trace.span_names() == ["request", "a", "b", "c"]
        assert trace.find("b").meta == {"detail": 1}
        assert trace.find("missing") is None

    def test_durations_are_nonnegative(self):
        trace = Trace(0)
        with trace.span("work") as span:
            pass
        assert span.duration_ms >= 0.0
        trace.finish()
        assert trace.duration_ms >= span.duration_ms

    def test_add_span_attaches_measured_interval(self):
        trace = Trace(0)
        span = trace.add_span("queue_wait", 1.0, 1.5, reason="deadline")
        assert span.duration_ms == pytest.approx(500.0)
        assert trace.root.children == [span]
        assert span.meta == {"reason": "deadline"}

    def test_as_dict_shape(self):
        trace = Trace(3, "request", spec="Knn(k=5)")
        with trace.span("a"):
            pass
        payload = trace.as_dict()
        assert payload["trace_id"] == 3
        assert payload["meta"] == {"spec": "Knn(k=5)"}
        assert payload["spans"]["name"] == "request"
        assert payload["spans"]["children"][0]["name"] == "a"

    def test_cross_thread_spans_attach_under_anchor(self):
        """A pool thread with an empty stack lands under the anchored span —
        the mechanism that nests shard spans under the serving span."""
        trace = Trace(0)
        with trace.span("index_run") as run_span:
            with trace.anchored(run_span):

                def worker(i):
                    with trace.span("shard_search", shard=i):
                        pass

                threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        names = trace.span_names()
        assert names[0:2] == ["request", "index_run"]
        assert names.count("shard_search") == 3
        assert all(child.name == "shard_search" for child in run_span.children)

    def test_attach_grafts_shared_subtree(self):
        batch = Trace(-1, "batch")
        with batch.span("batch_assembly"):
            pass
        request = Trace(0)
        for child in batch.root.children:
            request.attach(child)
        assert request.span_names() == ["request", "batch_assembly"]
        # shared by reference, not copied
        assert request.root.children[0] is batch.root.children[0]


class TestThreadLocalPropagation:
    def test_current_trace_default_none(self):
        assert current_trace() is None

    def test_use_trace_scopes_and_restores(self):
        trace = Trace(0)
        with use_trace(trace):
            assert current_trace() is trace
            with use_trace(None):
                assert current_trace() is None
            assert current_trace() is trace
        assert current_trace() is None

    def test_other_threads_see_nothing(self):
        trace = Trace(0)
        seen = []
        with use_trace(trace):
            thread = threading.Thread(target=lambda: seen.append(current_trace()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestTracedProbeDeterminism:
    """Same seed + same queries → identical span structure and counters."""

    def _run_once(self, data, queries):
        registry = MetricsRegistry()
        index = create_index("pm-lsh", seed=9)
        index.metrics = registry
        index.fit(data)
        trace = Tracer(sample_rate=1.0, seed=1).start("request")
        with use_trace(trace), trace.span("index_run"):
            batch = index.run(queries, Knn(k=5))
        trace.finish()
        counters = {
            name: registry.total(name)
            for name in ("tree_nodes_visited", "candidates_verified", "probe_rounds")
        }
        return trace.span_names(), counters, batch.ids

    def test_two_runs_identical(self, small_clustered):
        data = small_clustered[:500]
        queries = small_clustered[500:508]
        names_a, counters_a, ids_a = self._run_once(data, queries)
        names_b, counters_b, ids_b = self._run_once(data, queries)
        assert names_a == names_b
        assert counters_a == counters_b
        np.testing.assert_array_equal(ids_a, ids_b)
        # the structure actually covers the probe
        assert "tree_traversal" in names_a
        assert "verification" in names_a
        assert counters_a["tree_nodes_visited"] > 0
        assert counters_a["candidates_verified"] > 0

    def test_sampling_off_produces_zero_spans(self, small_clustered):
        data = small_clustered[:300]
        registry = MetricsRegistry()
        index = create_index("pm-lsh", seed=9)
        index.metrics = registry
        index.fit(data)
        tracer = Tracer(sample_rate=0.0)
        trace = tracer.start("request")
        assert trace is None
        with use_trace(trace):
            index.run(small_clustered[300:305], Knn(k=3))
        assert tracer.sampled == 0
        assert tracer.peek() == []
        # counters still tick with tracing off
        assert registry.total("tree_nodes_visited") > 0
