"""Tests for the metrics registry: instruments, the latency ring, exporters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.export import parse_prometheus
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LatencyWindow,
    MetricsRegistry,
    default_registry,
)


class TestLatencyWindowRing:
    """The bounded ring: wrap-around, partial fill, NaN, snapshot, reset."""

    def test_nan_before_first_sample(self):
        window = LatencyWindow(16)
        assert math.isnan(window.percentile(50.0))
        assert math.isnan(window.p50)
        assert math.isnan(window.p99)
        assert math.isnan(window.mean)
        snap = window.snapshot()
        assert snap.count == 0
        for value in (snap.mean, snap.p50, snap.p90, snap.p99):
            assert math.isnan(value)

    def test_partial_fill_percentiles(self):
        window = LatencyWindow(100)
        samples = [3.0, 1.0, 4.0, 1.5, 9.0]
        for s in samples:
            window.record(s)
        assert window.count == 5
        assert window.percentile(50.0) == pytest.approx(np.percentile(samples, 50))
        assert window.mean == pytest.approx(np.mean(samples))

    def test_wrap_around_evicts_oldest(self):
        window = LatencyWindow(8)
        for i in range(20):
            window.record(float(i))
        # Lifetime count keeps growing; the retained window holds the
        # newest `capacity` samples (12..19), the rest are evicted.
        assert window.count == 20
        assert window.capacity == 8
        retained = np.arange(12.0, 20.0)
        assert window.percentile(0.0) == pytest.approx(12.0)
        assert window.percentile(100.0) == pytest.approx(19.0)
        assert window.percentile(50.0) == pytest.approx(np.percentile(retained, 50))
        assert window.mean == pytest.approx(retained.mean())

    def test_wrapped_vs_partial_same_samples(self):
        """A wrapped window and a fresh window over the same values agree."""
        wrapped = LatencyWindow(4)
        for s in [100.0, 200.0, 1.0, 2.0, 3.0, 4.0]:  # first two evicted
            wrapped.record(s)
        fresh = LatencyWindow(16)
        for s in [1.0, 2.0, 3.0, 4.0]:
            fresh.record(s)
        for p in (0.0, 25.0, 50.0, 99.0):
            assert wrapped.percentile(p) == pytest.approx(fresh.percentile(p))

    def test_snapshot_matches_percentile_calls(self):
        window = LatencyWindow(64)
        rng = np.random.default_rng(0)
        for s in rng.exponential(5.0, size=50):
            window.record(float(s))
        snap = window.snapshot()
        assert snap.count == 50
        assert snap.p50 == pytest.approx(window.percentile(50.0))
        assert snap.p90 == pytest.approx(window.percentile(90.0))
        assert snap.p99 == pytest.approx(window.percentile(99.0))
        assert snap.mean == pytest.approx(window.mean)
        assert set(snap.as_dict()) == {"count", "mean", "p50", "p90", "p99"}

    def test_reset_forgets_everything(self):
        window = LatencyWindow(8)
        for s in (1.0, 2.0, 3.0):
            window.record(s)
        window.reset()
        assert window.count == 0
        assert math.isnan(window.p50)
        window.record(7.0)  # usable after reset
        assert window.p50 == pytest.approx(7.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LatencyWindow(0)


class TestInstruments:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_histogram_buckets_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("bad2", buckets=())

    def test_histogram_observe_and_cumulative(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(555.5)
        cumulative = hist.cumulative_buckets()
        assert cumulative == [(1.0, 1), (10.0, 2), (100.0, 3), (float("inf"), 4)]
        # the exact-window view agrees with the raw samples
        assert hist.percentile(50.0) == pytest.approx(
            np.percentile([0.5, 5.0, 50.0, 500.0], 50)
        )

    def test_histogram_boundary_goes_to_lower_bucket(self):
        hist = MetricsRegistry().histogram("edge", buckets=(1.0, 10.0))
        hist.observe(1.0)  # le="1.0" admits exactly 1.0
        assert hist.cumulative_buckets()[0] == (1.0, 1)

    def test_default_buckets_are_ms_scale(self):
        assert DEFAULT_MS_BUCKETS[0] < 1.0 < DEFAULT_MS_BUCKETS[-1]
        assert list(DEFAULT_MS_BUCKETS) == sorted(DEFAULT_MS_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x", "help")
        b = registry.counter("x")
        assert a is b
        assert len(registry) == 1

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x", labels={"instance": "a"})
        b = registry.counter("x", labels={"instance": "b"})
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert registry.total("x") == 5.0
        assert registry.value("x", {"instance": "a"}) == 2.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x", labels={"a": "1", "b": "2"})
        b = registry.counter("x", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_scope_sequences_per_prefix(self):
        registry = MetricsRegistry()
        assert registry.scope("serving") == {"instance": "serving0"}
        assert registry.scope("serving") == {"instance": "serving1"}
        assert registry.scope("engine") == {"instance": "engine0"}

    def test_value_errors(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.value("missing")
        registry.histogram("h")
        with pytest.raises(TypeError):
            registry.value("h")

    def test_total_of_absent_name_is_zero(self):
        assert MetricsRegistry().total("nope") == 0.0

    def test_default_registry_is_process_global(self):
        assert default_registry() is default_registry()

    def test_collect_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        names = [i.name for i in registry.collect()]
        assert names == ["a", "b"]
        assert isinstance(registry.get("a"), Counter)
        assert isinstance(registry.get("b"), Gauge)
        assert registry.get("zzz") is None


class TestExporters:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_served", "Requests answered").inc(7)
        registry.gauge("queue_depth", "Pending", {"instance": "serving0"}).set(3)
        hist = registry.histogram("latency_ms", "Latency", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(4.2)
        return registry

    def test_prometheus_round_trip(self):
        registry = self._populated()
        text = registry.to_prometheus()
        samples = parse_prometheus(text)
        by_name = {(s.name, tuple(sorted(s.labels.items()))): s.value for s in samples}
        assert by_name[("requests_served", ())] == 7.0
        assert by_name[("queue_depth", (("instance", "serving0"),))] == 3.0
        assert by_name[("latency_ms_count", ())] == 2.0
        assert by_name[("latency_ms_bucket", (("le", "+Inf"),))] == 2.0

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("x", labels={"spec": 'Knn(k=10, c="a\\b\n")'}).inc()
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[0].labels["spec"] == 'Knn(k=10, c="a\\b\n")'

    def test_json_layout(self):
        registry = self._populated()
        payload = registry.to_json()
        assert set(payload) == {"counters", "gauges", "histograms"}
        counter = payload["counters"][0]
        assert counter["name"] == "requests_served"
        assert counter["value"] == 7.0
        hist = payload["histograms"][0]
        assert hist["count"] == 2
        assert hist["buckets"]["+Inf"] == 2
        assert hist["window"]["count"] == 2.0

    def test_json_is_serialisable(self):
        import json

        json.dumps(self._populated().to_json())
