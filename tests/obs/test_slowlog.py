"""Tests for the slow-query log: triggers, arming, the bounded ring, JSON."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import LatencyWindow
from repro.obs.slowlog import _MIN_HISTORY, SlowQueryLog
from repro.obs.tracing import Trace


class TestAbsoluteTrigger:
    def test_threshold_splits_fast_from_slow(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.observe(5.0) is None
        record = log.observe(15.0, spec="Knn(k=10)")
        assert record is not None
        assert record.reason == "absolute"
        assert record.threshold_ms == 10.0
        assert record.latency_ms == 15.0
        assert record.spec == "Knn(k=10)"
        assert len(log) == 1
        assert log.observed == 2

    def test_default_is_absolute_100ms(self):
        log = SlowQueryLog()
        assert log.threshold_ms == 100.0
        assert log.observe(99.0) is None
        assert log.observe(101.0) is not None

    def test_meta_and_trace_are_captured(self):
        log = SlowQueryLog(threshold_ms=1.0)
        trace = Trace(7, "request")
        with trace.span("index_run"):
            pass
        record = log.observe(5.0, trace=trace, batch_size=4)
        assert record.meta == {"batch_size": 4}
        assert record.trace["trace_id"] == 7
        assert record.trace["spans"]["children"][0]["name"] == "index_run"

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(p99_multiple=1.0)


class TestRingCapacity:
    def test_ring_keeps_most_recent(self):
        log = SlowQueryLog(capacity=2, threshold_ms=1.0)
        for latency in (10.0, 20.0, 30.0):
            log.observe(latency)
        latencies = [record.latency_ms for record in log.records()]
        assert latencies == [20.0, 30.0]
        log.clear()
        assert len(log) == 0
        assert log.observed == 3  # lifetime count survives clear()


class TestRelativeTrigger:
    def test_unarmed_before_min_history(self):
        log = SlowQueryLog(p99_multiple=3.0)
        for _ in range(_MIN_HISTORY - 1):
            log.observe(1.0)
        # history too thin: even a 100x outlier is not recorded
        assert log.observe(100.0) is None

    def test_armed_after_min_history(self):
        log = SlowQueryLog(p99_multiple=3.0)
        for _ in range(_MIN_HISTORY + 10):
            log.observe(1.0)
        record = log.observe(100.0)
        assert record is not None
        assert record.reason == "p99_multiple"
        assert record.threshold_ms == pytest.approx(3.0, rel=0.01)

    def test_spike_judged_before_it_enters_history(self):
        """The trigger reads history excluding the request it judges."""
        log = SlowQueryLog(p99_multiple=2.0)
        for _ in range(_MIN_HISTORY * 2):
            log.observe(1.0)
        first_spike = log.observe(50.0)
        assert first_spike is not None

    def test_bound_window_is_read_not_fed(self):
        window = LatencyWindow(256)
        log = SlowQueryLog(p99_multiple=2.0, window=window)
        # The external window is the serving layer's; observe() must not
        # record into it (the server already does).
        for _ in range(_MIN_HISTORY * 2):
            window.record(1.0)
            log.observe(1.0)
        assert window.count == _MIN_HISTORY * 2
        assert log.observe(10.0) is not None

    def test_bind_window_repoints_the_trigger(self):
        log = SlowQueryLog(p99_multiple=2.0)
        window = LatencyWindow(256)
        log.bind_window(window)
        for _ in range(_MIN_HISTORY * 2):
            window.record(2.0)
            log.observe(2.0)
        record = log.observe(100.0)
        assert record is not None
        assert record.threshold_ms == pytest.approx(4.0, rel=0.01)

    def test_combined_absolute_wins_first(self):
        log = SlowQueryLog(threshold_ms=10.0, p99_multiple=2.0)
        for _ in range(_MIN_HISTORY * 2):
            log.observe(1.0)
        record = log.observe(50.0)
        assert record.reason == "absolute"


class TestJsonDump:
    def test_to_json_round_trips(self):
        log = SlowQueryLog(threshold_ms=1.0, capacity=8)
        trace = Trace(0)
        log.observe(0.5)
        log.observe(5.0, spec="Range(r=2.0)", trace=trace, batch_size=2)
        payload = json.loads(log.to_json(indent=2))
        assert payload["observed"] == 2
        assert payload["captured"] == 1
        assert payload["threshold_ms"] == 1.0
        entry = payload["slow_queries"][0]
        assert entry["spec"] == "Range(r=2.0)"
        assert entry["meta"] == {"batch_size": 2}
        assert "trace" in entry
