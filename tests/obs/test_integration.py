"""Acceptance tests for the observability layer wired through the stack.

Pins the PR's acceptance criteria end to end:

* at ``sample_rate=1.0`` a served request's span tree covers queue wait,
  batch assembly, per-shard search, tree traversal, verification, merge
  and scatter;
* ``ServingStats`` / ``EngineStats`` are views over the registry — every
  field compares **exactly** (same floats) against the JSON export;
* the ``metrics()`` endpoint emits grammar-valid Prometheus text with
  the core counters non-zero;
* the slow-query log and cache counters tick through real serving.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro import Knn, create_index
from repro.obs.export import parse_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Tracer
from repro.serving import AsyncSearchServer

#: Span names the acceptance criteria require at sample_rate=1.0.
REQUIRED_SPANS = {
    "queue_wait",
    "batch_assembly",
    "shard_search",
    "tree_traversal",
    "verification",
    "merge",
    "scatter",
}


@pytest.fixture(scope="module")
def sharded_pmlsh(small_clustered):
    index = create_index(
        "sharded", backend="pm-lsh", num_shards=2, num_workers=2, seed=11
    ).fit(small_clustered[:600])
    yield index
    index.close()


def _serve(index, queries, **server_kwargs):
    async def run():
        async with AsyncSearchServer(
            index, max_batch=8, max_delay_ms=2.0, **server_kwargs
        ) as server:
            results = await server.submit_many(queries, Knn(k=5))
            stats = server.stats()
            prom = await server.metrics()
            payload = await server.metrics(format="json")
        return results, stats, prom, payload

    return asyncio.run(run())


class TestSpanCoverage:
    def test_full_sampling_covers_every_layer(self, sharded_pmlsh, small_clustered):
        tracer = Tracer(sample_rate=1.0, seed=0)
        queries = small_clustered[600:624]
        results, stats, _, _ = _serve(sharded_pmlsh, queries, tracer=tracer)
        assert len(results) == 24
        traces = tracer.drain()
        assert len(traces) == 24
        seen = set()
        for trace in traces:
            seen.update(trace.span_names())
        missing = REQUIRED_SPANS - seen
        assert not missing, f"span tree never covered: {sorted(missing)}"
        # at least one request was actually batched with others and the
        # engine subtree is shared by reference across its members
        batched = [t for t in traces if t.find("batch_assembly") is not None]
        assert batched
        for trace in batched:
            assembly = trace.find("batch_assembly")
            if assembly.meta.get("batch_size", 1) > 1:
                break
        else:
            pytest.skip("no multi-request batch formed (timing)")

    def test_sampling_off_zero_spans_same_answers(self, sharded_pmlsh, small_clustered):
        tracer = Tracer(sample_rate=0.0)
        queries = small_clustered[600:612]
        results, _, _, _ = _serve(sharded_pmlsh, queries, tracer=tracer)
        traced, _, _, _ = _serve(
            sharded_pmlsh, queries, tracer=Tracer(sample_rate=1.0, seed=0)
        )
        assert tracer.sampled == 0
        assert tracer.peek() == []
        for a, b in zip(results, traced):
            assert list(a.ids) == list(b.ids)


class TestStatsRegistryIdentity:
    """stats() and the JSON export read the same instruments — exact match."""

    def _entry(self, payload, kind, name, labels):
        for entry in payload[kind]:
            if entry["name"] == name and entry["labels"] == labels:
                return entry
        raise AssertionError(f"no {kind} entry {name!r} with labels {labels!r}")

    def test_serving_stats_match_export(self, sharded_pmlsh, small_clustered):
        registry = MetricsRegistry()
        queries = small_clustered[600:616]
        _, stats, _, payload = _serve(sharded_pmlsh, queries, metrics=registry)
        labels = {"instance": "serving0"}
        for counter_name, stat_value in [
            ("requests_submitted", stats.requests_submitted),
            ("requests_served", stats.requests_served),
            ("batches_served", stats.batches_served),
            ("size_flushes", stats.size_flushes),
            ("deadline_flushes", stats.deadline_flushes),
            ("drain_flushes", stats.drain_flushes),
            ("points_added", stats.points_added),
            ("points_deleted", stats.points_deleted),
            ("compactions", stats.compactions),
            ("index_swaps", stats.index_swaps),
        ]:
            entry = self._entry(payload, "counters", counter_name, labels)
            assert float(stat_value) == entry["value"], counter_name
        for gauge_name, stat_value in [
            ("queue_depth", stats.queue_depth),
            ("inflight_batches", stats.inflight_batches),
            ("serving_epoch", stats.epoch),
            ("mean_occupancy", stats.mean_occupancy),
        ]:
            entry = self._entry(payload, "gauges", gauge_name, labels)
            assert float(stat_value) == entry["value"], gauge_name
        hist = self._entry(payload, "histograms", "request_latency_ms", labels)
        assert hist["count"] == stats.requests_served
        for json_key, stat_value in [
            ("p50", stats.latency_p50_ms),
            ("p99", stats.latency_p99_ms),
            ("mean", stats.latency_mean_ms),
        ]:
            exported = hist["window"][json_key]
            assert exported == float(stat_value) or (
                math.isnan(exported) and math.isnan(stat_value)
            )

    def test_engine_stats_match_export(self, small_clustered):
        registry = MetricsRegistry()
        engine = create_index("sharded", backend="exact", num_shards=2).fit(
            small_clustered[:300]
        )
        try:
            engine.metrics = registry
            engine.run(small_clustered[300:310], Knn(k=3))
            stats = engine.stats()
            payload = registry.to_json()
            labels = {"instance": "engine0"}
            for counter_name, stat_value in [
                ("engine_batches_served", stats.batches_served),
                ("engine_queries_served", stats.queries_served),
                ("engine_points_added", stats.points_added),
                ("engine_search_time_ms", stats.search_time_ms),
            ]:
                entry = self._entry(payload, "counters", counter_name, labels)
                assert float(stat_value) == entry["value"], counter_name
            for gauge_name, stat_value in [
                ("engine_ntotal", stats.ntotal),
                ("engine_nlive", stats.nlive),
                ("engine_num_shards", stats.num_shards),
                ("engine_qps", stats.qps),
                ("engine_last_batch_ms", stats.last_batch_ms),
            ]:
                entry = self._entry(payload, "gauges", gauge_name, labels)
                assert float(stat_value) == entry["value"], gauge_name
            # per-shard series exist for every shard
            shard_labels = [
                entry["labels"]["shard"]
                for entry in payload["gauges"]
                if entry["name"] == "engine_shard_search_ms"
            ]
            assert sorted(shard_labels) == ["0", "1"]
        finally:
            engine.close()

    def test_shard_and_engine_as_dict_satellites(self, small_clustered):
        engine = create_index("sharded", backend="exact", num_shards=2).fit(
            small_clustered[:200]
        )
        try:
            engine.run(small_clustered[200:204], Knn(k=2))
            stats = engine.stats()
            engine_dict = stats.as_dict()
            for key in ("last_batch_ms", "last_batch_queries", "last_batch_qps"):
                assert key in engine_dict
            assert engine_dict["last_batch_qps"] == float(stats.last_batch_qps)
            shard_dict = stats.shards[0].as_dict()
            assert shard_dict["shard"] == 0
            assert set(shard_dict) == {
                "shard", "backend", "ntotal", "nlive",
                "search_ms", "mean_candidates", "mean_tree_nodes", "repr",
            }
        finally:
            engine.close()


class TestMetricsEndpoint:
    def test_prometheus_and_json_formats(self, sharded_pmlsh, small_clustered):
        registry = MetricsRegistry()
        queries = small_clustered[600:616]
        _, stats, prom, payload = _serve(sharded_pmlsh, queries, metrics=registry)
        samples = parse_prometheus(prom)  # grammar-valid
        totals = {}
        for sample in samples:
            totals[sample.name] = totals.get(sample.name, 0.0) + sample.value
        assert totals["requests_served"] > 0
        assert totals["tree_nodes_visited"] > 0
        assert totals["candidates_verified"] > 0
        assert payload["counters"]  # json format returns the snapshot dict

    def test_unknown_format_raises(self, sharded_pmlsh, small_clustered):
        async def run():
            async with AsyncSearchServer(sharded_pmlsh) as server:
                with pytest.raises(ValueError):
                    await server.metrics(format="xml")

        asyncio.run(run())


class TestSlowLogThroughServer:
    def test_every_request_slow_under_tiny_threshold(
        self, sharded_pmlsh, small_clustered
    ):
        slow_log = SlowQueryLog(capacity=64, threshold_ms=1e-6)
        tracer = Tracer(sample_rate=1.0, seed=0)
        queries = small_clustered[600:612]
        _serve(sharded_pmlsh, queries, slow_log=slow_log, tracer=tracer)
        assert len(slow_log) == 12
        record = slow_log.records()[-1]
        assert record.reason == "absolute"
        assert record.trace is not None  # evidence: the span tree rode along
        assert "Knn" in record.spec

    def test_cache_counters_tick(self, small_clustered):
        registry = MetricsRegistry()
        index = create_index("pm-lsh", seed=3).fit(small_clustered[:300])

        async def run():
            async with AsyncSearchServer(
                index, max_batch=4, cache=1024, metrics=registry
            ) as server:
                await server.submit(small_clustered[0], Knn(k=3))
                await server.submit(small_clustered[0], Knn(k=3))  # hit
                await server.add(small_clustered[300:305])  # invalidation
                return server.stats()

        stats = asyncio.run(run())
        assert stats.cache_hits >= 1
        assert registry.total("cache_invalidations") >= 1
