"""Tier-1 documentation checks: fenced examples run, cross-links resolve,
and the generated API reference matches the live docstrings."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    return subprocess.run(
        [sys.executable, str(ROOT / script), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )


@pytest.mark.slow
def test_doc_examples_and_links():
    result = _run("tools/check_docs.py")
    assert result.returncode == 0, result.stderr or result.stdout


def test_api_reference_is_fresh():
    result = _run("docs/generate_api.py", "--check")
    assert result.returncode == 0, result.stderr or result.stdout
