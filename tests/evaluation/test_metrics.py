"""Tests for overall ratio (Eq. 11) and recall (Eq. 12)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import overall_ratio, recall


class TestOverallRatio:
    def test_perfect_result_is_one(self):
        exact = np.array([1.0, 2.0, 3.0])
        assert overall_ratio(exact, exact) == pytest.approx(1.0)

    def test_rankwise_average(self):
        result = np.array([2.0, 2.0])
        exact = np.array([1.0, 2.0])
        assert overall_ratio(result, exact) == pytest.approx((2.0 + 1.0) / 2)

    def test_missing_ranks_penalised(self):
        result = np.array([2.0])
        exact = np.array([1.0, 1.0, 1.0])
        assert overall_ratio(result, exact, k=3) == pytest.approx(2.0)

    def test_zero_exact_distance_matched(self):
        result = np.array([0.0, 2.0])
        exact = np.array([0.0, 1.0])
        assert overall_ratio(result, exact) == pytest.approx(1.5)

    def test_zero_exact_distance_unmatched_is_inf(self):
        result = np.array([0.5])
        exact = np.array([0.0])
        assert overall_ratio(result, exact) == np.inf

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            overall_ratio(np.array([]), np.array([1.0]))

    def test_insufficient_exact_rejected(self):
        with pytest.raises(ValueError):
            overall_ratio(np.array([1.0]), np.array([1.0]), k=2)

    @given(
        st.lists(st.floats(0.1, 100), min_size=1, max_size=20),
    )
    @settings(max_examples=30)
    def test_at_least_one_for_sorted_superset(self, exact_list):
        """An algorithm returning exactly the exact distances scores 1;
        any worse distances push the ratio above 1."""
        exact = np.sort(np.array(exact_list))
        assert overall_ratio(exact, exact) == pytest.approx(1.0)
        worse = exact * 1.7
        assert overall_ratio(worse, exact) >= 1.0


class TestRecall:
    def test_perfect(self):
        ids = np.array([3, 1, 2])
        assert recall(ids, np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert recall(np.array([1, 9]), np.array([1, 2])) == 0.5

    def test_zero(self):
        assert recall(np.array([7, 8]), np.array([1, 2])) == 0.0

    def test_k_truncates_both_sides(self):
        got = np.array([1, 99, 98])
        exact = np.array([1, 2, 3])
        assert recall(got, exact, k=1) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall(np.array([1]), np.array([1]), k=2)

    @given(st.sets(st.integers(0, 1000), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_self_recall_is_one(self, id_set):
        ids = np.array(sorted(id_set))
        assert recall(ids, ids) == 1.0


class TestRangeRecall:
    def test_perfect(self):
        from repro.evaluation.metrics import range_recall

        assert range_recall(np.array([3, 1, 2]), np.array([1, 2, 3])) == 1.0

    def test_partial_and_extras_not_penalised(self):
        from repro.evaluation.metrics import range_recall

        # one of two exact matches found; extra slack points are free
        assert range_recall(np.array([1, 99, 98]), np.array([1, 2])) == 0.5

    def test_empty_exact_ball_scores_one(self):
        from repro.evaluation.metrics import range_recall

        assert range_recall(np.array([5, 6]), np.array([])) == 1.0
        assert range_recall(np.array([]), np.array([])) == 1.0

    def test_empty_result_nonempty_ball(self):
        from repro.evaluation.metrics import range_recall

        assert range_recall(np.array([]), np.array([1])) == 0.0


class TestRangePrecision:
    def test_all_inside(self):
        from repro.evaluation.metrics import range_precision

        assert range_precision(np.array([0.1, 0.5]), r=0.5) == 1.0

    def test_slack_measured(self):
        from repro.evaluation.metrics import range_precision

        assert range_precision(np.array([0.1, 0.9]), r=0.5) == 0.5

    def test_empty_result_is_clean(self):
        from repro.evaluation.metrics import range_precision

        assert range_precision(np.array([]), r=1.0) == 1.0


class TestClosestPairRatio:
    def test_perfect(self):
        from repro.evaluation.metrics import closest_pair_ratio

        exact = np.array([1.0, 2.0, 3.0])
        assert closest_pair_ratio(exact, exact) == pytest.approx(1.0)

    def test_worse_pairs_score_above_one(self):
        from repro.evaluation.metrics import closest_pair_ratio

        exact = np.array([1.0, 2.0])
        assert closest_pair_ratio(exact * 1.2, exact, m=2) == pytest.approx(1.2)

    def test_missing_ranks_take_worst(self):
        from repro.evaluation.metrics import closest_pair_ratio

        exact = np.array([1.0, 1.0, 1.0])
        got = np.array([1.5])
        assert closest_pair_ratio(got, exact, m=3) == pytest.approx(1.5)
