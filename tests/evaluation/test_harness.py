"""Tests for the evaluation harness and ground-truth caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.baselines.lscan import LinearScan
from repro.evaluation.ground_truth import GroundTruth, compute_ground_truth
from repro.evaluation.harness import evaluate_index, run_query_set
from repro.evaluation.tables import format_series, format_table


class TestGroundTruth:
    def test_shapes_and_slicing(self, small_clustered):
        queries = small_clustered[:5] + 0.01
        gt = compute_ground_truth(small_clustered, queries, k_max=20)
        assert gt.num_queries == 5
        assert gt.k_max == 20
        ids, dists = gt.for_query(2, k=7)
        assert ids.shape == (7,)
        assert np.all(np.diff(dists) >= -1e-12)

    def test_k_out_of_range(self, small_clustered):
        gt = compute_ground_truth(small_clustered, small_clustered[:2], k_max=5)
        with pytest.raises(ValueError):
            gt.for_query(0, k=6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GroundTruth(ids=np.zeros((2, 3)), distances=np.zeros((2, 4)))


class TestRunQuerySet:
    def test_exact_scores_perfectly(self, small_clustered):
        queries = small_clustered[:6] + 0.01
        gt = compute_ground_truth(small_clustered, queries, k_max=10)
        index = ExactKNN().fit(small_clustered)
        result = run_query_set(index, queries, k=10, ground_truth=gt)
        assert result.recall == pytest.approx(1.0)
        assert result.overall_ratio == pytest.approx(1.0)
        assert result.query_time_ms > 0.0
        assert result.per_query_time_ms.shape == (6,)

    def test_lscan_scores_below_exact(self, small_clustered):
        queries = small_clustered[:10] + 0.01
        gt = compute_ground_truth(small_clustered, queries, k_max=10)
        index = LinearScan(portion=0.5, seed=0).fit(small_clustered)
        result = run_query_set(index, queries, k=10, ground_truth=gt)
        assert result.recall < 1.0
        assert result.overall_ratio >= 1.0
        assert result.extra["mean_candidates"] > 0

    def test_unbuilt_index_rejected(self, small_clustered):
        queries = small_clustered[:2]
        gt = compute_ground_truth(small_clustered, queries, k_max=5)
        with pytest.raises(RuntimeError):
            run_query_set(LinearScan(), queries, 5, gt)

    def test_query_count_mismatch(self, small_clustered):
        gt = compute_ground_truth(small_clustered, small_clustered[:3], k_max=5)
        with pytest.raises(ValueError):
            run_query_set(
                ExactKNN().fit(small_clustered), small_clustered[:2], 5, gt
            )

    def test_k_exceeds_ground_truth(self, small_clustered):
        queries = small_clustered[:2]
        gt = compute_ground_truth(small_clustered, queries, k_max=5)
        with pytest.raises(ValueError):
            run_query_set(ExactKNN().fit(small_clustered), queries, 6, gt)

    def test_evaluate_index_computes_ground_truth(self, small_clustered):
        queries = small_clustered[:3] + 0.01
        index = ExactKNN().fit(small_clustered)
        result = evaluate_index(index, small_clustered, queries, k=5, dataset_name="X")
        assert result.dataset == "X"
        assert result.recall == pytest.approx(1.0)


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(
            "Demo", ["name", "value"], [["a", 1.5], ["bb", 22222.0]], note="n"
        )
        assert "== Demo ==" in text
        assert "22,222" in text
        assert text.endswith("n\n")

    def test_format_series_validates_lengths(self):
        with pytest.raises(ValueError):
            format_series("S", "x", [1, 2], {"y": [1.0]})

    def test_format_series_layout(self):
        text = format_series("S", "k", [1, 10], {"time": [0.5, 0.7], "recall": [1.0, 0.9]})
        lines = text.strip().splitlines()
        assert lines[1].split()[0] == "k"
        assert len(lines) == 5  # banner, header, rule, 2 rows

    def test_nan_cell(self):
        text = format_table("T", ["v"], [[float("nan")]])
        assert "nan" in text


class TestRangeHarness:
    RADIUS = 5.0

    def test_exact_scores_perfectly(self, small_clustered):
        from repro.evaluation.ground_truth import compute_range_ground_truth
        from repro.evaluation.harness import run_range_query_set

        queries = small_clustered[:6] + 0.01
        truth = compute_range_ground_truth(small_clustered, queries, self.RADIUS)
        index = ExactKNN().fit(small_clustered)
        result = run_range_query_set(index, queries, self.RADIUS, truth)
        assert result.recall == pytest.approx(1.0)
        assert result.precision == pytest.approx(1.0)
        assert result.mean_returned == pytest.approx(float(truth.counts.mean()))
        assert result.query_time_ms > 0.0

    def test_pmlsh_holds_range_contract(self, small_clustered):
        from repro.core.params import PMLSHParams
        from repro.core.pmlsh import PMLSH
        from repro.evaluation.ground_truth import compute_range_ground_truth
        from repro.evaluation.harness import run_range_query_set

        queries = small_clustered[:10] + 0.01
        truth = compute_range_ground_truth(small_clustered, queries, self.RADIUS)
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=1).fit(
            small_clustered
        )
        result = run_range_query_set(index, queries, self.RADIUS, truth)
        assert result.recall >= 0.9
        assert result.extra["mean_candidates"] < small_clustered.shape[0]

    def test_query_count_mismatch(self, small_clustered):
        from repro.evaluation.ground_truth import compute_range_ground_truth
        from repro.evaluation.harness import run_range_query_set

        truth = compute_range_ground_truth(
            small_clustered, small_clustered[:3], self.RADIUS
        )
        with pytest.raises(ValueError):
            run_range_query_set(
                ExactKNN().fit(small_clustered),
                small_clustered[:2],
                self.RADIUS,
                truth,
            )

    def test_unbuilt_index_rejected(self, small_clustered):
        from repro.evaluation.ground_truth import compute_range_ground_truth
        from repro.evaluation.harness import run_range_query_set

        truth = compute_range_ground_truth(
            small_clustered, small_clustered[:2], self.RADIUS
        )
        with pytest.raises(RuntimeError):
            run_range_query_set(LinearScan(), small_clustered[:2], self.RADIUS, truth)


class TestClosestPairHarness:
    def test_exact_scores_perfectly(self, small_clustered):
        from repro.evaluation.ground_truth import compute_closest_pairs_ground_truth
        from repro.evaluation.harness import evaluate_closest_pairs

        truth = compute_closest_pairs_ground_truth(small_clustered, 5)
        index = ExactKNN().fit(small_clustered)
        result = evaluate_closest_pairs(index, 5, truth)
        assert result.ratio == pytest.approx(1.0)
        assert result.overlap == pytest.approx(1.0)
        assert result.time_ms > 0.0

    def test_ground_truth_too_small_rejected(self, small_clustered):
        from repro.evaluation.ground_truth import compute_closest_pairs_ground_truth
        from repro.evaluation.harness import evaluate_closest_pairs

        truth = compute_closest_pairs_ground_truth(small_clustered, 2)
        with pytest.raises(ValueError):
            evaluate_closest_pairs(ExactKNN().fit(small_clustered), 5, truth)
