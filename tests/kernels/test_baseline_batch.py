"""Baseline batch paths equal their per-query loops, byte for byte.

Under ``REPRO_KERNELS=fast`` the QALSH / C2LSH / E2LSH / LSB-Forest kNN
batch entry points leave the per-query Python loop for bucketed /
round-synchronous batch implementations ending in one gathered
``verify_distances`` + ``group_topk``.  The contract is byte-identity
with the numpy backend's loop — ids, distances *and* stats — including
exact-duplicate ties and tombstoned ids.

Every comparison builds a fresh same-seed index per backend: E2LSH and
LSB consume their shared fallback generator during queries, so reusing
one index across two runs would drift the rng state, not test identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import create_index, kernels
from repro.queries import Knn


def _dataset(seed=5, n=900, d=12):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    data[50] = data[10]  # planted duplicates => exact distance ties
    data[51] = data[10]
    data[200] = data[201]
    return data


def _queries(data):
    rng = np.random.default_rng(99)
    queries = rng.normal(size=(7, data.shape[1]))
    queries[3] = data[10]  # lands exactly on the duplicate triple
    return queries


BASELINES = {
    "e2lsh": {"seed": 3},
    "qalsh": {"seed": 3},
    "c2lsh": {"seed": 3},
    "lsb-forest": {"num_trees": 3, "m": 6, "seed": 3},
    "multi-probe": {"seed": 3},
}


def _run(name, kwargs, data, queries, backend, delete=None):
    with kernels.use_backend(backend):
        index = create_index(name, **kwargs).fit(data)
        if delete is not None:
            index.delete(delete)
        return index.run(queries, Knn(k=10))


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_batch_equals_loop_bytes(name):
    data = _dataset()
    queries = _queries(data)
    loop = _run(name, BASELINES[name], data, queries, "numpy")
    batch = _run(name, BASELINES[name], data, queries, "fast")
    assert batch.ids.tobytes() == loop.ids.tobytes()
    assert batch.distances.tobytes() == loop.distances.tobytes()
    assert batch.stats == loop.stats
    assert batch.per_query_stats == loop.per_query_stats


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_batch_equals_loop_under_tombstones(name):
    data = _dataset(seed=8)
    queries = _queries(data)
    dead = list(range(0, 150, 2))
    loop = _run(name, BASELINES[name], data, queries, "numpy", delete=dead)
    batch = _run(name, BASELINES[name], data, queries, "fast", delete=dead)
    assert batch.ids.tobytes() == loop.ids.tobytes()
    assert batch.distances.tobytes() == loop.distances.tobytes()
    returned = set(batch.ids.ravel().tolist()) - {-1}
    assert not returned & set(dead)


def test_qalsh_bptree_backend_stays_on_loop_and_agrees():
    """QALSH's batch path needs the sorted-array backend; the bptree
    backend must fall back to the loop and still answer identically."""
    data = _dataset(seed=2)
    queries = _queries(data)
    results = {}
    for storage in ("array", "bptree"):
        with kernels.use_backend("fast"):
            index = create_index("qalsh", backend=storage, seed=3).fit(data)
            results[storage] = index.run(queries, Knn(k=10))
    assert results["bptree"].ids.tobytes() == results["array"].ids.tobytes()
    assert (
        results["bptree"].distances.tobytes()
        == results["array"].distances.tobytes()
    )


def test_duplicate_ties_cut_in_id_order():
    """The planted duplicate triple has identical distances; both
    backends must order the tie by ascending id (the canonical cut)."""
    data = _dataset()
    queries = data[10][None, :]
    for backend in ("numpy", "fast"):
        result = _run("e2lsh", BASELINES["e2lsh"], data, queries, backend)
        row = result.ids[0]
        tied = [int(i) for i in row if int(i) in {10, 50, 51}]
        assert tied == sorted(tied)
        assert len(tied) == 3


def test_batch_pools_one_verification_kernel_call():
    """The batch path's win: candidates verified in one gathered kernel
    call (plus one group_topk), not one call per query."""
    data = _dataset()
    queries = _queries(data)
    with kernels.use_backend("fast"):
        index = create_index("e2lsh", seed=3).fit(data)
        kernels.reset_kernel_calls()
        index.run(queries, Knn(k=10))
        calls = kernels.kernel_calls()
    assert calls[("fast", "verify_distances")] == 1
    assert calls[("fast", "group_topk")] == 1
