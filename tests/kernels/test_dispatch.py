"""Runtime dispatch: REPRO_KERNELS resolution, scoped switching, counters.

The dispatch layer is what lets one process run reference and fast
kernels side by side (the differential harness depends on it), so its
own contract gets tested: environment resolution, programmatic and
scoped switching, rejection of unknown names, the clean numba fallback,
and the per-``(backend, kernel)`` call counters exported to obs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.kernels import _numba, fast, reference


@pytest.fixture
def fresh_dispatch(monkeypatch):
    """Reset the resolved backend so each test re-resolves from scratch."""
    monkeypatch.setattr(kernels, "_active", None)
    yield
    kernels.set_backend("numpy")


class TestResolution:
    def test_default_is_numpy(self, fresh_dispatch, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.active().name == "numpy"

    def test_env_selects_fast(self, fresh_dispatch, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fast")
        assert kernels.active().name == "fast"

    def test_env_is_case_and_space_insensitive(self, fresh_dispatch, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "  FAST ")
        assert kernels.active().name == "fast"

    def test_empty_env_means_numpy(self, fresh_dispatch, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "")
        assert kernels.active().name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            kernels.set_backend("cuda")

    def test_available_backends(self):
        assert kernels.available_backends() == ("fast", "numpy")


class TestSwitching:
    def test_set_backend_switches_process_wide(self, fresh_dispatch):
        backend = kernels.set_backend("fast")
        assert backend is kernels.active()
        assert kernels.active().name == "fast"

    def test_use_backend_restores_previous(self, fresh_dispatch):
        kernels.set_backend("numpy")
        with kernels.use_backend("fast") as backend:
            assert backend.name == "fast"
            assert kernels.active().name == "fast"
        assert kernels.active().name == "numpy"

    def test_use_backend_restores_after_exception(self, fresh_dispatch):
        kernels.set_backend("numpy")
        with pytest.raises(RuntimeError):
            with kernels.use_backend("fast"):
                raise RuntimeError("boom")
        assert kernels.active().name == "numpy"

    def test_backends_are_cached(self):
        with kernels.use_backend("fast") as first:
            pass
        with kernels.use_backend("fast") as second:
            pass
        assert first is second

    def test_supports_admission_flags(self):
        with kernels.use_backend("numpy") as ref:
            assert ref.supports_admission is False
        with kernels.use_backend("fast") as fst:
            assert fst.supports_admission is True


class TestNumbaFallback:
    def test_numba_absence_is_not_an_error(self):
        # The container has no numba; the fast backend must still work.
        assert kernels.numba_available() in (False, True)

    def test_fast_kernels_work_without_numba(self, monkeypatch):
        monkeypatch.setattr(
            _numba, "_state", {"disabled": True, "verified": False, "jit": None}
        )
        assert _numba.enabled() is False
        kwargs = dict(
            eidx=np.array([0, 1], dtype=np.int64),
            rep_q=np.array([0, 0], dtype=np.int64),
            rep_pd=np.array([0.5, np.nan]),
            entry_pd=np.array([0.4, 0.9]),
            entry_radius=np.array([0.1, 0.1]),
            hr_min=np.array([[0.0], [0.5]]),
            hr_max=np.array([[1.0], [0.9]]),
            query_rings=np.array([[0.4]]),
            radius=0.3,
            use_parent_filter=True,
        )
        got = fast.inner_prune(**kwargs)
        want = reference.inner_prune(**kwargs)
        assert got.tobytes() == want.tobytes()


class TestCallCounters:
    def test_dispatch_increments_kernel_calls(self):
        kernels.reset_kernel_calls()
        with kernels.use_backend("fast") as backend:
            backend.verify_distances(
                np.eye(3),
                np.array([0, 2], dtype=np.int64),
                np.zeros((1, 3)),
                np.array([0, 0], dtype=np.int64),
            )
            backend.verify_distances(
                np.eye(3),
                np.array([1], dtype=np.int64),
                np.zeros((1, 3)),
                np.array([0], dtype=np.int64),
            )
        calls = kernels.kernel_calls()
        assert calls[("fast", "verify_distances")] == 2
        assert ("numpy", "verify_distances") not in calls

    def test_counters_are_per_backend(self):
        kernels.reset_kernel_calls()
        data = np.eye(2)
        ids = np.array([0], dtype=np.int64)
        rep = np.array([0], dtype=np.int64)
        for name in ("numpy", "fast"):
            with kernels.use_backend(name) as backend:
                backend.verify_distances(data, ids, np.zeros((1, 2)), rep)
        calls = kernels.kernel_calls()
        assert calls[("numpy", "verify_distances")] == 1
        assert calls[("fast", "verify_distances")] == 1

    def test_reset_zeroes_counts(self):
        with kernels.use_backend("numpy") as backend:
            backend.pair_distances(np.zeros((1, 2)), np.zeros((1, 2)))
        kernels.reset_kernel_calls()
        assert kernels.kernel_calls() == {}

    def test_obs_counter_exported(self):
        from repro.obs.metrics import default_registry

        with kernels.use_backend("numpy") as backend:
            backend.pair_distances(np.zeros((1, 2)), np.zeros((1, 2)))
        instruments = default_registry().collect()
        assert any(
            instrument.name == "kernel_calls"
            and instrument.label_dict().get("kernel") == "pair_distances"
            for instrument in instruments
        )

    def test_every_kernel_name_is_dispatched(self):
        for name in ("numpy", "fast"):
            with kernels.use_backend(name) as backend:
                for kernel in kernels.KERNEL_NAMES:
                    assert callable(getattr(backend, kernel))
