"""End-to-end byte-identity: whole-index results under numpy vs fast.

The differential harness pins each kernel in isolation; these tests pin
the composition — a full PM-LSH index (flat-tree traversal, Eq. 5
pruning, budget cut, verification) answering kNN / range / closest-pair
queries must return byte-identical ids, distances and result stats under
both kernel backends, including after deletes that fully tombstone
leaves and under the sampled hash family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PMLSH, PMLSHParams, kernels


def _dataset():
    rng = np.random.default_rng(77)
    data = rng.normal(size=(900, 16))
    data[40] = data[10]  # planted duplicates: exact distance ties
    data[41] = data[10]
    return data


def _build(data, hash_family="dense"):
    params = PMLSHParams(node_capacity=32, hash_family=hash_family)
    return PMLSH(params=params, seed=11).fit(data)


def _knn(index, queries):
    result = index.search(queries, k=10)
    return result.ids, result.distances, result.per_query_stats


def _range(index, queries):
    result = index.range_search(queries, r=4.0)
    return result.lims, result.ids, result.distances


def _closest_pairs(index, _queries):
    result = index.closest_pairs(m=6)
    return result.pairs, result.distances


def _deleted_knn(index, queries):
    # Tombstone a contiguous id block: node_capacity=32 guarantees at
    # least one leaf goes fully dead (the all-tombstoned-leaf case).
    index.delete(list(range(0, 64)))
    result = index.search(queries, k=10)
    return result.ids, result.distances, result.per_query_stats


@pytest.mark.parametrize("hash_family", ["dense", "sampled"])
@pytest.mark.parametrize(
    "runner", [_knn, _range, _closest_pairs, _deleted_knn],
    ids=["knn", "range", "closest-pairs", "knn-after-delete"],
)
def test_pmlsh_numpy_vs_fast_byte_identical(runner, hash_family):
    data = _dataset()
    queries = np.vstack([data[:8] + 0.01, data[10][None, :]])  # one exact hit
    outputs = {}
    for backend in ("numpy", "fast"):
        with kernels.use_backend(backend):
            index = _build(data, hash_family)  # fresh same-seed build per mode
            outputs[backend] = runner(index, queries)
    for got, want in zip(outputs["fast"], outputs["numpy"]):
        if isinstance(got, tuple):  # per_query_stats
            assert got == want
        else:
            got, want = np.asarray(got), np.asarray(want)
            assert got.dtype == want.dtype
            assert got.tobytes() == want.tobytes()


def test_fast_admission_reduces_distance_computations(monkeypatch):
    """The fast backend's admission pass is a pure work reduction: same
    bytes out, strictly fewer verified leaf distances.  The chunk size is
    shrunk so the test-sized dataset spans several admission chunks (at
    the default 8192 a 900-point tree fits one chunk and never tightens).
    """
    import repro.pmtree.flat as flat

    monkeypatch.setattr(flat, "_LEAF_ADMIT_CHUNK", 64)
    data = _dataset()
    queries = data[:16] + 0.01
    comps = {}
    results = {}
    for backend in ("numpy", "fast"):
        with kernels.use_backend(backend):
            index = _build(data)
            results[backend] = index.search(queries, k=10)
            comps[backend] = index.flat_tree.distance_computations
    assert results["fast"].ids.tobytes() == results["numpy"].ids.tobytes()
    assert (
        results["fast"].distances.tobytes() == results["numpy"].distances.tobytes()
    )
    assert comps["fast"] < comps["numpy"]


def test_sampled_family_differs_from_dense_but_is_self_consistent():
    """hash_family='sampled' is a different estimator (different hashes),
    not a different answer contract: both families return k results and
    each family is backend-independent."""
    data = _dataset()
    dense = _build(data, "dense").search(data[:4] + 0.01, k=5)
    sampled = _build(data, "sampled").search(data[:4] + 0.01, k=5)
    assert dense.ids.shape == sampled.ids.shape == (4, 5)
    # Different projection family => different probe order => the stats
    # (candidate counts) will generally differ even when answers agree.
    assert dense.stats != sampled.stats or not np.array_equal(
        dense.ids, sampled.ids
    )
