"""The differential harness: fast kernels are byte-identical to reference.

Every kernel in :data:`repro.kernels.KERNEL_NAMES` exists twice — the
NumPy reference (the semantic contract) and the fast reorganization.
These property tests drive both with hypothesis-generated adversarial
inputs (d=1, n<k, empty pools, duplicate distances, float32/float64,
NaN parent distances, tiny chunk sizes) and assert the outputs match to
the byte, not to a tolerance.  Byte-identity is what makes the fast
layer safe: any future "optimisation" that reorders a reduction fails
here before it can ship.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import fast, reference


@contextmanager
def dist_chunk(chunk: int):
    """Shrink the fast backend's distance chunk so hypothesis-sized
    inputs actually exercise multi-chunk evaluation.  Restores on exit
    (a plain save/restore, not a fixture — hypothesis re-runs the test
    body per example and function-scoped fixtures would not reset)."""
    previous = fast._DIST_CHUNK
    fast._DIST_CHUNK = int(chunk)
    try:
        yield
    finally:
        fast._DIST_CHUNK = previous


def assert_bytes_equal(got, want):
    """Byte-identity: same dtype, same shape, same bits (NaNs included)."""
    if want is None:
        assert got is None
        return
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.dtype == want.dtype, (got.dtype, want.dtype)
    assert got.shape == want.shape, (got.shape, want.shape)
    assert got.tobytes() == want.tobytes()


@st.composite
def distance_pairs(draw):
    """(rows, query_rows) for the distance kernels — any n, d >= 1."""
    n = draw(st.integers(min_value=0, max_value=200))
    d = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=(n, d)).astype(dtype)
    query_rows = rng.normal(size=(n, d)).astype(dtype)
    if n >= 2 and draw(st.booleans()):
        rows[1] = rows[0]  # duplicate point => duplicate distance
        query_rows[1] = query_rows[0]
    return rows, query_rows


@given(distance_pairs(), st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_pair_distances(pair, chunk):
    rows, query_rows = pair
    want = reference.pair_distances(rows.copy(), query_rows)
    with dist_chunk(chunk):
        got = fast.pair_distances(rows.copy(), query_rows)
    assert_bytes_equal(got, want)


@st.composite
def verify_inputs(draw):
    """(data, ids, queries, rep_q) for gathered verification."""
    n = draw(st.integers(min_value=1, max_value=150))
    d = draw(st.integers(min_value=1, max_value=16))
    num_queries = draw(st.integers(min_value=1, max_value=6))
    pool = draw(st.integers(min_value=0, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d)).astype(dtype)
    queries = rng.normal(size=(num_queries, d)).astype(dtype)
    ids = rng.integers(0, n, size=pool).astype(np.int64)
    rep_q = np.sort(rng.integers(0, num_queries, size=pool)).astype(np.int64)
    return data, ids, queries, rep_q


@given(verify_inputs(), st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_verify_distances(inputs, chunk):
    data, ids, queries, rep_q = inputs
    want = reference.verify_distances(data, ids, queries, rep_q)
    with dist_chunk(chunk):
        got = fast.verify_distances(data, ids, queries, rep_q)
    assert_bytes_equal(got, want)


@st.composite
def grouped_pool(draw):
    """A query-grouped candidate pool with deliberate distance ties."""
    num_queries = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 40, size=num_queries)  # empty groups included
    total = int(counts.sum())
    q = np.repeat(np.arange(num_queries, dtype=np.int64), counts)
    ids = rng.integers(0, 500, size=total).astype(np.int64)
    # Quantized distances => many exact duplicates; ties resolve by id.
    dists = np.round(rng.uniform(0, 3, size=total), 1).astype(np.float64)
    return num_queries, counts.astype(np.int64), q, ids, dists


@given(grouped_pool(), st.integers(min_value=0, max_value=50))
@settings(max_examples=80, deadline=None)
def test_group_topk(pool, k):
    num_queries, _, q, ids, dists = pool
    want = reference.group_topk(q, ids, dists, num_queries, k)
    got = fast.group_topk(q, ids, dists, num_queries, k)
    for w, g in zip(want, got):
        assert_bytes_equal(g, w)


@given(grouped_pool(), st.integers(min_value=0, max_value=30))
@settings(max_examples=80, deadline=None)
def test_budget_cut(pool, limit):
    num_queries, counts, q, ids, dists = pool
    lims = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    rng = np.random.default_rng(int(counts.sum()) + limit)
    limits = rng.integers(0, max(1, limit + 1), size=num_queries).astype(np.int64)
    want = reference.budget_cut(q, ids, dists, counts, lims, limits)
    got = fast.budget_cut(q, ids, dists, counts, lims, limits)
    assert_bytes_equal(got, want)
    if want is not None:
        # The cut really enforces the per-query limits.
        kept = np.bincount(q[want], minlength=num_queries)
        assert np.all(kept <= np.maximum(limits, np.minimum(counts, limits)))


@given(grouped_pool(), st.integers(min_value=1, max_value=40))
@settings(max_examples=40, deadline=None)
def test_closest_mask_matches_canonical_order(pool, k):
    """closest_mask (the reference's boundary cut) == full (dist, id) sort."""
    _, _, _, ids, dists = pool
    if dists.size == 0:
        return
    mask = reference.closest_mask(dists, ids, k)
    want = np.zeros(dists.size, dtype=bool)
    want[np.lexsort((ids, dists))[:k]] = True
    assert_bytes_equal(mask, want)


@st.composite
def leaf_prune_inputs(draw):
    num_members = draw(st.integers(min_value=0, max_value=120))
    num_leaf_rows = draw(st.integers(min_value=1, max_value=200))
    num_queries = draw(st.integers(min_value=1, max_value=5))
    num_pivots = draw(st.integers(min_value=0, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    member = rng.integers(0, num_leaf_rows, size=num_members).astype(np.int64)
    rep_q = rng.integers(0, num_queries, size=num_members).astype(np.int64)
    rep_pd = rng.uniform(0, 2, size=num_members)
    rep_pd[rng.random(num_members) < 0.2] = np.nan  # root-leaf members
    leaf_pd = rng.uniform(0, 2, size=num_leaf_rows)
    ring_cols = [rng.uniform(0, 2, size=num_leaf_rows) for _ in range(num_pivots)]
    query_rings = (
        rng.uniform(0, 2, size=(num_queries, num_pivots)) if num_pivots else None
    )
    if draw(st.booleans()):
        radius = rng.uniform(0, 1.5, size=num_members)
    else:
        radius = float(rng.uniform(0, 1.5))
    use_parent = draw(st.booleans())
    return dict(
        member=member,
        rep_q=rep_q,
        rep_pd=rep_pd if draw(st.booleans()) else None,
        leaf_pd=leaf_pd,
        ring_cols=ring_cols,
        query_rings=query_rings,
        radius=radius,
        use_parent_filter=use_parent,
    )


@given(leaf_prune_inputs())
@settings(max_examples=80, deadline=None)
def test_leaf_prune(kwargs):
    assert_bytes_equal(fast.leaf_prune(**kwargs), reference.leaf_prune(**kwargs))


@st.composite
def inner_prune_inputs(draw):
    num_pairs = draw(st.integers(min_value=0, max_value=120))
    num_entries = draw(st.integers(min_value=1, max_value=80))
    num_queries = draw(st.integers(min_value=1, max_value=5))
    num_pivots = draw(st.integers(min_value=0, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    eidx = rng.integers(0, num_entries, size=num_pairs).astype(np.int64)
    rep_q = rng.integers(0, num_queries, size=num_pairs).astype(np.int64)
    rep_pd = rng.uniform(0, 2, size=num_pairs)
    rep_pd[rng.random(num_pairs) < 0.2] = np.nan
    hr_min = rng.uniform(0, 1, size=(num_entries, num_pivots))
    hr_max = hr_min + rng.uniform(0, 1, size=(num_entries, num_pivots))
    query_rings = (
        rng.uniform(0, 2, size=(num_queries, num_pivots)) if num_pivots else None
    )
    if draw(st.booleans()):
        radius = rng.uniform(0, 1.5, size=num_pairs)
    else:
        radius = float(rng.uniform(0, 1.5))
    return dict(
        eidx=eidx,
        rep_q=rep_q,
        rep_pd=rep_pd if draw(st.booleans()) else None,
        entry_pd=rng.uniform(0, 2, size=num_entries),
        entry_radius=rng.uniform(0, 1, size=num_entries),
        hr_min=hr_min,
        hr_max=hr_max,
        query_rings=query_rings,
        radius=radius,
        use_parent_filter=draw(st.booleans()),
    )


@given(inner_prune_inputs())
@settings(max_examples=80, deadline=None)
def test_inner_prune(kwargs):
    assert_bytes_equal(fast.inner_prune(**kwargs), reference.inner_prune(**kwargs))


@st.composite
def projection_inputs(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    d = draw(st.integers(min_value=1, max_value=32))
    m = draw(st.integers(min_value=1, max_value=10))
    s = draw(st.integers(min_value=1, max_value=min(8, d)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d))
    if draw(st.booleans()):
        # Non-contiguous view: the gather must pin the layout itself.
        points = rng.normal(size=(n, 2 * d))[:, ::2]
    sample_idx = rng.integers(0, d, size=(m, s)).astype(np.int64)
    weights = rng.normal(size=(m, s))
    single = n >= 1 and draw(st.booleans())
    return (points[0] if single else points), sample_idx, weights


@given(projection_inputs())
@settings(max_examples=80, deadline=None)
def test_sampled_project(inputs):
    points, sample_idx, weights = inputs
    want = reference.sampled_project(points, sample_idx, weights)
    got = fast.sampled_project(points, sample_idx, weights)
    assert_bytes_equal(got, want)


# ----------------------------------------------------------------------
# Pinned adversarial corners (cheap, always run, no generation budget)
# ----------------------------------------------------------------------


class TestPinnedCorners:
    def test_group_topk_k_exceeds_every_count(self):
        q = np.array([0, 0, 2], dtype=np.int64)  # query 1 empty
        ids = np.array([5, 3, 9], dtype=np.int64)
        dists = np.array([1.0, 1.0, 0.5])  # exact tie within query 0
        want = reference.group_topk(q, ids, dists, 3, 10)
        got = fast.group_topk(q, ids, dists, 3, 10)
        for w, g in zip(want, got):
            assert_bytes_equal(g, w)
        np.testing.assert_array_equal(got[1], [3, 5, 9])  # tie -> id order

    def test_group_topk_empty_pool(self):
        e = np.empty(0, dtype=np.int64)
        want = reference.group_topk(e, e, e.astype(np.float64), 4, 3)
        got = fast.group_topk(e, e, e.astype(np.float64), 4, 3)
        for w, g in zip(want, got):
            assert_bytes_equal(g, w)
        assert got[1].size == 0

    def test_budget_cut_no_query_over_limit_returns_none(self):
        q = np.array([0, 1], dtype=np.int64)
        counts = np.array([1, 1], dtype=np.int64)
        lims = np.array([0, 1, 2], dtype=np.int64)
        limits = np.array([5, 5], dtype=np.int64)
        ids = np.array([1, 2], dtype=np.int64)
        dists = np.array([0.1, 0.2])
        assert reference.budget_cut(q, ids, dists, counts, lims, limits) is None
        assert fast.budget_cut(q, ids, dists, counts, lims, limits) is None

    def test_closest_mask_k_zero_and_k_ge_n(self):
        dists = np.array([0.3, 0.1])
        ids = np.array([1, 0], dtype=np.int64)
        assert not reference.closest_mask(dists, ids, 0).any()
        assert reference.closest_mask(dists, ids, 2).all()
        assert reference.closest_mask(dists, ids, 5).all()

    def test_pair_distances_d1_float32(self):
        rows = np.array([[1.0], [2.0]], dtype=np.float32)
        qrows = np.array([[0.5], [2.0]], dtype=np.float32)
        want = reference.pair_distances(rows.copy(), qrows)
        got = fast.pair_distances(rows.copy(), qrows)
        assert_bytes_equal(got, want)
        assert got.dtype == np.float32

    def test_leaf_prune_all_rows_nan_parent(self):
        kwargs = dict(
            member=np.array([0, 1], dtype=np.int64),
            rep_q=np.array([0, 0], dtype=np.int64),
            rep_pd=np.array([np.nan, np.nan]),
            leaf_pd=np.array([0.5, 0.7]),
            ring_cols=[np.array([0.2, 0.9])],
            query_rings=np.array([[0.4]]),
            radius=0.3,
            use_parent_filter=True,
        )
        assert_bytes_equal(
            fast.leaf_prune(**kwargs), reference.leaf_prune(**kwargs)
        )
