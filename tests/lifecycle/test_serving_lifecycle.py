"""Lifecycle operations through the async serving front-end: deletes,
background compaction under live traffic, index hot-swaps, replicas."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro import CompactionPolicy, Knn, Replica
from repro.serving import AsyncSearchServer


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:400]


def run(coro):
    return asyncio.run(coro)


class TestServerDelete:
    def test_delete_filters_and_counts(self, data):
        async def scenario():
            index = repro.create_index("pm-lsh", seed=3).fit(data)
            async with AsyncSearchServer(index, max_batch=8, max_delay_ms=0.5) as server:
                dead = np.arange(0, 120)
                out = await server.delete(dead)
                assert out.size == 120
                results = await server.submit_many(data[:16] + 0.01, Knn(k=5))
                ids = np.concatenate([r.ids for r in results])
                assert not np.isin(ids, dead).any()
                stats = server.stats()
                assert stats.points_deleted == 120
                assert stats.epoch >= 1
            return True

        assert run(scenario())

    def test_delete_invalidates_cache(self, data):
        async def scenario():
            index = repro.create_index("exact").fit(data)
            async with AsyncSearchServer(
                index, max_batch=4, max_delay_ms=0.2, cache=64
            ) as server:
                q = data[50] + 0.01
                first = await server.submit(q, Knn(k=1))
                assert first.ids[0] == 50
                await server.delete([50])
                second = await server.submit(q, Knn(k=1))
                assert second.ids[0] != 50  # no stale cached answer
            return True

        assert run(scenario())


class TestServerCompaction:
    def test_compact_under_live_traffic(self, data):
        """Queries keep flowing during the background rebuild, none ever
        sees a dead id, and the swap lands atomically."""

        async def scenario():
            index = repro.create_index("pm-lsh", seed=3).fit(data)
            async with AsyncSearchServer(index, max_batch=8, max_delay_ms=0.5) as server:
                dead = np.arange(0, 120)
                await server.delete(dead)
                old = server.index

                async def traffic():
                    collected = []
                    for _ in range(8):
                        collected.extend(
                            await server.submit_many(data[200:206] + 0.01, Knn(k=5))
                        )
                        await asyncio.sleep(0)
                    return collected

                task = asyncio.create_task(traffic())
                result = await server.compact(
                    CompactionPolicy(max_tombstone_ratio=0.25)
                )
                answers = await task
                assert result is not None and result.removed == 120
                assert server.index is not old
                assert server.index.ntotal == 280
                assert server.index.num_tombstones == 0
                ids = np.concatenate([r.ids for r in answers])
                assert (ids >= 0).all()
                # pre-swap answers carry old global ids, post-swap dense ids;
                # either way no tombstoned id from the old numbering survives
                # the swap inside the *served index*
                fresh = await server.submit_many(data[200:206] + 0.01, Knn(k=5))
                assert all((r.ids < 280).all() for r in fresh)
                stats = server.stats()
                assert stats.compactions == 1
                assert stats.index_swaps == 1
            return True

        assert run(scenario())

    def test_policy_refusal_is_a_noop(self, data):
        async def scenario():
            index = repro.create_index("exact").fit(data)
            async with AsyncSearchServer(index) as server:
                await server.delete([0])
                verdict = await server.compact(
                    CompactionPolicy(max_tombstone_ratio=0.9, max_growth_ratio=None)
                )
                assert verdict is None
                assert server.index is index
                assert server.stats().compactions == 0
            return True

        assert run(scenario())

    def test_writes_rejected_while_compacting(self, data, monkeypatch):
        """A write arriving mid-rebuild must fail loudly, not corrupt the
        snapshot the rebuild works from."""
        import repro.lifecycle.compaction as compaction_mod

        release = threading.Event()
        real = compaction_mod.compact_index

        def slow_compact(index):
            release.wait(timeout=10.0)
            return real(index)

        monkeypatch.setattr(compaction_mod, "compact_index", slow_compact)

        async def scenario():
            index = repro.create_index("exact").fit(data)
            async with AsyncSearchServer(index) as server:
                await server.delete(np.arange(150))
                compaction = asyncio.create_task(server.compact())
                await asyncio.sleep(0.05)  # let the rebuild start and block
                with pytest.raises(RuntimeError, match="compaction is in"):
                    await server.add(data[:2])
                with pytest.raises(RuntimeError, match="compaction is in"):
                    await server.delete([200])
                # reads stay open the whole time
                answer = await server.submit(data[300] + 0.01, Knn(k=3))
                assert len(answer) == 3
                release.set()
                result = await compaction
                assert result.removed == 150
                # writes work again after the swap
                ids = await server.add(data[:2])
                assert ids.size == 2
            return True

        assert run(scenario())


class TestSwapAndReplica:
    def test_swap_index_counts_and_serves_new_index(self, data):
        async def scenario():
            first = repro.create_index("exact").fit(data[:100])
            second = repro.create_index("exact").fit(data)
            async with AsyncSearchServer(first) as server:
                server.swap_index(second)
                assert server.index is second
                answer = await server.submit(data[350] + 0.001, Knn(k=1))
                assert answer.ids[0] == 350  # only findable in the new index
                assert server.stats().index_swaps == 1
            return True

        assert run(scenario())

    def test_replica_refresh_swaps_server_index(self, data, tmp_path):
        snap = str(tmp_path / "snap.npz")

        async def scenario():
            primary = repro.create_index("pm-lsh", seed=3).fit(data)
            primary.delete(np.arange(100))
            primary.compact()
            primary.save(snap)
            stale = repro.create_index("exact").fit(data[:50])
            async with AsyncSearchServer(stale) as server:
                replica = Replica(server=server)
                assert replica.refresh(snap) is True
                assert server.index.ntotal == 300
                assert server.stats().index_swaps == 1
                # re-reading the same snapshot must not churn the server
                assert replica.refresh(snap) is False
                assert server.stats().index_swaps == 1
            return True

        assert run(scenario())
