"""Replica snapshots: epoch stamping, tombstone round-trips, format
versioning, and the Replica hot-swap loop."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro import ExactKNN, PMLSH, PMLSHParams, Replica, load_index, snapshot_epoch
from repro.persistence import FORMAT_VERSION


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:250]


@pytest.fixture()
def snap(tmp_path):
    return str(tmp_path / "index.npz")


class TestRoundTrip:
    def test_exact_preserves_tombstones_and_epoch(self, data, snap):
        index = ExactKNN().fit(data)
        index.delete([3, 7, 11])
        index.save(snap)
        restored = load_index(snap)
        assert isinstance(restored, ExactKNN)
        assert restored.epoch == index.epoch
        assert restored.ntotal == index.ntotal
        assert restored.num_tombstones == 3
        np.testing.assert_array_equal(
            restored.tombstones.ids(), index.tombstones.ids()
        )
        queries = data[:6] + 0.01
        got = restored.search(queries, k=8)
        want = index.search(queries, k=8)
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_array_equal(got.distances, want.distances)

    def test_pmlsh_preserves_tombstones_and_epoch(self, data, snap):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(data)
        index.delete(np.arange(40))
        index.save(snap)
        restored = load_index(snap)
        assert restored.epoch == index.epoch
        assert restored.num_tombstones == 40
        assert restored.fitted_n == index.fitted_n
        queries = data[:6] + 0.01
        got = restored.search(queries, k=8)
        want = index.search(queries, k=8)
        np.testing.assert_array_equal(got.ids, want.ids)
        assert not (got.ids < 40).any()  # dead ids stay dead after restore

    def test_epoch_stamp_readable_without_loading(self, data, snap):
        index = ExactKNN().fit(data)
        index.delete([0])
        index.add(data[:2])
        index.save(snap)
        assert snapshot_epoch(snap) == index.epoch
        assert index.epoch == 3  # fit + delete + add

    def test_save_after_compact_restores_dense(self, data, snap):
        index = ExactKNN().fit(data)
        index.delete(np.arange(50))
        index.compact()
        index.save(snap)
        restored = load_index(snap)
        assert restored.ntotal == 200
        assert restored.num_tombstones == 0
        assert restored.epoch == index.epoch


class TestFormatVersioning:
    def test_newer_version_rejected_with_clear_error(self, data, snap):
        ExactKNN().fit(data).save(snap)
        with np.load(snap) as archive:
            entries = {key: archive[key] for key in archive.files}
        entries["format_version"] = np.asarray(FORMAT_VERSION + 98, dtype=np.int64)
        np.savez_compressed(snap, **entries)
        with pytest.raises(ValueError, match="newer than this library"):
            load_index(snap)

    def test_legacy_unstamped_archive_loads(self, data, snap):
        # strip every lifecycle key: the shape of a pre-lifecycle archive
        ExactKNN().fit(data).save(snap)
        with np.load(snap) as archive:
            entries = {
                key: archive[key]
                for key in archive.files
                if key
                not in {"format_version", "index_epoch", "tombstone_ids", "fitted_n"}
            }
        np.savez_compressed(snap, **entries)
        restored = load_index(snap)
        assert restored.epoch in (0, 1)  # legacy default epoch, fit bumps once
        assert restored.num_tombstones == 0
        assert snapshot_epoch(snap) == 0
        queries = data[:4] + 0.01
        np.testing.assert_array_equal(
            restored.search(queries, k=5).ids,
            ExactKNN().fit(data).search(queries, k=5).ids,
        )

    def test_current_version_stamped(self, data, snap):
        ExactKNN().fit(data).save(snap)
        with np.load(snap) as archive:
            assert int(archive["format_version"]) == FORMAT_VERSION


class TestReplica:
    def test_refresh_loads_then_noops(self, data, snap):
        index = ExactKNN().fit(data)
        index.save(snap)
        replica = Replica()
        assert replica.refresh(snap) is True
        assert replica.index is not None
        assert replica.epoch == index.epoch
        assert replica.refreshes == 1
        # same snapshot again: monotonic no-op
        assert replica.refresh(snap) is False
        assert replica.refreshes == 1

    def test_refresh_follows_epoch_advances(self, data, snap):
        index = ExactKNN().fit(data)
        index.save(snap)
        replica = Replica()
        replica.refresh(snap)
        first_epoch = replica.epoch
        index.delete([5, 6])
        index.compact()
        index.save(snap)
        assert replica.refresh(snap) is True
        assert replica.epoch > first_epoch
        assert replica.index.ntotal == data.shape[0] - 2
        assert replica.refreshes == 2

    def test_stale_snapshot_ignored(self, data, tmp_path):
        old_path = str(tmp_path / "old.npz")
        new_path = str(tmp_path / "new.npz")
        index = ExactKNN().fit(data)
        index.save(old_path)
        index.delete([0])
        index.save(new_path)
        replica = Replica()
        replica.refresh(new_path)
        assert replica.refresh(old_path) is False  # older epoch: refused
        assert replica.index.num_tombstones == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Replica().refresh(str(tmp_path / "nope.npz"))


class TestRegistrySaveLoadStillUniform:
    def test_every_persistable_backend_round_trips_deletes(self, data, snap):
        # only backends implementing save() participate
        for name in sorted(repro.available_indexes()):
            try:
                index = repro.create_index(name, seed=3)
            except TypeError:
                # parameter-free constructors (the exact oracle, ad-hoc
                # backends registered by other test modules)
                index = repro.create_index(name)
            if not hasattr(type(index), "save") or type(index).save is None:
                continue
            try:
                index.fit(data).delete([1, 2])
                index.save(snap)
            except (NotImplementedError, AttributeError):
                continue
            restored = load_index(snap)
            assert restored.num_tombstones == 2, name
            assert restored.epoch == index.epoch, name
            os.remove(snap)
