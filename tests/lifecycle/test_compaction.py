"""Compaction: policy triggers, in-place re-fit, fresh-object clone,
sharded shard-independent compaction, and id-reuse rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CompactionPolicy,
    ExactKNN,
    PMLSH,
    PMLSHParams,
    ShardedIndex,
    compact_index,
)
from repro.lifecycle.compaction import dense_id_map


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:300]


class TestCompactionPolicy:
    def test_tombstone_ratio_trigger(self, data):
        index = ExactKNN().fit(data)
        policy = CompactionPolicy(max_tombstone_ratio=0.25, max_growth_ratio=None)
        assert not policy.should_compact(index)
        index.delete(np.arange(74))  # 74/300 < 0.25
        assert not policy.should_compact(index)
        index.delete([74])  # 75/300 == 0.25
        assert policy.should_compact(index)
        assert "tombstone ratio" in policy.reason(index)

    def test_growth_ratio_trigger(self, data, rng):
        index = ExactKNN().fit(data[:100])
        policy = CompactionPolicy(max_tombstone_ratio=None, max_growth_ratio=2.0)
        index.add(data[100:199])
        assert not policy.should_compact(index)  # 199/100 < 2
        index.add(data[199:200])
        assert policy.should_compact(index)  # 200/100 == 2
        assert "growth ratio" in policy.reason(index)

    def test_min_tombstones_floor(self, data):
        index = ExactKNN().fit(data[:4])
        policy = CompactionPolicy(
            max_tombstone_ratio=0.25, max_growth_ratio=None, min_tombstones=2
        )
        index.delete([0])  # ratio 0.25 but only one tombstone
        assert not policy.should_compact(index)
        index.delete([1])
        assert policy.should_compact(index)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_tombstone_ratio"):
            CompactionPolicy(max_tombstone_ratio=0.0)
        with pytest.raises(ValueError, match="max_tombstone_ratio"):
            CompactionPolicy(max_tombstone_ratio=1.5)
        with pytest.raises(ValueError, match="max_growth_ratio"):
            CompactionPolicy(max_growth_ratio=1.0)
        with pytest.raises(ValueError, match="min_tombstones"):
            CompactionPolicy(min_tombstones=0)

    def test_both_disabled_never_fires(self, data):
        index = ExactKNN().fit(data)
        index.delete(np.arange(200))
        policy = CompactionPolicy(max_tombstone_ratio=None, max_growth_ratio=None)
        assert policy.reason(index) is None


class TestInPlaceCompact:
    def test_exact_byte_identity_to_rebuild(self, data):
        dead = np.sort(np.random.default_rng(0).choice(300, size=90, replace=False))
        live = np.setdiff1d(np.arange(300), dead)
        index = ExactKNN().fit(data)
        index.delete(dead)
        result = index.compact()
        reference = ExactKNN().fit(data[live])
        queries = data[:10] + 0.01
        got = index.search(queries, k=12)
        want = reference.search(queries, k=12)
        # after compaction ids are dense — directly byte-identical
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_array_equal(got.distances, want.distances)
        assert index.ntotal == live.size
        assert index.num_tombstones == 0
        assert result.removed == dead.size
        assert result.before_ntotal == 300
        assert result.after_ntotal == live.size

    def test_id_map_translates_old_ids(self, data):
        index = ExactKNN().fit(data)
        index.delete([0, 5, 7])
        result = index.compact()
        assert result.id_map.shape == (300,)
        assert (result.id_map[[0, 5, 7]] == -1).all()
        # surviving old id -> new dense id points at the same vector
        old = 10
        new = result.id_map[old]
        np.testing.assert_array_equal(index.data[new], data[old])

    def test_epoch_strictly_increases(self, data):
        index = ExactKNN().fit(data)
        index.delete([1])
        before = index.epoch
        result = index.compact()
        assert index.epoch > before
        assert result.epoch == index.epoch

    def test_zero_live_refuses(self, data):
        index = ExactKNN().fit(data[:5])
        index.delete(np.arange(5))
        with pytest.raises(ValueError, match="zero live"):
            index.compact()

    def test_compact_resets_fitted_n(self, data):
        index = ExactKNN().fit(data[:100])
        index.add(data[100:200])
        index.delete(np.arange(10))
        index.compact()
        assert index.fitted_n == 190

    def test_pmlsh_compact_requeries_cleanly(self, data):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(data)
        index.delete(np.arange(100))
        index.compact()
        assert index.ntotal == 200
        batch = index.search(index.data[:5], k=1)
        np.testing.assert_array_equal(batch.ids[:, 0], np.arange(5))


class TestCompactIndexClone:
    def test_fresh_object_original_untouched(self, data):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(data)
        index.delete(np.arange(60))
        fresh, result = compact_index(index)
        assert fresh is not index
        assert index.ntotal == 300 and index.num_tombstones == 60  # untouched
        assert fresh.ntotal == 240 and fresh.num_tombstones == 0
        assert fresh.epoch > index.epoch
        assert isinstance(fresh, PMLSH)
        # constructor kwargs survived the clone
        assert fresh.params.node_capacity == 32
        assert result.removed == 60

    def test_unfitted_refuses(self):
        with pytest.raises(RuntimeError, match="unfitted"):
            compact_index(ExactKNN())

    def test_dense_id_map(self):
        id_map = dense_id_map(np.array([1, 3, 4]), 6)
        assert id_map.tolist() == [-1, 0, -1, 1, 2, -1]


class TestShardedCompact:
    def test_shards_compact_independently(self, data):
        index = ShardedIndex(backend="exact", num_shards=3, seed=3).fit(data)
        dead = np.arange(0, 90)
        index.delete(dead)
        per_shard_before = [s.ntotal for s in index.shards]
        result = index.compact()
        assert result.removed == 90
        assert index.ntotal == 210
        assert index.nlive == 210
        assert index.num_tombstones == 0
        # every shard shed exactly its own dead rows; no global re-stripe
        for shard, before in zip(index.shards, per_shard_before):
            assert shard.ntotal <= before
            assert shard.num_tombstones == 0
        # results match a fresh exact index over the survivors
        live = np.setdiff1d(np.arange(300), dead)
        reference = ExactKNN().fit(data[live])
        queries = data[95:105] + 0.01
        got = index.search(queries, k=8)
        want = reference.search(queries, k=8)
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_allclose(got.distances, want.distances, rtol=1e-9)

    def test_compact_rebalances_router_loads(self, data):
        index = ShardedIndex(
            backend="exact", num_shards=3, router="least-loaded", seed=3
        ).fit(data)
        # hollow out shard 0 (the striped fit puts global i in shard i%3)
        index.delete(np.arange(0, 240, 3))
        index.compact()
        sizes = index.shard_live_sizes
        assert min(sizes) >= 1
        # subsequent adds go to the now-least-loaded shard
        lightest = int(np.argmin(sizes))
        index.add(data[:5])
        assert index.shard_live_sizes[lightest] == sizes[lightest] + 5

    def test_counters_survive_compaction(self, data):
        index = ShardedIndex(backend="exact", num_shards=3, seed=3).fit(data)
        index.delete(np.arange(30))
        index.compact()
        stats = index.stats()
        assert stats.points_deleted == 30
        assert stats.compactions == 1
        assert stats.nlive == 270

    def test_too_few_live_refuses(self, data):
        index = ShardedIndex(backend="exact", num_shards=3, seed=3).fit(data[:6])
        index.delete(np.arange(2, 6))
        with pytest.raises(ValueError):
            index.compact()


class TestIdReuseForbidden:
    def test_add_after_delete_never_reuses(self, data):
        index = ExactKNN().fit(data[:100])
        index.delete([98, 99])
        new_ids = index.add(data[100:103])
        # dead ids 98/99 are never handed out again
        assert new_ids.tolist() == [100, 101, 102]
        assert index.nlive == 101

    def test_sharded_add_after_delete_never_reuses(self, data):
        index = ShardedIndex(backend="exact", num_shards=3, seed=3).fit(data[:100])
        index.delete([97, 98, 99])
        new_ids = index.add(data[100:104])
        assert new_ids.min() >= 100
        assert np.unique(new_ids).size == 4

    def test_compaction_is_the_only_renumbering(self, data):
        index = ExactKNN().fit(data[:100])
        index.delete([0])
        # before compaction: ids stay sparse, 0 never reappears
        batch = index.search(data[:4] + 0.01, k=5)
        assert 0 not in batch.ids
        result = index.compact()
        # after compaction: dense renumbering, old ids translate via id_map
        assert result.id_map[1] == 0
        assert index.ntotal == 99
