"""Unit tests of the TombstoneSet primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lifecycle import TombstoneSet


class TestTombstoneSet:
    def test_empty_is_falsy(self):
        dead = TombstoneSet()
        assert len(dead) == 0
        assert not dead
        assert dead.ids().size == 0
        assert dead.ids().dtype == np.int64

    def test_mark_sorts_and_dedupes(self):
        dead = TombstoneSet()
        dead.mark([5, 1, 5, 3])
        assert dead.ids().tolist() == [1, 3, 5]
        dead.mark([2, 5])
        assert dead.ids().tolist() == [1, 2, 3, 5]
        assert len(dead) == 4
        assert dead

    def test_construct_from_ids(self):
        dead = TombstoneSet([4, 4, 0])
        assert dead.ids().tolist() == [0, 4]

    def test_membership(self):
        dead = TombstoneSet([1, 3])
        assert 1 in dead and 3 in dead
        assert 0 not in dead and 2 not in dead
        mask = dead.contains(np.array([0, 1, 2, 3]))
        assert mask.tolist() == [False, True, False, True]
        assert dead.as_set() == {1, 3}

    def test_alive_mask_and_live_ids(self):
        dead = TombstoneSet([0, 2])
        assert dead.alive_mask(5).tolist() == [False, True, False, True, True]
        assert dead.live_ids(5).tolist() == [1, 3, 4]
        # empty set: everything alive
        assert TombstoneSet().alive_mask(3).all()
        assert TombstoneSet().live_ids(3).tolist() == [0, 1, 2]

    def test_copy_is_independent(self):
        dead = TombstoneSet([1])
        other = dead.copy()
        other.mark([2])
        assert len(dead) == 1
        assert len(other) == 2


class TestDeleteValidation:
    @pytest.fixture()
    def index(self, tiny_uniform):
        import repro

        return repro.create_index("exact").fit(tiny_uniform)

    def test_delete_requires_built(self):
        import repro

        with pytest.raises(RuntimeError):
            repro.create_index("exact").delete([0])

    def test_out_of_range_rejected(self, index):
        with pytest.raises(ValueError, match="delete ids must be in"):
            index.delete([index.ntotal])
        with pytest.raises(ValueError, match="delete ids must be in"):
            index.delete([-1])

    def test_double_delete_rejected(self, index):
        index.delete([3, 4])
        with pytest.raises(ValueError, match="already deleted"):
            index.delete([4, 5])
        # the failed call must not have partially applied
        assert index.num_tombstones == 2

    def test_counters_and_epoch(self, index):
        before_epoch = index.epoch
        out = index.delete([10, 7, 7])
        assert out.tolist() == [7, 10]
        assert index.ntotal == 200
        assert index.nlive == 198
        assert index.num_tombstones == 2
        assert index.epoch == before_epoch + 1

    def test_k_bounded_by_nlive(self, index):
        index.delete(np.arange(150))
        with pytest.raises(ValueError, match="deleted"):
            index.search(index.data[:2], k=51)
        assert index.search(index.data[:2], k=50).ids.shape == (2, 50)

    def test_refit_clears_tombstones(self, index, tiny_uniform):
        index.delete([0])
        index.fit(tiny_uniform)
        assert index.num_tombstones == 0
        assert index.nlive == index.ntotal
