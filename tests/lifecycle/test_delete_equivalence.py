"""Post-delete result equivalence: a tombstoned index must answer exactly
like an index that never held the dead points.

For the exact scan paths (Exact, full-portion LinearScan, sharded-over-
exact, and the shared range / closest-pair fallbacks) the contract is
byte-identity — distances AND tie order — with the dense reference ids
mapped back through the sorted live-id array.  For PM-LSH's native
approximate paths the contract is: no dead id ever surfaces, and results
stay deterministic across traversals.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ExactKNN, LinearScan, PMLSH, PMLSHParams, Range, ShardedIndex

GENERIC_BACKENDS = sorted(
    set(repro.available_indexes()) - {"sharded", "process-sharded"}
)


def make_backend(name):
    # the exact oracle is parameter-free; everything else takes a seed
    return repro.create_index(name) if name == "exact" else repro.create_index(name, seed=3)


@pytest.fixture(scope="module")
def data(small_clustered):
    return small_clustered[:300]


@pytest.fixture(scope="module")
def dead_ids():
    rng = np.random.default_rng(7)
    return np.sort(rng.choice(300, size=90, replace=False))


@pytest.fixture(scope="module")
def live_ids(dead_ids):
    return np.setdiff1d(np.arange(300), dead_ids)


@pytest.fixture(scope="module")
def queries(data):
    return data[:12] + 0.01


def assert_knn_identical(batch, reference, live_ids):
    """Tombstoned result == reference over live rows, ids mapped back."""
    np.testing.assert_array_equal(batch.distances, reference.distances)
    np.testing.assert_array_equal(batch.ids, live_ids[reference.ids])


class TestExactByteIdentity:
    def test_batch_knn(self, data, dead_ids, live_ids, queries):
        index = ExactKNN().fit(data)
        index.delete(dead_ids)
        reference = ExactKNN().fit(data[live_ids])
        assert_knn_identical(
            index.search(queries, k=10), reference.search(queries, k=10), live_ids
        )

    def test_single_query(self, data, dead_ids, live_ids, queries):
        index = ExactKNN().fit(data)
        index.delete(dead_ids)
        reference = ExactKNN().fit(data[live_ids])
        got = index.query(queries[0], k=10)
        want = reference.query(queries[0], k=10)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.ids, live_ids[want.ids])

    def test_with_duplicate_rows_ties_included(self, data, queries):
        # duplicate rows force exact distance ties; tie order must match too
        doubled = np.vstack([data, data[:50]])
        index = ExactKNN().fit(doubled)
        index.delete(np.arange(25))  # kill half the duplicated prefix
        live = np.arange(25, doubled.shape[0])
        reference = ExactKNN().fit(doubled[live])
        assert_knn_identical(
            index.search(queries, k=20), reference.search(queries, k=20), live
        )

    def test_stats_report_tombstones(self, data, dead_ids, queries):
        index = ExactKNN().fit(data)
        index.delete(dead_ids)
        batch = index.search(queries, k=5)
        assert batch.stats["tombstones"] == float(dead_ids.size)
        assert batch.stats["nlive"] == float(300 - dead_ids.size)


class TestScanBackends:
    def test_lscan_full_portion(self, data, dead_ids, live_ids, queries):
        index = LinearScan(portion=1.0, seed=3).fit(data)
        index.delete(dead_ids)
        reference = LinearScan(portion=1.0, seed=3).fit(data[live_ids])
        assert_knn_identical(
            index.search(queries, k=10), reference.search(queries, k=10), live_ids
        )

    def test_sharded_exact(self, data, dead_ids, live_ids, queries):
        index = ShardedIndex(backend="exact", num_shards=3, seed=3).fit(data)
        index.delete(dead_ids)
        reference = ExactKNN().fit(data[live_ids])
        got = index.search(queries, k=10)
        want = reference.search(queries, k=10)
        # per-shard submatrix shapes change under tombstones, so BLAS block
        # scheduling jitters distances at ~1e-12; ids must still match exactly
        np.testing.assert_array_equal(got.ids, live_ids[want.ids])
        np.testing.assert_allclose(got.distances, want.distances, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("name", GENERIC_BACKENDS)
    def test_generic_backends_never_return_dead_ids(
        self, name, data, dead_ids, queries
    ):
        index = make_backend(name).fit(data)
        index.delete(dead_ids)
        batch = index.search(queries, k=10)
        returned = batch.ids[batch.ids >= 0]
        assert not np.isin(returned, dead_ids).any(), f"{name} leaked dead ids"


class TestFallbackQueryTypes:
    """Range and closest-pair ride the exact base fallbacks on most
    backends — there the equivalence is byte-identity for every backend."""

    @pytest.mark.parametrize("name", sorted(set(GENERIC_BACKENDS) - {"pm-lsh"}))
    def test_range_fallback_identity(self, name, data, dead_ids, live_ids, queries):
        index = make_backend(name).fit(data)
        index.delete(dead_ids)
        reference = ExactKNN().fit(data[live_ids])
        r = 4.0
        got = index.run(queries, Range(r=r))
        want = reference.run(queries, Range(r=r))
        np.testing.assert_array_equal(got.lims, want.lims)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.ids, live_ids[want.ids])

    @pytest.mark.parametrize("name", sorted(set(GENERIC_BACKENDS) - {"pm-lsh"}))
    def test_closest_pairs_fallback_identity(self, name, data, dead_ids, live_ids):
        index = make_backend(name).fit(data)
        index.delete(dead_ids)
        reference = ExactKNN().fit(data[live_ids])
        got = index.closest_pairs(8)
        want = reference.closest_pairs(8)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.pairs, live_ids[want.pairs])

    def test_sharded_range_and_cp(self, data, dead_ids, live_ids, queries):
        index = ShardedIndex(backend="exact", num_shards=3, seed=3).fit(data)
        index.delete(dead_ids)
        reference = ExactKNN().fit(data[live_ids])
        got = index.run(queries, Range(r=4.0))
        want = reference.run(queries, Range(r=4.0))
        np.testing.assert_array_equal(got.lims, want.lims)
        np.testing.assert_array_equal(got.ids, live_ids[want.ids])
        got_cp = index.closest_pairs(8)
        want_cp = reference.closest_pairs(8)
        np.testing.assert_array_equal(got_cp.pairs, live_ids[want_cp.pairs])
        np.testing.assert_allclose(got_cp.distances, want_cp.distances, rtol=1e-9)


class TestPMLSHNative:
    """PM-LSH filters inside its probe: dead ids never enter the
    verification window, in either tree traversal."""

    @pytest.mark.parametrize("traversal", ["flat", "recursive"])
    def test_knn_no_dead_ids_and_deterministic(
        self, traversal, data, dead_ids, queries
    ):
        def build():
            index = PMLSH(
                params=PMLSHParams(node_capacity=32, traversal=traversal), seed=3
            ).fit(data)
            index.delete(dead_ids)
            return index

        first = build().search(queries, k=10)
        second = build().search(queries, k=10)
        assert not np.isin(first.ids, dead_ids).any()
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_array_equal(first.distances, second.distances)

    @pytest.mark.parametrize("traversal", ["flat", "recursive"])
    def test_self_queries_hit_live_selves(self, traversal, data, dead_ids, live_ids):
        index = PMLSH(
            params=PMLSHParams(node_capacity=32, traversal=traversal), seed=3
        ).fit(data)
        index.delete(dead_ids)
        # querying live points exactly: nearest neighbour is the point itself
        probe = live_ids[:10]
        batch = index.search(index.data[probe], k=1)
        np.testing.assert_array_equal(batch.ids[:, 0], probe)
        np.testing.assert_allclose(batch.distances[:, 0], 0.0, atol=1e-9)

    @pytest.mark.parametrize("traversal", ["flat", "recursive"])
    def test_range_no_dead_ids(self, traversal, data, dead_ids, queries):
        index = PMLSH(
            params=PMLSHParams(node_capacity=32, traversal=traversal), seed=3
        ).fit(data)
        index.delete(dead_ids)
        ragged = index.run(queries, Range(r=4.0))
        assert not np.isin(ragged.ids, dead_ids).any()

    def test_closest_pairs_no_dead_ids(self, data, dead_ids):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(data)
        index.delete(dead_ids)
        pairs = index.closest_pairs(8)
        assert not np.isin(pairs.pairs, dead_ids).any()

    def test_budget_scales_with_nlive(self, data, dead_ids):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(data)
        full_budget = index.candidate_budget(10)
        index.delete(dead_ids)
        assert index.candidate_budget(10) < full_budget


class TestKnnOverfetchPath:
    """The generic overfetch path (`_strip_dead`) must re-cut to exactly
    k live rows and preserve padding semantics."""

    def test_strip_dead_recut(self, data, queries):
        # QALSH goes through the generic path (_knn_filters_tombstones is False)
        index = repro.create_index("qalsh", seed=3).fit(data)
        assert not type(index)._knn_filters_tombstones
        index.delete(np.arange(40))
        batch = index.search(queries, k=10)
        assert batch.ids.shape == (len(queries), 10)
        rows_full = (batch.ids >= 0).all(axis=1)
        assert rows_full.any()  # overfetch found at least k live for most rows
        # padding (if any) sits at the row tail with inf distance
        pad = batch.ids < 0
        assert np.isinf(batch.distances[pad]).all()
