"""Unit and property tests for the B+-tree substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bptree.tree import BPlusTree


def build_insert(pairs, order=8):
    tree = BPlusTree(order=order)
    for key, value in pairs:
        tree.insert(key, value)
    return tree


class TestConstruction:
    def test_order_floor(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert tree.search(1.0) == []
        assert tree.range_search(0.0, 10.0) == []

    def test_insert_grows_height(self):
        tree = build_insert([(float(i), i) for i in range(200)], order=4)
        assert tree.height > 1
        tree.check_invariants()

    def test_bulk_matches_insert(self):
        pairs = [(float(i % 37) * 0.5, i) for i in range(300)]
        bulk = BPlusTree.from_items(pairs, order=8)
        inserted = build_insert(pairs, order=8)
        assert sorted(bulk.items()) == sorted(inserted.items())
        bulk.check_invariants()
        inserted.check_invariants()

    def test_bulk_empty(self):
        tree = BPlusTree.from_items([], order=8)
        assert len(tree) == 0
        tree.check_invariants()


class TestSearch:
    def test_exact_search(self):
        tree = build_insert([(1.0, 10), (2.0, 20), (2.0, 21), (3.0, 30)])
        assert tree.search(2.0) == [20, 21] or sorted(tree.search(2.0)) == [20, 21]
        assert tree.search(5.0) == []

    def test_duplicates_across_leaves(self):
        # Many duplicate keys force duplicates to straddle leaf boundaries.
        tree = build_insert([(1.0, i) for i in range(50)], order=4)
        assert sorted(tree.search(1.0)) == list(range(50))

    def test_range_search_inclusive(self):
        tree = build_insert([(float(i), i) for i in range(20)], order=4)
        got = tree.range_search(5.0, 9.0)
        assert [key for key, _ in got] == [5.0, 6.0, 7.0, 8.0, 9.0]

    def test_range_search_empty_interval(self):
        tree = build_insert([(float(i), i) for i in range(10)])
        assert tree.range_search(3.5, 3.4) == []

    def test_range_search_beyond_extremes(self):
        tree = build_insert([(float(i), i) for i in range(10)], order=4)
        assert len(tree.range_search(-100.0, 100.0)) == 10

    def test_min_max(self):
        tree = build_insert([(3.0, 1), (1.0, 2), (2.0, 3)])
        assert tree.min_key() == 1.0
        assert tree.max_key() == 3.0


class TestCursor:
    def test_cursor_walks_both_directions(self):
        tree = build_insert([(float(i), i) for i in range(10)], order=4)
        cursor = tree.cursor(4.5)
        assert cursor.peek_right() == (5.0, 5)
        assert cursor.peek_left() == (4.0, 4)
        assert cursor.move_right() == (5.0, 5)
        assert cursor.move_right() == (6.0, 6)
        assert cursor.move_left() == (4.0, 4)
        assert cursor.move_left() == (3.0, 3)

    def test_cursor_at_extremes(self):
        tree = build_insert([(float(i), i) for i in range(5)], order=4)
        low = tree.cursor(-10.0)
        assert low.peek_left() is None
        assert low.peek_right() == (0.0, 0)
        high = tree.cursor(100.0)
        assert high.peek_right() is None
        assert high.peek_left() == (4.0, 4)

    def test_cursor_drains_everything(self):
        tree = build_insert([(float(i), i) for i in range(30)], order=4)
        cursor = tree.cursor(15.0)
        seen = []
        while True:
            entry = cursor.move_right()
            if entry is None:
                break
            seen.append(entry[1])
        while True:
            entry = cursor.move_left()
            if entry is None:
                break
            seen.append(entry[1])
        assert sorted(seen) == list(range(30))

    def test_cursor_on_empty_tree(self):
        tree = BPlusTree()
        cursor = tree.cursor(0.0)
        assert cursor.peek_left() is None
        assert cursor.peek_right() is None
        assert cursor.move_left() is None
        assert cursor.move_right() is None


class TestProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=300),
        st.integers(min_value=3, max_value=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_sorted_multimap_property(self, keys, order):
        tree = BPlusTree(order=order)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        tree.check_invariants()
        items = list(tree.items())
        assert len(items) == len(keys)
        assert [k for k, _ in items] == sorted(keys)
        assert sorted(v for _, v in items) == list(range(len(keys)))

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=200),
        st.floats(-100, 100),
        st.floats(-100, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_search_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree.from_items([(k, i) for i, k in enumerate(keys)], order=6)
        got = tree.range_search(lo, hi)
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert [k for k, _ in got] == expected

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_bulk_load_invariants(self, keys):
        tree = BPlusTree.from_items([(k, i) for i, k in enumerate(keys)], order=5)
        tree.check_invariants()

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=120),
        st.floats(-100, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_cursor_partition_property(self, keys, pivot):
        """Everything left of a cursor is < pivot; right is >= pivot."""
        tree = BPlusTree.from_items([(k, i) for i, k in enumerate(keys)], order=4)
        cursor = tree.cursor(pivot)
        left = cursor.peek_left()
        right = cursor.peek_right()
        if left is not None:
            assert left[0] < pivot
        if right is not None:
            assert right[0] >= pivot
