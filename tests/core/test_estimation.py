"""Tests for the χ² estimation theory (Lemmas 1–3) and the Eq. 10 solver."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.estimation import (
    DistanceEstimator,
    EstimatorKind,
    chi2_upper_quantile,
    confidence_interval,
    estimate_original_distance,
    solve_parameters,
)
from repro.core.hashing import GaussianProjection


class TestChi2Quantile:
    def test_matches_scipy(self):
        assert chi2_upper_quantile(0.1, 15) == pytest.approx(stats.chi2.isf(0.1, 15))

    def test_monotone_in_alpha(self):
        assert chi2_upper_quantile(0.05, 10) > chi2_upper_quantile(0.5, 10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            chi2_upper_quantile(0.0, 10)
        with pytest.raises(ValueError):
            chi2_upper_quantile(0.5, 0)


class TestLemma1:
    def test_projected_over_original_is_chi2(self):
        """r'²/r² must follow χ²(m): check mean and variance."""
        rng = np.random.default_rng(0)
        m, trials = 15, 3000
        o1, o2 = rng.normal(size=32), rng.normal(size=32)
        r = float(np.linalg.norm(o1 - o2))
        ratios = np.empty(trials)
        for t in range(trials):
            proj = GaussianProjection(32, m, seed=rng)
            r_proj = float(np.linalg.norm(proj.project(o1) - proj.project(o2)))
            ratios[t] = (r_proj / r) ** 2
        # chi2(m) has mean m and variance 2m.
        assert ratios.mean() == pytest.approx(m, rel=0.05)
        assert ratios.var() == pytest.approx(2 * m, rel=0.15)


class TestLemma2:
    def test_estimator_unbiased(self):
        rng = np.random.default_rng(1)
        m, trials = 15, 4000
        o1, o2 = rng.normal(size=24), rng.normal(size=24)
        r = float(np.linalg.norm(o1 - o2))
        estimates = np.empty(trials)
        for t in range(trials):
            proj = GaussianProjection(24, m, seed=rng)
            r_proj = float(np.linalg.norm(proj.project(o1) - proj.project(o2)))
            estimates[t] = estimate_original_distance(r_proj, m)
        # E[r'] = sqrt(m)·r exactly in the squared sense; the sqrt estimator
        # carries a small negative bias of order 1/(4m), so allow 3%.
        assert estimates.mean() == pytest.approx(r, rel=0.03)

    def test_vectorised(self):
        values = estimate_original_distance(np.array([4.0, 8.0]), 16)
        np.testing.assert_allclose(values, [1.0, 2.0])

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            estimate_original_distance(1.0, 0)


class TestLemma3:
    def test_interval_orientation(self):
        interval = confidence_interval(2.0, m=15, alpha=0.1)
        assert interval.lower < 2.0 * np.sqrt(15) < interval.upper

    def test_coverage_matches_alpha(self):
        """Pr[r' < lower] ≈ alpha and Pr[r' > upper] ≈ alpha empirically."""
        rng = np.random.default_rng(2)
        m, alpha, trials = 15, 0.15, 3000
        o1, o2 = rng.normal(size=16), rng.normal(size=16)
        r = float(np.linalg.norm(o1 - o2))
        interval = confidence_interval(r, m=m, alpha=alpha)
        below = above = 0
        for _ in range(trials):
            proj = GaussianProjection(16, m, seed=rng)
            r_proj = float(np.linalg.norm(proj.project(o1) - proj.project(o2)))
            below += r_proj < interval.lower
            above += r_proj > interval.upper
        assert below / trials == pytest.approx(alpha, abs=0.03)
        assert above / trials == pytest.approx(alpha, abs=0.03)

    def test_contains(self):
        interval = confidence_interval(1.0, m=15, alpha=0.1)
        assert interval.contains((interval.lower + interval.upper) / 2)
        assert not interval.contains(interval.upper + 1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval(-1.0, m=15, alpha=0.1)


class TestEq10Solver:
    def test_consistency_with_definition(self):
        solved = solve_parameters(m=15, c=1.5)
        # t² = chi2_alpha1(m)
        assert solved.t**2 == pytest.approx(stats.chi2.isf(solved.alpha1, 15))
        # t² = c²·chi2_{1-alpha2}(m)  =>  alpha2 = CDF(t²/c²)
        assert solved.alpha2 == pytest.approx(
            stats.chi2.cdf(solved.t**2 / 1.5**2, 15)
        )
        assert solved.beta == pytest.approx(2 * solved.alpha2)

    def test_paper_probability_bound(self):
        """With alpha1 = 1/e and beta = 2·alpha2, Pr[E1 ∧ E2] ≥ 1/2 − 1/e
        (Theorem 1)."""
        solved = solve_parameters(m=15, c=1.5)
        assert solved.success_probability == pytest.approx(0.5 - 1 / np.e, abs=1e-9)

    def test_larger_c_means_smaller_alpha2(self):
        loose = solve_parameters(m=15, c=2.0)
        tight = solve_parameters(m=15, c=1.1)
        assert loose.alpha2 < tight.alpha2

    def test_e1_guarantee_empirical(self):
        """A point inside B(q, r) projects within t·r with prob ≥ 1 − α1."""
        rng = np.random.default_rng(3)
        m, trials = 15, 2000
        solved = solve_parameters(m=m, c=1.5)
        q = rng.normal(size=20)
        o = q + rng.normal(size=20) * 0.05
        r = float(np.linalg.norm(q - o))
        hits = 0
        for _ in range(trials):
            proj = GaussianProjection(20, m, seed=rng)
            projected = float(np.linalg.norm(proj.project(q) - proj.project(o)))
            hits += projected <= solved.t * r
        assert hits / trials >= 1 - solved.alpha1 - 0.03

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            solve_parameters(m=15, c=1.0)
        with pytest.raises(ValueError):
            solve_parameters(m=15, c=1.5, alpha1=0.0)
        with pytest.raises(ValueError):
            solve_parameters(m=15, c=1.5, beta_multiplier=1.0)


class TestEstimators:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(400, 32))
        proj = GaussianProjection(32, 15, seed=0)
        return data, proj.project(data), proj

    @pytest.mark.parametrize("kind", list(EstimatorKind))
    def test_scores_shape(self, setup, kind):
        _, projected, proj = setup
        estimator = DistanceEstimator(projected, kind=kind, seed=0)
        scores = estimator.scores(projected[0])
        assert scores.shape == (400,)

    def test_top_is_sorted_by_score(self, setup):
        _, projected, _ = setup
        estimator = DistanceEstimator(projected, kind="L2")
        top = estimator.top(projected[0], 10)
        scores = estimator.scores(projected[0])
        assert list(top) == list(np.argsort(scores, kind="stable")[:10])

    def test_l2_beats_rand_on_recall(self, setup):
        """The Fig. 3 headline: L2 recovers true neighbours, Rand does not."""
        data, projected, proj = setup
        from repro.datasets.distance import chunked_knn

        exact_ids, _ = chunked_knn(data[:5], data, k=10)
        def recall_at_t(kind, t=50):
            estimator = DistanceEstimator(projected, kind=kind, seed=1)
            total = 0
            for i in range(5):
                got = set(estimator.top(projected[i], t).tolist())
                total += len(got & set(exact_ids[i].tolist()))
            return total / (5 * 10)

        assert recall_at_t("L2") > recall_at_t("Rand") + 0.3

    def test_string_kind_coerced(self, setup):
        _, projected, _ = setup
        estimator = DistanceEstimator(projected, kind="QD")
        assert estimator.kind is EstimatorKind.QD

    def test_invalid_inputs(self, setup):
        _, projected, _ = setup
        with pytest.raises(ValueError):
            DistanceEstimator(projected, bucket_width=0.0)
        estimator = DistanceEstimator(projected)
        with pytest.raises(ValueError):
            estimator.scores(np.zeros(3))
        with pytest.raises(ValueError):
            estimator.top(projected[0], 0)
