"""Tests for PM-LSH index persistence (save / load round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import GaussianProjection
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.pmtree.validate import check_invariants


@pytest.fixture(scope="module")
def index(small_clustered):
    return PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(small_clustered[:500])


class TestFromDirections:
    def test_round_trip_projection(self):
        original = GaussianProjection(16, 6, seed=3)
        rebuilt = GaussianProjection.from_directions(original.directions)
        point = np.arange(16, dtype=np.float64)
        np.testing.assert_allclose(rebuilt.project(point), original.project(point))
        assert rebuilt.m == 6 and rebuilt.dim == 16

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GaussianProjection.from_directions(np.zeros(5))
        with pytest.raises(ValueError):
            GaussianProjection.from_directions(np.empty((0, 4)))


class TestSaveLoad:
    def test_round_trip_answers_identically(self, index, small_clustered, tmp_path):
        path = str(tmp_path / "index.npz")
        index.save(path)
        restored = PMLSH.load(path)
        assert restored.is_built
        assert restored.n == index.n
        check_invariants(restored.tree)
        rng = np.random.default_rng(4)
        for _ in range(5):
            q = small_clustered[rng.integers(0, 500)] + 0.01
            a = index.query(q, k=10)
            b = restored.query(q, k=10)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)

    def test_params_survive(self, small_clustered, tmp_path):
        params = PMLSHParams(m=10, num_pivots=3, c=1.8, node_capacity=16,
                             use_rings=False)
        original = PMLSH(params=params, seed=1).fit(small_clustered[:200])
        path = str(tmp_path / "custom.npz")
        original.save(path)
        restored = PMLSH.load(path)
        assert restored.params == params
        assert restored.tree.num_pivots == 3
        assert not restored.tree.use_rings

    def test_pivot_method_survives_load(self, small_clustered, tmp_path):
        """Regression: load() used to rebuild the tree without passing
        pivot_method, silently reverting the rebuilt tree's re-selection
        policy to the default."""
        params = PMLSHParams(pivot_method="variance", node_capacity=32)
        original = PMLSH(params=params, seed=2).fit(small_clustered[:300])
        assert original.tree.pivot_method == "variance"
        path = str(tmp_path / "variance.npz")
        original.save(path)
        restored = PMLSH.load(path)
        assert restored.params.pivot_method == "variance"
        assert restored.tree.pivot_method == "variance"
        np.testing.assert_allclose(restored.tree.pivots, original.tree.pivots)

    def test_loaded_index_supports_add(self, small_clustered, tmp_path):
        """A restored index keeps the full lifecycle: growth after load
        answers like growth before save."""
        base, extra = small_clustered[:300], small_clustered[300:330]
        original = PMLSH(seed=3).fit(base)
        path = str(tmp_path / "grow.npz")
        original.save(path)
        restored = PMLSH.load(path)
        original.add(extra)
        restored.add(extra)
        q = extra[5] + 0.001
        a, b = original.query(q, k=10), restored.query(q, k=10)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)

    def test_ball_cover_after_load(self, index, small_clustered, tmp_path):
        path = str(tmp_path / "bc.npz")
        index.save(path)
        restored = PMLSH.load(path)
        q = small_clustered[7]
        a = index.ball_cover_query(q, r=1.0, exclude={7})
        b = restored.ball_cover_query(q, r=1.0, exclude={7})
        assert (a is None) == (b is None)
        if a is not None:
            assert a[0] == b[0]

    def test_unbuilt_index_cannot_save(self, tmp_path):
        fresh = PMLSH(seed=0)
        with pytest.raises(RuntimeError):
            fresh.save(str(tmp_path / "nope.npz"))

    def test_loaded_index_supports_further_growth(
        self, index, small_clustered, tmp_path
    ):
        path = str(tmp_path / "ext.npz")
        index.save(path)
        restored = PMLSH.load(path)
        new_ids = restored.add(small_clustered[500:520])
        assert restored.n == index.n + 20
        hit = restored.query(small_clustered[505], k=1)
        assert int(hit.ids[0]) == int(new_ids[5])


class TestFlatTreePersistence:
    """The FlatPMTree arrays travel inside the archive: load() restores
    the batched hot path with no pointer-tree rebuild and no re-flatten."""

    def test_archive_contains_flat_arrays(self, index, tmp_path):
        path = str(tmp_path / "flat.npz")
        index.save(path)
        with np.load(path) as archive:
            keys = set(archive.files)
        assert {"flat_is_leaf", "flat_entry_center", "flat_leaf_ids",
                "flat_levels", "flat_pivot_dists"} <= keys

    def test_load_neither_rebuilds_nor_reflattens(
        self, index, small_clustered, tmp_path, monkeypatch
    ):
        from repro.pmtree.tree import PMTree

        path = str(tmp_path / "noflatten.npz")
        index.save(path)
        monkeypatch.setattr(
            PMTree, "flatten",
            lambda self: pytest.fail("load() re-flattened the pointer tree"),
        )
        monkeypatch.setattr(
            PMTree, "build",
            classmethod(lambda cls, *a, **k: pytest.fail("load() rebuilt the tree")),
        )
        restored = PMLSH.load(path)
        assert restored._tree is None  # pointer tree not materialised
        assert restored._flat is not None  # snapshot restored from arrays
        restored.search(small_clustered[:8] + 0.01, k=5)  # flat path serves
        assert restored._tree is None

    def test_round_trip_batch_results_byte_identical(
        self, index, small_clustered, tmp_path
    ):
        path = str(tmp_path / "bytes.npz")
        index.save(path)
        restored = PMLSH.load(path)
        queries = small_clustered[:20] + 0.01
        a, b = index.search(queries, 10), restored.search(queries, 10)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)
        ra, rb = index.range_search(queries, r=4.0), restored.range_search(queries, r=4.0)
        np.testing.assert_array_equal(ra.lims, rb.lims)
        np.testing.assert_array_equal(ra.ids, rb.ids)
        np.testing.assert_array_equal(ra.distances, rb.distances)
        # … including the traversal counters (same nodes pruned/visited).
        assert a.stats["tree_nodes"] == b.stats["tree_nodes"]
        assert ra.stats["tree_dist_comps"] == rb.stats["tree_dist_comps"]

    def test_flat_snapshot_matches_original_arrays(self, index, tmp_path):
        path = str(tmp_path / "arrays.npz")
        index.save(path)
        restored = PMLSH.load(path)
        original, loaded = index.flat_tree, restored.flat_tree
        for key, value in original.to_arrays().items():
            np.testing.assert_array_equal(value, loaded.to_arrays()[key], err_msg=key)
        np.testing.assert_array_equal(original.points, loaded.points)

    def test_legacy_archive_without_flat_arrays_still_loads(
        self, index, small_clustered, tmp_path
    ):
        """Archives from before the flat arrays (no flat_* keys) fall back
        to the eager deterministic rebuild."""
        path = str(tmp_path / "legacy.npz")
        index.save(path)
        with np.load(path) as archive:
            stripped = {
                key: archive[key]
                for key in archive.files
                if not key.startswith("flat_")
            }
        legacy_path = str(tmp_path / "legacy_stripped.npz")
        np.savez_compressed(legacy_path, **stripped)
        restored = PMLSH.load(legacy_path)
        assert restored._tree is not None  # eager rebuild path
        q = small_clustered[3] + 0.01
        np.testing.assert_array_equal(
            restored.query(q, 5).ids, index.query(q, 5).ids
        )

    def test_lazy_pointer_tree_materialises_for_add(
        self, index, small_clustered, tmp_path
    ):
        path = str(tmp_path / "lazygrow.npz")
        index.save(path)
        restored = PMLSH.load(path)
        assert restored._tree is None
        new_ids = restored.add(small_clustered[500:510])
        assert restored._tree is not None
        hit = restored.query(small_clustered[503], k=1)
        assert int(hit.ids[0]) == int(new_ids[3])


class TestLoadIndexDispatch:
    """repro.load_index(path): registry-name dispatch to the right class."""

    def test_dispatches_to_pmlsh(self, index, small_clustered, tmp_path):
        import repro

        path = str(tmp_path / "dispatch.npz")
        index.save(path)
        restored = repro.load_index(path)
        assert isinstance(restored, PMLSH)
        q = small_clustered[3] + 0.01
        np.testing.assert_array_equal(
            restored.query(q, 5).ids, index.query(q, 5).ids
        )

    def test_dispatches_to_exact(self, small_clustered, tmp_path):
        import repro
        from repro.baselines.exact import ExactKNN

        original = ExactKNN().fit(small_clustered[:150])
        path = str(tmp_path / "exact.npz")
        original.save(path)
        restored = repro.load_index(path)
        assert isinstance(restored, ExactKNN)
        assert restored.ntotal == 150
        q = small_clustered[7] + 0.01
        np.testing.assert_array_equal(
            restored.query(q, 4).ids, original.query(q, 4).ids
        )

    def test_archive_without_name_rejected(self, tmp_path):
        import repro

        path = str(tmp_path / "anon.npz")
        np.savez(path, data=np.zeros((3, 2)))
        with pytest.raises(ValueError, match="registry_name"):
            repro.load_index(path)

    def test_saved_registry_name_readable(self, index, tmp_path):
        from repro.persistence import saved_registry_name

        path = str(tmp_path / "named.npz")
        index.save(path)
        assert saved_registry_name(path) == "pm-lsh"
