"""Tests for PM-LSH index persistence (save / load round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import GaussianProjection
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.pmtree.validate import check_invariants


@pytest.fixture(scope="module")
def index(small_clustered):
    return PMLSH(
        small_clustered[:500], params=PMLSHParams(node_capacity=32), seed=0
    ).build()


class TestFromDirections:
    def test_round_trip_projection(self):
        original = GaussianProjection(16, 6, seed=3)
        rebuilt = GaussianProjection.from_directions(original.directions)
        point = np.arange(16, dtype=np.float64)
        np.testing.assert_allclose(rebuilt.project(point), original.project(point))
        assert rebuilt.m == 6 and rebuilt.dim == 16

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GaussianProjection.from_directions(np.zeros(5))
        with pytest.raises(ValueError):
            GaussianProjection.from_directions(np.empty((0, 4)))


class TestSaveLoad:
    def test_round_trip_answers_identically(self, index, small_clustered, tmp_path):
        path = str(tmp_path / "index.npz")
        index.save(path)
        restored = PMLSH.load(path)
        assert restored.is_built
        assert restored.n == index.n
        check_invariants(restored.tree)
        rng = np.random.default_rng(4)
        for _ in range(5):
            q = small_clustered[rng.integers(0, 500)] + 0.01
            a = index.query(q, k=10)
            b = restored.query(q, k=10)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)

    def test_params_survive(self, small_clustered, tmp_path):
        params = PMLSHParams(m=10, num_pivots=3, c=1.8, node_capacity=16,
                             use_rings=False)
        original = PMLSH(small_clustered[:200], params=params, seed=1).build()
        path = str(tmp_path / "custom.npz")
        original.save(path)
        restored = PMLSH.load(path)
        assert restored.params == params
        assert restored.tree.num_pivots == 3
        assert not restored.tree.use_rings

    def test_pivot_method_survives_load(self, small_clustered, tmp_path):
        """Regression: load() used to rebuild the tree without passing
        pivot_method, silently reverting the rebuilt tree's re-selection
        policy to the default."""
        params = PMLSHParams(pivot_method="variance", node_capacity=32)
        original = PMLSH(params=params, seed=2).fit(small_clustered[:300])
        assert original.tree.pivot_method == "variance"
        path = str(tmp_path / "variance.npz")
        original.save(path)
        restored = PMLSH.load(path)
        assert restored.params.pivot_method == "variance"
        assert restored.tree.pivot_method == "variance"
        np.testing.assert_allclose(restored.tree.pivots, original.tree.pivots)

    def test_loaded_index_supports_add(self, small_clustered, tmp_path):
        """A restored index keeps the full lifecycle: growth after load
        answers like growth before save."""
        base, extra = small_clustered[:300], small_clustered[300:330]
        original = PMLSH(seed=3).fit(base)
        path = str(tmp_path / "grow.npz")
        original.save(path)
        restored = PMLSH.load(path)
        original.add(extra)
        restored.add(extra)
        q = extra[5] + 0.001
        a, b = original.query(q, k=10), restored.query(q, k=10)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-12)

    def test_ball_cover_after_load(self, index, small_clustered, tmp_path):
        path = str(tmp_path / "bc.npz")
        index.save(path)
        restored = PMLSH.load(path)
        q = small_clustered[7]
        a = index.ball_cover_query(q, r=1.0, exclude={7})
        b = restored.ball_cover_query(q, r=1.0, exclude={7})
        assert (a is None) == (b is None)
        if a is not None:
            assert a[0] == b[0]

    def test_unbuilt_index_cannot_save(self, small_clustered, tmp_path):
        fresh = PMLSH(small_clustered[:100], seed=0)
        with pytest.raises(RuntimeError):
            fresh.save(str(tmp_path / "nope.npz"))

    def test_loaded_index_supports_extend(self, index, small_clustered, tmp_path):
        path = str(tmp_path / "ext.npz")
        index.save(path)
        restored = PMLSH.load(path)
        new_ids = restored.extend(small_clustered[500:520])
        assert restored.n == index.n + 20
        hit = restored.query(small_clustered[505], k=1)
        assert int(hit.ids[0]) == int(new_ids[5])
