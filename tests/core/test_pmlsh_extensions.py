"""Tests for PM-LSH extensions: batch queries, beta override, BC exclude."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH


@pytest.fixture(scope="module")
def index(small_clustered):
    return PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(small_clustered)


class TestBatchSearch:
    def test_matches_single_queries(self, index, small_clustered):
        queries = small_clustered[:4] + 0.01
        batch = index.search(queries, k=5)
        assert len(batch) == 4
        for row_index, row in enumerate(queries):
            single = index.query(row, k=5)
            np.testing.assert_array_equal(batch[row_index].ids, single.ids)

    def test_single_row_accepted(self, index, small_clustered):
        batch = index.search(small_clustered[0], k=3)
        assert len(batch) == 1
        assert len(batch[0]) == 3

    def test_dimension_mismatch(self, index):
        with pytest.raises(ValueError):
            index.search(np.zeros((2, 3)), k=2)


class TestBetaOverride:
    def test_override_replaces_solved_beta(self):
        params = PMLSHParams(beta_override=0.3)
        index = PMLSH(params=params, seed=1)
        assert index.solved.beta == 0.3

    def test_override_changes_candidate_budget(self, small_clustered):
        data = small_clustered[:500]
        small = PMLSH(params=PMLSHParams(beta_override=0.05), seed=2).fit(data)
        large = PMLSH(params=PMLSHParams(beta_override=0.5), seed=2).fit(data)
        q = data[0] + 0.01
        assert (
            small.query(q, 10).stats["candidates"]
            < large.query(q, 10).stats["candidates"]
        )

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            PMLSHParams(beta_override=0.0)
        with pytest.raises(ValueError):
            PMLSHParams(beta_override=1.0)

    def test_none_keeps_solved(self):
        from repro.core.estimation import solve_parameters

        index = PMLSH(seed=0)
        expected = solve_parameters(m=15, c=1.5).beta
        assert index.solved.beta == pytest.approx(expected)


class TestBallCoverExclude:
    def test_excluding_self_finds_neighbour(self, index, small_clustered):
        # Probe with an indexed point: without exclude, the point itself is
        # the closest in-ball hit; with exclude, its true neighbour is.
        probe_id = 17
        q = small_clustered[probe_id]
        dists = np.linalg.norm(small_clustered - q, axis=1)
        dists[probe_id] = np.inf
        nn_dist = float(dists.min())
        plain = index.ball_cover_query(q, r=max(nn_dist * 1.5, 1e-6))
        assert plain is not None and plain[0] == probe_id
        excluded = index.ball_cover_query(
            q, r=max(nn_dist * 1.5, 1e-6), exclude={probe_id}
        )
        assert excluded is not None
        assert excluded[0] != probe_id
        assert excluded[1] <= index.params.c * nn_dist * 1.5 + 1e-9


class TestClosestPairsTinyFit:
    def test_closest_pairs_on_tiny_dataset(self):
        """Regression: the projected-join neighbour count used to exceed
        n - 1 on tiny fits (max/min clamp inverted), crashing chunked_knn."""
        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 6))
        index = PMLSH(params=PMLSHParams(num_pivots=2), seed=0).fit(data)
        result = index.closest_pairs(1)
        assert len(result) == 1
        i, j, dist = result[0]
        assert dist == pytest.approx(float(np.linalg.norm(data[i] - data[j])))
