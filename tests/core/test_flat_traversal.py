"""Flat vs recursive PM-tree traversal: byte-identical query answers.

``PMLSHParams(traversal=...)`` switches the batched query paths between
the flattened structure-of-arrays traversal (default) and per-query
pointer-tree walks.  Every query type — the kNN adaptive-radius loop,
the (r, c)-ball range probe, the closest-pair self-join — must answer
identically under both, including per-query stats, runtime-knob
overrides, and after dynamic growth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PMLSH, PMLSHParams, ShardedIndex
from repro.datasets.synthetic import gaussian_mixture
from repro.queries import Knn, Range


@pytest.fixture(scope="module")
def dataset():
    return gaussian_mixture(900, 32, num_clusters=12, cluster_std=0.7, seed=2)


@pytest.fixture(scope="module")
def pair(dataset):
    flat = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(dataset)
    recursive = PMLSH(
        params=PMLSHParams(node_capacity=32, traversal="recursive"), seed=3
    ).fit(dataset)
    return flat, recursive


def _assert_batches_identical(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.distances, b.distances)
    assert a.per_query_stats == b.per_query_stats


class TestKnnEquivalence:
    def test_search_identical(self, pair, dataset):
        flat, recursive = pair
        queries = dataset[:40] + 0.01
        _assert_batches_identical(flat.search(queries, 10), recursive.search(queries, 10))

    def test_search_matches_query_loop(self, pair, dataset):
        flat, _ = pair
        queries = dataset[:12] + 0.01
        batch = flat.search(queries, 7)
        for i, q in enumerate(queries):
            single = flat.query(q, 7)
            valid = batch.ids[i] >= 0
            np.testing.assert_array_equal(batch.ids[i][valid], single.ids)
            np.testing.assert_array_equal(batch.distances[i][valid], single.distances)
            assert batch.per_query_stats[i] == single.stats

    def test_knob_overrides_identical(self, pair, dataset):
        flat, recursive = pair
        queries = dataset[:15] + 0.01
        for spec in (Knn(k=5, budget=30), Knn(k=5, c=2.5), Knn(k=8, budget=2000)):
            _assert_batches_identical(
                flat.run(queries, spec), recursive.run(queries, spec)
            )

    def test_capped_fetch_ties_resolve_canonically(self, dataset):
        """Duplicates straddling a budget cut pick the smallest ids under
        BOTH traversals — the canonical (distance, id) boundary rule."""
        data = np.vstack([dataset[:300], np.repeat(dataset[:1], 40, axis=0)])
        spec = Knn(k=5, budget=10)
        results = []
        for traversal in ("flat", "recursive"):
            index = PMLSH(
                params=PMLSHParams(node_capacity=32, traversal=traversal), seed=11
            ).fit(data)
            results.append(index.run(dataset[:1], spec))
        flat_result, recursive_result = results
        np.testing.assert_array_equal(flat_result.ids, recursive_result.ids)
        np.testing.assert_array_equal(
            flat_result.distances, recursive_result.distances
        )
        # 41 tied candidates (id 0 + the 40 copies) at projected distance 0;
        # the budget cut keeps the smallest ids, the answer the 5 smallest.
        np.testing.assert_array_equal(flat_result.ids[0], [0, 300, 301, 302, 303])
        np.testing.assert_array_equal(flat_result.distances[0], np.zeros(5))

    def test_tree_work_reported_in_batch_stats(self, pair, dataset):
        flat, recursive = pair
        batch = flat.search(dataset[:10] + 0.01, 5)
        assert batch.stats["tree_nodes"] > 0
        assert batch.stats["tree_dist_comps"] > 0
        assert batch.stats["tree_levels"] >= 1
        # One per-level counter per tree depth, summing to the node total.
        levels = int(batch.stats["tree_levels"])
        per_level = [batch.stats[f"tree_visits_l{d}"] for d in range(levels)]
        assert sum(per_level) == pytest.approx(batch.stats["tree_nodes"])
        # The recursive path reports no tree keys (no flat traversal ran).
        rec = recursive.search(dataset[:10] + 0.01, 5)
        assert "tree_nodes" not in rec.stats


class TestRangeEquivalence:
    def test_range_identical(self, pair, dataset):
        flat, recursive = pair
        queries = dataset[:25] + 0.01
        radius = float(np.quantile(flat.distance_distribution.samples, 0.03))
        a = flat.range_search(queries, radius)
        b = recursive.range_search(queries, radius)
        np.testing.assert_array_equal(a.lims, b.lims)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.per_query_stats == b.per_query_stats
        assert a.stats["tree_nodes"] > 0

    def test_range_knob_overrides_identical(self, pair, dataset):
        flat, recursive = pair
        queries = dataset[:10] + 0.01
        radius = float(np.quantile(flat.distance_distribution.samples, 0.03))
        for spec in (Range(r=radius, budget=40), Range(r=radius, c=2.0)):
            a = flat.run(queries, spec)
            b = recursive.run(queries, spec)
            np.testing.assert_array_equal(a.lims, b.lims)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)


class TestClosestPairEquivalence:
    def test_closest_pairs_identical(self, pair):
        flat, recursive = pair
        a = flat.closest_pairs(12)
        b = recursive.closest_pairs(12)
        np.testing.assert_array_equal(a.pairs, b.pairs)
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.stats["tree_nodes"] > 0
        assert "tree_nodes" not in b.stats

    def test_planted_duplicates_recovered(self, dataset):
        data = np.vstack([dataset, dataset[:6]])  # six distance-0 pairs
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=5).fit(data)
        result = index.closest_pairs(6)
        np.testing.assert_array_equal(result.distances, np.zeros(6))
        expected = np.column_stack(
            [np.arange(6), dataset.shape[0] + np.arange(6)]
        )
        np.testing.assert_array_equal(result.pairs, expected)


class TestDynamicGrowth:
    def test_add_invalidates_and_stays_identical(self, dataset):
        flat = PMLSH(params=PMLSHParams(node_capacity=32), seed=7).fit(dataset[:700])
        recursive = PMLSH(
            params=PMLSHParams(node_capacity=32, traversal="recursive"), seed=7
        ).fit(dataset[:700])
        queries = dataset[:20] + 0.01
        _assert_batches_identical(flat.search(queries, 6), recursive.search(queries, 6))
        snapshot = flat.flat_tree
        flat.add(dataset[700:])
        recursive.add(dataset[700:])
        assert flat.flat_tree is not snapshot  # stale snapshot replaced
        assert len(flat.flat_tree) == dataset.shape[0]
        _assert_batches_identical(flat.search(queries, 6), recursive.search(queries, 6))


class TestShardedTreeStats:
    def test_engine_surfaces_tree_work_per_shard(self, dataset):
        engine = ShardedIndex(backend="pm-lsh", num_shards=3, num_workers=1, seed=1)
        engine.fit(dataset)
        engine.search(dataset[:8] + 0.01, 5)
        stats = engine.stats()
        assert all(shard.mean_tree_nodes > 0 for shard in stats.shards)
        assert "Tree nodes/query" in stats.as_table()

    def test_exact_backend_reports_nan(self, dataset):
        engine = ShardedIndex(backend="exact", num_shards=2, num_workers=1)
        engine.fit(dataset[:100])
        engine.search(dataset[:4], 3)
        stats = engine.stats()
        assert all(np.isnan(shard.mean_tree_nodes) for shard in stats.shards)
