"""Tests for p-stable hashing (Eqs. 1–3) and collision probability (Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    GaussianProjection,
    LSHFunction,
    collision_probability,
    sensitivity,
)


class TestGaussianProjection:
    def test_shapes(self):
        proj = GaussianProjection(dim=32, m=10, seed=0)
        points = np.random.default_rng(1).normal(size=(50, 32))
        assert proj.project(points).shape == (50, 10)
        assert proj.project(points[0]).shape == (10,)

    def test_linear(self):
        proj = GaussianProjection(dim=8, m=4, seed=0)
        a = np.random.default_rng(2).normal(size=8)
        b = np.random.default_rng(3).normal(size=8)
        np.testing.assert_allclose(
            proj.project(a + b), proj.project(a) + proj.project(b), rtol=1e-10
        )

    def test_deterministic(self):
        a = GaussianProjection(16, 5, seed=9).directions
        b = GaussianProjection(16, 5, seed=9).directions
        np.testing.assert_array_equal(a, b)

    def test_dimension_mismatch(self):
        proj = GaussianProjection(8, 4, seed=0)
        with pytest.raises(ValueError):
            proj.project(np.zeros((3, 9)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianProjection(0, 4)
        with pytest.raises(ValueError):
            GaussianProjection(4, 0)

    def test_two_stability(self):
        """Per Lemma 1's setup: the per-axis hash difference of two points
        at distance r is N(0, r²) — so its empirical std over many hash
        functions should approximate r."""
        rng = np.random.default_rng(0)
        o1, o2 = rng.normal(size=16), rng.normal(size=16)
        r = float(np.linalg.norm(o1 - o2))
        proj = GaussianProjection(16, 4000, seed=1)
        rho = proj.project(o1) - proj.project(o2)
        assert np.std(rho) == pytest.approx(r, rel=0.1)

    def test_callable(self):
        proj = GaussianProjection(4, 2, seed=0)
        point = np.ones(4)
        np.testing.assert_array_equal(proj(point), proj.project(point))


class TestLSHFunction:
    def test_bucketize_shapes(self):
        lsh = LSHFunction(dim=16, m=6, w=4.0, seed=0)
        points = np.random.default_rng(1).normal(size=(20, 16))
        buckets = lsh.bucketize(points)
        assert buckets.shape == (20, 6)
        assert buckets.dtype == np.int64

    def test_residuals_sum_to_width(self):
        lsh = LSHFunction(dim=8, m=5, w=3.0, seed=0)
        point = np.random.default_rng(2).normal(size=8)
        to_lower, to_upper = lsh.residuals(point)
        np.testing.assert_allclose(to_lower + to_upper, 3.0, rtol=1e-10)
        assert np.all(to_lower >= 0)
        assert np.all(to_upper >= 0)

    def test_compound_key_is_hashable(self):
        lsh = LSHFunction(dim=8, m=3, seed=0)
        key = lsh.compound_key(np.zeros(8))
        assert isinstance(key, tuple)
        assert len(key) == 3
        hash(key)

    def test_nearby_points_often_collide(self):
        lsh = LSHFunction(dim=16, m=2, w=8.0, seed=0)
        rng = np.random.default_rng(3)
        base = rng.normal(size=16)
        collisions = sum(
            lsh.compound_key(base) == lsh.compound_key(base + rng.normal(size=16) * 0.01)
            for _ in range(50)
        )
        assert collisions > 40

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            LSHFunction(4, 2, w=0.0)


class TestCollisionProbability:
    def test_extremes(self):
        assert collision_probability(0.0, 4.0) == 1.0
        assert collision_probability(1e9, 4.0) == pytest.approx(0.0, abs=1e-6)

    def test_monotone_in_distance(self):
        values = [collision_probability(tau, 4.0) for tau in [0.5, 1, 2, 4, 8, 16]]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_monotone_in_width(self):
        values = [collision_probability(2.0, w) for w in [1.0, 2.0, 4.0, 8.0]]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_matches_monte_carlo(self):
        """Closed form vs simulation of Eq. 1 at a few (tau, w) points."""
        rng = np.random.default_rng(0)
        trials = 40_000
        for tau, w in [(1.0, 4.0), (2.0, 4.0), (4.0, 4.0)]:
            a = rng.normal(size=trials)  # projection of the difference vector
            b = rng.uniform(0, w, size=trials)
            same_bucket = np.floor(b / w) == np.floor((a * tau + b) / w)
            assert collision_probability(tau, w) == pytest.approx(
                same_bucket.mean(), abs=0.02
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            collision_probability(1.0, 0.0)
        with pytest.raises(ValueError):
            collision_probability(-1.0, 1.0)

    def test_sensitivity_pair_ordered(self):
        p1, p2 = sensitivity(1.0, 2.0, 4.0)
        assert p1 > p2  # the defining property of an LSH family

    def test_sensitivity_rejects_c(self):
        with pytest.raises(ValueError):
            sensitivity(1.0, 1.0, 4.0)

    @given(st.floats(0.01, 100.0), st.floats(0.01, 100.0))
    @settings(max_examples=50)
    def test_is_probability(self, tau, w):
        p = collision_probability(tau, w)
        assert 0.0 <= p <= 1.0
