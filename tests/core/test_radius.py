"""Tests for initial-radius selection (§4.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.radius import radius_from_points, select_initial_radius
from repro.datasets.distance import DistanceDistribution


class TestSelectInitialRadius:
    def test_targets_beta_n_plus_k_mass(self):
        samples = np.linspace(1.0, 100.0, 1000)
        dist = DistanceDistribution(samples)
        n, beta, k = 1000, 0.1, 10
        radius = select_initial_radius(dist, n=n, beta=beta, k=k, shrink=1.0)
        # F(radius) should be about (beta*n + k)/n = 0.11.
        assert dist.cdf(radius) == pytest.approx(0.11, abs=0.01)

    def test_shrink_reduces_radius(self):
        dist = DistanceDistribution(np.linspace(1.0, 10.0, 100))
        full = select_initial_radius(dist, n=100, beta=0.2, k=5, shrink=1.0)
        shrunk = select_initial_radius(dist, n=100, beta=0.2, k=5, shrink=0.9)
        assert shrunk == pytest.approx(0.9 * full)

    def test_positive_even_with_duplicate_head(self):
        samples = np.concatenate([np.zeros(90), np.linspace(1, 2, 10)])
        dist = DistanceDistribution(samples)
        radius = select_initial_radius(dist, n=100, beta=0.05, k=1)
        assert radius > 0.0

    def test_mass_capped_at_one(self):
        dist = DistanceDistribution(np.linspace(1.0, 5.0, 50))
        radius = select_initial_radius(dist, n=10, beta=0.9, k=10, shrink=1.0)
        assert radius == pytest.approx(5.0)

    def test_invalid_params(self):
        dist = DistanceDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            select_initial_radius(dist, n=0, beta=0.1, k=1)
        with pytest.raises(ValueError):
            select_initial_radius(dist, n=10, beta=0.0, k=1)
        with pytest.raises(ValueError):
            select_initial_radius(dist, n=10, beta=0.1, k=0)
        with pytest.raises(ValueError):
            select_initial_radius(dist, n=10, beta=0.1, k=1, shrink=0.0)


class TestRadiusFromPoints:
    def test_yields_working_radius(self, small_clustered):
        """The ball B(q, r_min) should hold roughly βn + k points for an
        average query, by construction."""
        beta, k = 0.1, 10
        radius = radius_from_points(small_clustered, beta=beta, k=k, shrink=1.0, seed=0)
        n = small_clustered.shape[0]
        counts = []
        for i in range(0, 50):
            dists = np.linalg.norm(small_clustered - small_clustered[i], axis=1)
            counts.append(int((dists <= radius).sum()))
        target = beta * n + k
        assert np.median(counts) == pytest.approx(target, rel=0.5)

    def test_deterministic(self, small_clustered):
        a = radius_from_points(small_clustered, beta=0.1, k=5, seed=3)
        b = radius_from_points(small_clustered, beta=0.1, k=5, seed=3)
        assert a == b


class TestRangeCandidateBudget:
    def test_tracks_ball_mass(self):
        from repro.core.radius import range_candidate_budget

        distribution = DistanceDistribution(np.linspace(1.0, 100.0, 1000))
        n, beta = 1000, 0.05
        small = range_candidate_budget(distribution, n, beta, radius=2.0)
        large = range_candidate_budget(distribution, n, beta, radius=50.0)
        assert small < large
        # floor: beta*n collisions plus at least one expected point
        assert small >= int(np.ceil(beta * n)) + 1

    def test_sublinear_on_selective_balls(self):
        from repro.core.radius import range_candidate_budget

        distribution = DistanceDistribution(np.linspace(1.0, 100.0, 1000))
        budget = range_candidate_budget(distribution, 10_000, 0.01, radius=2.0)
        assert budget < 10_000

    def test_validation(self):
        from repro.core.radius import range_candidate_budget

        distribution = DistanceDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            range_candidate_budget(distribution, 0, 0.1, 1.0)
        with pytest.raises(ValueError):
            range_candidate_budget(distribution, 10, 1.5, 1.0)
        with pytest.raises(ValueError):
            range_candidate_budget(distribution, 10, 0.1, 0.0)
