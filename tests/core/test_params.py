"""Validation tests for PMLSHParams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import PMLSHParams


def test_defaults_match_paper():
    params = PMLSHParams()
    assert params.m == 15
    assert params.num_pivots == 5
    assert params.c == 1.5
    assert params.alpha1 == pytest.approx(1 / np.e)
    assert params.beta_multiplier == 2.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"m": 0},
        {"num_pivots": -1},
        {"c": 1.0},
        {"c": 0.5},
        {"alpha1": 0.0},
        {"alpha1": 1.0},
        {"beta_multiplier": 1.0},
        {"node_capacity": 2},
        {"radius_shrink": 0.0},
        {"radius_shrink": 1.5},
        {"build_method": "magic"},
        {"max_iterations": 0},
    ],
)
def test_invalid_rejected(kwargs):
    with pytest.raises(ValueError):
        PMLSHParams(**kwargs)


def test_frozen():
    params = PMLSHParams()
    with pytest.raises(AttributeError):
        params.m = 20


def test_custom_values_accepted():
    params = PMLSHParams(m=10, num_pivots=0, c=2.0, node_capacity=16,
                         build_method="insert", use_rings=False)
    assert params.m == 10
    assert params.num_pivots == 0
    assert not params.use_rings
