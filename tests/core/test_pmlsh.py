"""Tests for the PM-LSH index: Algorithm 1, Algorithm 2, and the public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactKNN
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.evaluation.metrics import overall_ratio, recall


@pytest.fixture(scope="module")
def index(small_clustered):
    return PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(small_clustered)


@pytest.fixture(scope="module")
def exact(small_clustered):
    return ExactKNN().fit(small_clustered)


class TestLifecycle:
    def test_query_before_fit_raises(self, small_clustered):
        fresh = PMLSH(seed=0)
        with pytest.raises(RuntimeError):
            fresh.query(small_clustered[0], 5)

    def test_fit_returns_self(self, small_clustered):
        built = PMLSH(seed=0)
        assert built.fit(small_clustered[:100]) is built
        assert built.is_built

    def test_invalid_query_shape(self, index):
        with pytest.raises(ValueError):
            index.query(np.zeros(3), 5)

    def test_invalid_k(self, index, small_clustered):
        with pytest.raises(ValueError):
            index.query(small_clustered[0], 0)
        with pytest.raises(ValueError):
            index.query(small_clustered[0], small_clustered.shape[0] + 1)

    def test_solved_parameters_exposed(self, index):
        assert index.solved.t > 0
        assert 0 < index.solved.beta < 1


class TestCkAnnQuery:
    def test_returns_k_sorted_results(self, index, small_clustered):
        result = index.query(small_clustered[5] + 0.01, k=10)
        assert len(result) == 10
        assert np.all(np.diff(result.distances) >= -1e-12)
        assert len(set(result.ids.tolist())) == 10

    def test_high_recall_on_clustered_data(self, index, exact, small_clustered):
        rng = np.random.default_rng(7)
        recalls, ratios = [], []
        for _ in range(20):
            q = small_clustered[rng.integers(0, small_clustered.shape[0])] + rng.normal(
                size=small_clustered.shape[1]
            ) * 0.01
            got = index.query(q, k=10)
            truth = exact.query(q, k=10)
            recalls.append(recall(got.ids, truth.ids))
            ratios.append(overall_ratio(got.distances, truth.distances))
        assert np.mean(recalls) > 0.9
        assert np.mean(ratios) < 1.05

    def test_stats_populated(self, index, small_clustered):
        result = index.query(small_clustered[0], k=5)
        assert result.stats["candidates"] > 0
        assert result.stats["rounds"] >= 1

    def test_k_equals_one(self, index, exact, small_clustered):
        q = small_clustered[3] + 0.005
        got = index.query(q, k=1)
        truth = exact.query(q, k=1)
        # c-ANN guarantee: distance within c² of exact (holds with constant
        # probability; on easy clustered data it should essentially always).
        assert got.distances[0] <= index.params.c**2 * max(truth.distances[0], 1e-12) + 1e-9

    def test_candidates_bounded_by_budget(self, index, small_clustered):
        result = index.query(small_clustered[0], k=5)
        budget = int(np.ceil(index.solved.beta * index.n)) + 5
        assert result.stats["candidates"] <= budget + 1


class TestBallCoverQuery:
    def test_returns_point_within_cr_or_none(self, index, small_clustered):
        q = small_clustered[10] + 0.01
        nn_dist = float(
            np.sort(np.linalg.norm(small_clustered - q, axis=1))[0]
        )
        hit = index.ball_cover_query(q, r=nn_dist * 1.5)
        assert hit is not None
        pid, dist = hit
        assert dist <= index.params.c * nn_dist * 1.5 + 1e-9

    def test_empty_ball_returns_none_or_far_point(self, index, small_clustered):
        q = small_clustered.max(axis=0) + 100.0
        result = index.ball_cover_query(q, r=0.001)
        # B(q, c·r) holds nothing, so per Definition 3 nothing is returned.
        assert result is None

    def test_invalid_radius(self, index, small_clustered):
        with pytest.raises(ValueError):
            index.ball_cover_query(small_clustered[0], r=0.0)


class TestEstimatedDistance:
    def test_close_to_true_distance(self, index, small_clustered):
        o1, o2 = small_clustered[0], small_clustered[1]
        true = float(np.linalg.norm(o1 - o2))
        est = index.estimated_distance(o1, o2)
        # m = 15 projections: the estimate is within ~2.5 std (~65%) of r.
        assert est == pytest.approx(true, rel=0.8)

    def test_zero_for_identical(self, index, small_clustered):
        assert index.estimated_distance(small_clustered[0], small_clustered[0]) == 0.0


class TestConfigurations:
    @pytest.mark.parametrize("build_method", ["bulk", "insert"])
    def test_build_methods_work(self, small_clustered, build_method):
        params = PMLSHParams(node_capacity=16, build_method=build_method)
        index = PMLSH(params=params, seed=1).fit(small_clustered[:300])
        result = index.query(small_clustered[0], k=5)
        assert len(result) == 5

    def test_zero_pivots(self, small_clustered):
        params = PMLSHParams(num_pivots=0, node_capacity=32)
        index = PMLSH(params=params, seed=1).fit(small_clustered[:300])
        assert len(index.query(small_clustered[0], k=5)) == 5

    def test_seed_reproducibility(self, small_clustered):
        a = PMLSH(seed=5).fit(small_clustered[:200]).query(small_clustered[0], 5)
        b = PMLSH(seed=5).fit(small_clustered[:200]).query(small_clustered[0], 5)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_different_c_changes_budget(self):
        tight = PMLSH(params=PMLSHParams(c=1.2), seed=0)
        loose = PMLSH(params=PMLSHParams(c=2.0), seed=0)
        assert tight.solved.beta > loose.solved.beta
