"""Tests for dynamic updates: PMTree.append_points and PMLSH.add."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.pmtree.tree import PMTree
from repro.pmtree.validate import check_invariants


class TestPMTreeAppend:
    def test_appended_points_are_findable(self, projected_points):
        base, extra = projected_points[:800], projected_points[800:]
        tree = PMTree.build(base, num_pivots=4, capacity=16, seed=0)
        new_ids = tree.append_points(extra)
        assert list(new_ids) == list(range(800, 1000))
        assert len(tree) == 1000
        check_invariants(tree)
        # Range queries now see the appended rows.
        query = extra[0]
        got = {pid for pid, _ in tree.range_query(query, 1e-9)}
        assert 800 in got

    def test_append_preserves_exactness(self, projected_points):
        base, extra = projected_points[:700], projected_points[700:900]
        tree = PMTree.build(base, num_pivots=3, capacity=16, seed=1)
        tree.append_points(extra)
        all_points = projected_points[:900]
        query = all_points[123] + 0.1
        got = {pid for pid, _ in tree.range_query(query, 3.0)}
        dists = np.linalg.norm(all_points - query, axis=1)
        expected = {int(i) for i in np.flatnonzero(dists <= 3.0)}
        assert got == expected

    def test_dimension_mismatch(self, projected_points):
        tree = PMTree.build(projected_points[:100], capacity=16, seed=0)
        with pytest.raises(ValueError):
            tree.append_points(np.zeros((2, 3)))

    def test_single_row_append(self, projected_points):
        tree = PMTree.build(projected_points[:50], capacity=8, seed=0)
        new_ids = tree.append_points(projected_points[50])
        assert list(new_ids) == [50]
        check_invariants(tree)


class TestPMLSHAdd:
    def test_add_finds_new_points(self, small_clustered):
        base, extra = small_clustered[:600], small_clustered[600:650]
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(base)
        new_ids = index.add(extra)
        assert index.n == 650
        # A query at a new point returns it first.
        result = index.query(extra[10], k=1)
        assert int(result.ids[0]) == int(new_ids[10])
        assert result.distances[0] == pytest.approx(0.0, abs=1e-9)

    def test_add_preserves_quality(self, small_clustered):
        from repro.baselines.exact import ExactKNN
        from repro.evaluation.metrics import recall

        base, extra = small_clustered[:600], small_clustered[600:]
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(base)
        index.add(extra)
        exact = ExactKNN().fit(small_clustered[:800])
        rng = np.random.default_rng(1)
        recalls = []
        for _ in range(10):
            q = small_clustered[rng.integers(0, 800)] + 0.01
            got = index.query(q, k=10)
            truth = exact.query(q, k=10)
            recalls.append(recall(got.ids, truth.ids))
        assert np.mean(recalls) > 0.85

    def test_add_before_build_rejected(self, small_clustered):
        index = PMLSH(seed=0)
        with pytest.raises(RuntimeError):
            index.add(small_clustered[100:110])

    def test_add_dimension_check(self, small_clustered):
        index = PMLSH(seed=0).fit(small_clustered[:100])
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 3)))

    def test_projected_matrix_stays_consistent(self, small_clustered):
        index = PMLSH(seed=0).fit(small_clustered[:200])
        index.add(small_clustered[200:220])
        expected = index.projection.project(index.data)
        np.testing.assert_allclose(index.projected, expected, rtol=1e-10)


class TestBudgetConsistencyAfterGrowth:
    """Regression tests: n-dependent quantities must track add()."""

    def test_candidate_budget_follows_n(self, small_clustered):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(
            small_clustered[:500]
        )
        k = 10
        before = index.candidate_budget(k)
        assert before == int(np.ceil(index.solved.beta * 500)) + k
        index.add(small_clustered[500:])
        n = small_clustered.shape[0]
        assert index.n == n
        assert index.candidate_budget(k) == int(np.ceil(index.solved.beta * n)) + k
        assert index.candidate_budget(k) > before

    def test_query_respects_grown_budget(self, small_clustered):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(
            small_clustered[:500]
        )
        index.add(small_clustered[500:])
        result = index.query(small_clustered[10] + 0.01, k=10)
        assert result.stats["candidates"] <= index.candidate_budget(10)

    def test_batch_search_after_add_matches_loop(self, small_clustered):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(
            small_clustered[:600]
        )
        index.add(small_clustered[600:])
        queries = small_clustered[:8] + 0.01
        batch = index.search(queries, k=5)
        for i, q in enumerate(queries):
            np.testing.assert_array_equal(batch.ids[i], index.query(q, 5).ids)
