"""Shared fixtures: small, seeded datasets reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import clustered_manifold, gaussian_mixture, uniform_hypercube


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_gaussian() -> np.ndarray:
    """600 x 24 isotropic Gaussian points (the hard, unclustered case)."""
    return np.random.default_rng(1).normal(size=(600, 24))


@pytest.fixture(scope="session")
def small_clustered() -> np.ndarray:
    """800 x 32 clustered points (the regime real descriptor data lives in)."""
    return gaussian_mixture(800, 32, num_clusters=12, cluster_std=0.7, seed=2)


@pytest.fixture(scope="session")
def small_manifold() -> np.ndarray:
    """700 x 48 points on an 8-dim manifold with cluster structure."""
    return clustered_manifold(
        700, 48, intrinsic_dim=8, num_clusters=10, cluster_spread=4.0, seed=3
    )


@pytest.fixture(scope="session")
def tiny_uniform() -> np.ndarray:
    """200 x 8 uniform points for exhaustive brute-force cross-checks."""
    return uniform_hypercube(200, 8, seed=4)


@pytest.fixture(scope="session")
def projected_points() -> np.ndarray:
    """1,000 x 15 points shaped like a projected dataset (m = 15)."""
    return np.random.default_rng(5).normal(size=(1000, 15)) * 3.0
