"""Tests for Z-order (Morton) encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.zorder import interleave_bits, zorder_values


class TestInterleaveBits:
    def test_two_dim_example(self):
        # x=0b10, y=0b01 with 2 bits -> z = x1 y1 x0 y0 = 1 0 0 1 = 9
        assert interleave_bits([0b10, 0b01], bits=2) == 0b1001

    def test_single_dimension_is_identity(self):
        for value in [0, 1, 7, 255]:
            assert interleave_bits([value], bits=8) == value

    def test_zero(self):
        assert interleave_bits([0, 0, 0], bits=4) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interleave_bits([-1, 0], bits=2)

    def test_bits_positive(self):
        with pytest.raises(ValueError):
            interleave_bits([1], bits=0)

    @given(
        st.lists(st.integers(0, 2**10 - 1), min_size=1, max_size=4),
        st.lists(st.integers(0, 2**10 - 1), min_size=1, max_size=4),
    )
    @settings(max_examples=50)
    def test_injective_for_equal_lengths(self, a, b):
        size = min(len(a), len(b))
        a, b = a[:size], b[:size]
        za = interleave_bits(a, bits=10)
        zb = interleave_bits(b, bits=10)
        if a != b:
            assert za != zb
        else:
            assert za == zb

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=2))
    @settings(max_examples=30)
    def test_monotone_on_diagonal(self, coords):
        """Equal coordinates sort by magnitude (prefix property)."""
        x = coords[0]
        z_small = interleave_bits([x, x], bits=9)
        z_large = interleave_bits([x + 1, x + 1], bits=9)
        assert z_large > z_small


class TestZorderValues:
    def test_shapes_and_types(self):
        grid = np.array([[0, 1], [3, 2], [-1, 5]], dtype=np.int64)
        values = zorder_values(grid)
        assert len(values) == 3
        assert all(isinstance(v, int) for v in values)

    def test_negative_coordinates_shifted(self):
        grid = np.array([[-5, -5], [-4, -5]], dtype=np.int64)
        values = zorder_values(grid)
        assert values[0] == 0  # the minimum corner maps to 0
        assert values[1] > 0

    def test_locality(self):
        """Neighbouring grid cells get nearer z-values than distant ones,
        on average (the property LSB-trees exploit)."""
        side = 16
        grid = np.array([[x, y] for x in range(side) for y in range(side)], dtype=np.int64)
        values = np.array(zorder_values(grid), dtype=np.float64)
        z = values.reshape(side, side)
        neighbour_gap = np.abs(np.diff(z, axis=0)).mean()
        random_gap = np.abs(z.ravel()[None, :] - z.ravel()[:, None]).mean()
        assert neighbour_gap < random_gap

    def test_rejects_floats(self):
        with pytest.raises(ValueError):
            zorder_values(np.zeros((2, 2)))

    def test_rejects_small_bits(self):
        grid = np.array([[0, 0], [0, 100]], dtype=np.int64)
        with pytest.raises(ValueError):
            zorder_values(grid, bits=3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            zorder_values(np.array([1, 2, 3]))
