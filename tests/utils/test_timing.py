"""Tests for the timing helpers."""

from __future__ import annotations

import time

from repro.utils.timing import Timer, time_call


def test_timer_measures_elapsed():
    with Timer() as timer:
        time.sleep(0.01)
    assert timer.elapsed_ms >= 5.0


def test_timer_resets_between_uses():
    timer = Timer()
    with timer:
        pass
    first = timer.elapsed_ms
    with timer:
        time.sleep(0.005)
    assert timer.elapsed_ms >= first


def test_time_call_returns_result_and_duration():
    result, elapsed = time_call(sum, range(100))
    assert result == 4950
    assert elapsed >= 0.0


def test_time_call_passes_kwargs():
    result, _ = time_call(sorted, [3, 1, 2], reverse=True)
    assert result == [3, 2, 1]
