"""Tests for the RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).normal(size=5)
        b = as_generator(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).normal(size=5)
        b = as_generator(2).normal(size=5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = as_generator(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(0, 5)
        assert len(children) == 5

    def test_children_are_independent(self):
        children = spawn_generators(0, 2)
        a = children[0].normal(size=100)
        b = children[1].normal(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_deterministic_from_int_seed(self):
        first = [g.normal() for g in spawn_generators(9, 3)]
        second = [g.normal() for g in spawn_generators(9, 3)]
        np.testing.assert_array_equal(first, second)

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_from_generator(self):
        parent = np.random.default_rng(3)
        children = spawn_generators(parent, 4)
        assert len(children) == 4


class TestDeriveSeed:
    def test_none_passthrough(self):
        assert derive_seed(None, 5) is None

    def test_deterministic(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_salt_changes_result(self):
        assert derive_seed(10, 1) != derive_seed(10, 2)

    def test_from_generator_draws(self):
        gen = np.random.default_rng(0)
        seed = derive_seed(gen, 0)
        assert isinstance(seed, int)
