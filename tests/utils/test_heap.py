"""Unit and property tests for the heap helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.heap import BoundedMaxHeap, MinHeap


class TestBoundedMaxHeap:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(0)
        with pytest.raises(ValueError):
            BoundedMaxHeap(-3)

    def test_keeps_k_smallest(self):
        heap = BoundedMaxHeap(3)
        for key in [5.0, 1.0, 4.0, 2.0, 3.0]:
            heap.push(key, f"v{key}")
        assert [key for key, _ in heap.items_sorted()] == [1.0, 2.0, 3.0]

    def test_bound_is_infinite_until_full(self):
        heap = BoundedMaxHeap(2)
        assert heap.bound == float("inf")
        heap.push(1.0, "a")
        assert heap.bound == float("inf")
        heap.push(5.0, "b")
        assert heap.bound == 5.0
        heap.push(2.0, "c")
        assert heap.bound == 2.0

    def test_push_returns_retention(self):
        heap = BoundedMaxHeap(1)
        assert heap.push(2.0, "a") is True
        assert heap.push(3.0, "b") is False
        assert heap.push(1.0, "c") is True

    def test_values_never_compared(self):
        """Un-orderable payloads (dicts) must not break tie handling."""
        heap = BoundedMaxHeap(2)
        heap.push(1.0, {"x": 1})
        heap.push(1.0, {"y": 2})
        heap.push(1.0, {"z": 3})
        assert len(heap) == 2

    def test_extend(self):
        heap = BoundedMaxHeap(2)
        heap.extend([(3.0, "a"), (1.0, "b"), (2.0, "c")])
        assert [key for key, _ in heap.items_sorted()] == [1.0, 2.0]

    def test_len_and_bool(self):
        heap = BoundedMaxHeap(5)
        assert not heap
        heap.push(1.0, "a")
        assert heap
        assert len(heap) == 1

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=20))
    def test_matches_sorted_prefix(self, keys, k):
        heap = BoundedMaxHeap(k)
        for i, key in enumerate(keys):
            heap.push(key, i)
        got = [key for key, _ in heap.items_sorted()]
        assert got == sorted(keys)[: min(k, len(keys))]


class TestMinHeap:
    def test_pops_in_key_order(self):
        heap = MinHeap()
        for key in [3.0, 1.0, 2.0]:
            heap.push(key, f"v{key}")
        assert [heap.pop()[0] for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_peek_key(self):
        heap = MinHeap()
        heap.push(2.0, "a")
        heap.push(1.0, "b")
        assert heap.peek_key() == 1.0
        assert len(heap) == 2

    def test_iter_drains(self):
        heap = MinHeap()
        for key in [4.0, 2.0, 9.0]:
            heap.push(key, key)
        assert [key for key, _ in heap] == [2.0, 4.0, 9.0]
        assert not heap

    def test_ties_preserve_insertion_order(self):
        heap = MinHeap()
        heap.push(1.0, "first")
        heap.push(1.0, "second")
        assert heap.pop()[1] == "first"
        assert heap.pop()[1] == "second"

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=100))
    def test_heap_sort_property(self, keys):
        heap = MinHeap()
        for key in keys:
            heap.push(key, None)
        drained = [key for key, _ in heap]
        assert drained == sorted(keys)
