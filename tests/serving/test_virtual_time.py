"""The virtual-clock harness itself, and the server's behavior on it.

Pins the :class:`~repro.serving.clock.VirtualClock` contract (firing
order, cancellation, monotonicity, re-arming inside a sweep), the
:class:`~repro.serving.clock.LoopClock` equivalence with ``loop.time``,
and the headline property the harness buys: two identical virtual-time
runs of a server produce **identical** latency numbers, stats and
slow-query records — no wall-clock anywhere.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Knn, create_index
from repro.obs import SlowQueryLog
from repro.serving import AsyncSearchServer, Clock, LoopClock, VirtualClock

from tests.serving._clock import ImmediateExecutor, advance, settle


@pytest.fixture(scope="module")
def exact_index(small_clustered):
    return create_index("exact").fit(small_clustered[:200])


class TestVirtualClock:
    def test_fires_in_deadline_then_scheduling_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_later(0.002, lambda: fired.append("b"))
        clock.call_later(0.001, lambda: fired.append("a"))
        clock.call_later(0.002, lambda: fired.append("c"))  # ties keep FIFO
        assert clock.advance(0.01) == 3
        assert fired == ["a", "b", "c"]

    def test_now_reads_each_deadline_during_callback(self):
        clock = VirtualClock(start=1.0)
        seen = []
        clock.call_later(0.5, lambda: seen.append(clock.now()))
        clock.advance(2.0)
        assert seen == [1.5]
        assert clock.now() == 3.0  # then lands on the sweep target

    def test_cancelled_timer_never_fires(self):
        clock = VirtualClock()
        fired = []
        timer = clock.call_later(0.001, lambda: fired.append(1))
        timer.cancel()
        assert clock.advance(1.0) == 0
        assert fired == []
        assert clock.pending == 0

    def test_callbacks_scheduled_during_sweep_fire_in_same_sweep(self):
        clock = VirtualClock()
        fired = []
        # The first wakeup re-arms a second one that still falls inside
        # the sweep window — a dispatched lane re-arming its timer.
        clock.call_later(0.001, lambda: clock.call_later(0.001, lambda: fired.append(clock.now())))
        assert clock.advance(0.01) == 2
        assert fired == [0.002]

    def test_pending_and_next_deadline(self):
        clock = VirtualClock()
        assert clock.next_deadline() is None
        first = clock.call_later(0.005, lambda: None)
        clock.call_later(0.010, lambda: None)
        assert clock.pending == 2
        assert clock.next_deadline() == 0.005
        first.cancel()
        assert clock.pending == 1
        assert clock.next_deadline() == 0.010

    def test_time_is_monotonic(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(-0.1)
        with pytest.raises(ValueError, match="monotonic"):
            clock.advance_to(4.0)
        with pytest.raises(ValueError, match="delay"):
            clock.call_later(-1.0, lambda: None)

    def test_satisfies_the_clock_protocol(self):
        assert isinstance(VirtualClock(), Clock)


class TestLoopClock:
    def test_mirrors_loop_time_and_schedules_on_it(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            clock = LoopClock(loop)
            assert isinstance(clock, Clock)
            assert abs(clock.now() - loop.time()) < 0.05
            fired = asyncio.Event()
            handle = clock.call_later(0.0, fired.set)
            await fired.wait()
            handle.cancel()  # handle exposes cancel() like a TimerHandle

        asyncio.run(scenario())


class TestDeterministicServing:
    """Two identical virtual-time runs agree on every number."""

    async def _run_once(self, index, queries):
        clock = VirtualClock()
        slow_log = SlowQueryLog(capacity=16, threshold_ms=1.0)
        server = AsyncSearchServer(
            index,
            max_batch=8,
            max_delay_ms=4.0,
            clock=clock,
            executor=ImmediateExecutor(),
            slow_log=slow_log,
        )
        pending = []
        # Three waves 2 (virtual) ms apart: 3 stragglers each, so every
        # wave rides a deadline flush at +4 ms.
        for wave in range(3):
            for row in queries[wave * 3 : wave * 3 + 3]:
                pending.append(asyncio.ensure_future(server.submit(row, Knn(k=2))))
            await settle()
            await advance(clock, 0.002)
        await advance(clock, 0.002)  # land exactly on the last deadline
        results = await asyncio.gather(*pending)
        stats = server.stats()
        records = [record.as_dict() for record in slow_log.records()]
        await server.close()
        waits = [result.stats["serving_wait_ms"] for result in results]
        # NaN-valued fields (no controller wired) would break ==; map
        # them to None so two runs can be compared for exact equality.
        flat = {
            key: (None if value != value else value)
            for key, value in stats.as_dict().items()
        }
        return waits, flat, records

    def test_two_runs_are_byte_identical(self, exact_index, small_clustered):
        queries = small_clustered[:9]
        first = asyncio.run(self._run_once(exact_index, queries))
        second = asyncio.run(self._run_once(exact_index, queries))
        assert first == second

    def test_latencies_are_exact_virtual_durations(self, exact_index, small_clustered):
        waits, stats, records = asyncio.run(
            self._run_once(exact_index, small_clustered[:9])
        )
        # Waves 0 and 1 share one lane (the timer armed at t=0 fires at
        # t=4 ms): wave 0 waited the full 4 ms window, wave 1 half of
        # it.  Wave 2 opened a fresh lane at t=4 ms and waited 4 ms.
        assert waits == [4.0, 4.0, 4.0, 2.0, 2.0, 2.0, 4.0, 4.0, 4.0]
        assert stats["deadline_flushes"] == 2.0
        assert stats["mean_occupancy"] == 4.5  # batches of 6 and 3
        assert stats["latency_p50_ms"] == 4.0
        # Every request beat the 1 ms slow threshold -> all captured,
        # stamped with exact virtual capture times (the two flushes).
        assert len(records) == 9
        assert {record["at"] for record in records} == {0.004, 0.008}
