"""Overload soak: the adaptive server vs static knobs on a 4x bursty trace.

Runs entirely in **virtual time** (no wall-clock sleeps): the served
index is a :class:`~tests.serving._clock.CostedIndex` that charges
``base + per_row * rows`` of virtual service time per batch, and the
driver advances a :class:`VirtualClock` along a deterministic bursty
arrival schedule at 4x the server's batch-1 capacity.  Every request
carries the SLO as its deadline, so hopeless work is shed instead of
poisoning the queue.

Asserted:

* **goodput** (answers delivered within the SLO per second of virtual
  makespan) of the self-tuning server is at least that of the best
  static ``(max_batch, max_delay_ms)`` pair on the same trace;
* **zero unshed deadline violations** on the adaptive server — every
  delivered answer met its SLO, and every shed in the log is legitimate
  (its deadline really had passed);
* the bookkeeping balances: sheds + answers == arrivals.

The whole run is deterministic (virtual clock + synchronous executor),
but it drives thousands of requests through several server
configurations, so it is gated behind the ``slow`` marker *and*
``REPRO_SOAK=1`` — the scheduled CI soak job sets the variable; the
tier-1 suite never pays for it.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

import repro
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    AdaptiveBatchController,
    AsyncSearchServer,
    ControllerConfig,
    ServingRejected,
)
from tests.serving._clock import (
    CostedIndex,
    ImmediateExecutor,
    VirtualClock,
    advance,
    settle,
)

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("REPRO_SOAK") != "1",
        reason="overload soak runs in the scheduled CI job (set REPRO_SOAK=1)",
    ),
]

# The virtual cost model: a batch of B rows takes BASE_S + PER_ROW_S * B
# seconds of service.  Batch-1 capacity is therefore ~488 req/s; the
# trace below offers 4x that, in bursts.
BASE_S = 2.0e-3
PER_ROW_S = 5.0e-5
CAPACITY = 1.0 / (BASE_S + PER_ROW_S)
SLO_MS = 6.0
N_REQUESTS = 1200
LOAD = 4.0

RNG = np.random.default_rng(1729)
DATA = RNG.normal(size=(400, 16))
QUERIES = RNG.normal(size=(N_REQUESTS, 16))
SPEC = repro.Knn(k=5)


def bursty_schedule(n: int, load: float, *, phase: int = 40) -> np.ndarray:
    """Deterministic square-wave arrivals: alternating burst/lull phases
    of *phase* requests whose gaps average ``1 / (load * CAPACITY)``."""
    mean_gap = 1.0 / (load * CAPACITY)
    burst = (np.arange(n) // phase) % 2 == 0
    gaps = np.where(burst, 0.25 * mean_gap, 1.75 * mean_gap)
    return np.cumsum(gaps)


async def _drive(server, clock, schedule):
    """Submit every query at its scheduled virtual instant; returns the
    per-request submit times and outcomes (result or typed refusal)."""
    tasks, submit_at = [], []
    for at_s, query in zip(schedule, QUERIES):
        if float(at_s) > clock.now():
            clock.advance_to(float(at_s))
        await settle(3)
        submit_at.append(clock.now())
        tasks.append(
            asyncio.ensure_future(server.submit(query, SPEC, deadline_ms=SLO_MS))
        )
        await settle(3)
    await advance(clock, 1.0)  # fire every remaining deadline timer
    outcomes = list(await asyncio.gather(*tasks, return_exceptions=True))
    await server.close()
    return submit_at, outcomes


def _score(submit_at, outcomes):
    """Goodput (in-SLO answers per second of makespan) + counts.

    Latency of a delivered answer is its batch wait plus its batch's
    service cost — exactly what the virtual clock charged, recomputed
    from the serving stats the answer carries.
    """
    in_slo = 0
    shed = 0
    over_slo = 0
    completions = []
    for t0, outcome in zip(submit_at, outcomes):
        if isinstance(outcome, BaseException):
            assert isinstance(outcome, ServingRejected), outcome
            shed += 1
            continue
        batch = outcome.stats["serving_batch_size"]
        latency_ms = outcome.stats["serving_wait_ms"] + (
            BASE_S + PER_ROW_S * batch
        ) * 1e3
        completions.append(t0 + latency_ms / 1e3)
        if latency_ms <= SLO_MS + 1e-9:
            in_slo += 1
        else:
            over_slo += 1
    makespan = max(completions) - submit_at[0]
    return {
        "goodput": in_slo / makespan,
        "in_slo": in_slo,
        "over_slo": over_slo,
        "shed": shed,
    }


def _run_cell(*, max_batch, max_delay_ms, adaptive=False):
    async def cell():
        clock = VirtualClock()
        index = CostedIndex(
            repro.create_index("exact").fit(DATA),
            clock,
            base_s=BASE_S,
            per_row_s=PER_ROW_S,
        )
        controller = None
        if adaptive:
            # min_batch=4 keeps a toehold of coalescing: in this
            # synchronous simulation a window of one produces no batching
            # signals (the queue never builds between arrivals), so a
            # controller allowed to narrow all the way down would go
            # blind there.  idle_occupancy=0.12 matches: the lull phase
            # still arrives above batch-1 capacity, so it must keep
            # amortizing rather than read "idle" and narrow into the
            # backlog.
            controller = AdaptiveBatchController(
                ControllerConfig(
                    min_batch=4,
                    max_batch=64,
                    min_delay_ms=0.5,
                    max_delay_ms=2.0,
                    interval_ms=5.0,
                    hysteresis=2,
                    increase_step=8,
                    idle_occupancy=0.12,
                    slo_ms=SLO_MS,
                ),
                initial_batch=max_batch,
                initial_delay_ms=max_delay_ms,
            )
        server = AsyncSearchServer(
            index,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            executor=ImmediateExecutor(),
            clock=clock,
            metrics=MetricsRegistry(),
            controller=controller,
        )
        schedule = bursty_schedule(N_REQUESTS, LOAD)
        submit_at, outcomes = await _drive(server, clock, schedule)
        score = _score(submit_at, outcomes)
        score["server"] = server
        return score

    return asyncio.run(cell())


class TestOverloadSoak:
    """Adaptive vs static under a 4x bursty trace, all in virtual time."""

    @pytest.fixture(scope="class")
    def cells(self):
        statics = {
            "static 1/0ms": _run_cell(max_batch=1, max_delay_ms=0.0),
            "static 32/4ms": _run_cell(max_batch=32, max_delay_ms=4.0),
            # Deadline window wider than the SLO: the head of every lull
            # batch expires before dispatch — the cell that actually
            # exercises deadline shedding under load.
            "static 64/8ms": _run_cell(max_batch=64, max_delay_ms=8.0),
        }
        adaptive = _run_cell(max_batch=8, max_delay_ms=2.0, adaptive=True)
        return statics, adaptive

    def test_adaptive_goodput_at_least_best_static(self, cells):
        statics, adaptive = cells
        best = max(score["goodput"] for score in statics.values())
        assert adaptive["goodput"] >= best, (
            f"adaptive goodput {adaptive['goodput']:.1f}/s fell below the "
            f"best static pair {best:.1f}/s: "
            + ", ".join(
                f"{name}={score['goodput']:.1f}/s" for name, score in statics.items()
            )
        )

    def test_zero_unshed_deadline_violations(self, cells):
        _, adaptive = cells
        # Every answer the adaptive server actually delivered met the SLO:
        # hopeless requests were shed, none slipped through late.
        assert adaptive["over_slo"] == 0

    def test_every_shed_is_legitimate(self, cells):
        statics, adaptive = cells
        total_sheds = 0
        for score in [adaptive, *statics.values()]:
            server = score["server"]
            for record in server.admission.shed_log:
                assert record.deadline < record.now
                assert record.late_ms > 0.0
            total_sheds += len(server.admission.shed_log)
        # The over-wide static cell must actually have shed work — the
        # legitimacy loop above is not allowed to be vacuous.
        assert total_sheds > 0

    def test_bookkeeping_balances(self, cells):
        statics, adaptive = cells
        for score in [adaptive, *statics.values()]:
            stats = score["server"].stats()
            assert score["in_slo"] + score["over_slo"] == stats.requests_served
            assert score["shed"] == stats.requests_shed + stats.requests_rejected
            assert (
                score["in_slo"] + score["over_slo"] + score["shed"] == N_REQUESTS
            )
            assert len(score["server"].admission.shed_log) == stats.requests_shed

    def test_adaptive_actually_adapted(self, cells):
        _, adaptive = cells
        controller = adaptive["server"].controller
        assert controller.adjustments > 0
        assert controller.decision_log()  # the evidence trail is non-empty
