"""The adaptive batch controller: the AIMD loop and its invariants.

The unit tests drive :class:`AdaptiveBatchController` directly against a
standalone metrics registry — setting the very instruments a live server
would write — so every decision is a pure function of scripted inputs.
The hypothesis properties at the bottom pin the module's advertised
invariants over *arbitrary* signal traces: clamps always hold,
constant load converges (the decision log goes quiet), and identical
traces produce identical decision logs.

The integration tests at the end close the loop through a real
``AsyncSearchServer`` on the virtual clock: queue pressure widens the
effective window, idle traffic narrows it, and a two-run trace produces
byte-identical decision logs end to end.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Knn, create_index
from repro.obs import LatencyWindow, MetricsRegistry
from repro.serving import AdaptiveBatchController, AsyncSearchServer, ControllerConfig

from tests.serving._clock import ImmediateExecutor, VirtualClock, advance, settle

LABELS = {"instance": "ctl-test"}


def bound_controller(config=None, **kwargs):
    """A controller bound to a fresh registry, plus the input handles."""
    registry = MetricsRegistry()
    controller = AdaptiveBatchController(config, **kwargs)
    window = LatencyWindow(256)
    controller.bind(registry, LABELS, window)
    inputs = {
        "queue_depth": registry.gauge("queue_depth", labels=LABELS),
        "size_flushes": registry.counter("size_flushes", labels=LABELS),
        "deadline_flushes": registry.counter("deadline_flushes", labels=LABELS),
        "batches_served": registry.counter("batches_served", labels=LABELS),
        "requests_batched": registry.counter("requests_batched", labels=LABELS),
        "latency": window,
    }
    return controller, registry, inputs


class TestConfigValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="min_batch"):
            ControllerConfig(min_batch=0)
        with pytest.raises(ValueError, match="min_batch"):
            ControllerConfig(min_batch=9, max_batch=4)
        with pytest.raises(ValueError, match="min_delay_ms"):
            ControllerConfig(min_delay_ms=-1.0)
        with pytest.raises(ValueError, match="min_delay_ms"):
            ControllerConfig(min_delay_ms=8.0, max_delay_ms=2.0)
        with pytest.raises(ValueError, match="interval_ms"):
            ControllerConfig(interval_ms=0.0)
        with pytest.raises(ValueError, match="hysteresis"):
            ControllerConfig(hysteresis=0)
        with pytest.raises(ValueError, match="increase_step"):
            ControllerConfig(increase_step=0)
        with pytest.raises(ValueError, match="decrease_factor"):
            ControllerConfig(decrease_factor=1.0)

    def test_initial_knobs_are_clamped_into_range(self):
        config = ControllerConfig(min_batch=4, max_batch=32, min_delay_ms=1.0)
        controller = AdaptiveBatchController(
            config, initial_batch=1000, initial_delay_ms=0.0
        )
        assert controller.window == 32
        assert controller.delay_ms == 1.0

    def test_double_bind_raises(self):
        controller, _, _ = bound_controller()
        with pytest.raises(RuntimeError, match="already bound"):
            controller.bind(MetricsRegistry(), LABELS, LatencyWindow(8))

    def test_unbound_controller_holds_still(self):
        controller = AdaptiveBatchController()
        assert controller.tick(0.0) is None
        assert controller.adjustments == 0


class TestDecisionLoop:
    def test_queue_pressure_widens_after_hysteresis(self):
        config = ControllerConfig(
            min_batch=1, max_batch=64, hysteresis=2, increase_step=8, interval_ms=10.0
        )
        controller, registry, inputs = bound_controller(config, initial_batch=8)
        inputs["queue_depth"].set(50)  # >= window: sustained pressure
        assert controller.tick(0.00) is None  # streak 1 of 2
        decision = controller.tick(0.02)  # streak 2: applied
        assert decision is not None and decision.action == "widen"
        assert controller.window == 16
        assert controller.delay_ms == pytest.approx(
            min(config.max_delay_ms, 16.0)
        )
        # Published back into the registry as gauges and counters.
        assert registry.value("controller_window", LABELS) == 16
        assert registry.value("controller_widens", LABELS) == 1
        assert registry.value("controller_ticks", LABELS) == 2

    def test_idle_deadline_flushes_narrow(self):
        config = ControllerConfig(hysteresis=2, decrease_factor=0.5, interval_ms=10.0)
        controller, registry, inputs = bound_controller(
            config, initial_batch=32, initial_delay_ms=8.0
        )
        # Empty queue, batches going out on deadline, nearly empty.
        for at in (0.00, 0.02, 0.04):
            inputs["deadline_flushes"].inc()
            inputs["batches_served"].inc()
            inputs["requests_batched"].inc(1)
            controller.tick(at)
        assert controller.adjustments == 1
        assert controller.decisions[0].action == "narrow"
        assert controller.window == 16
        assert controller.delay_ms == 4.0
        assert registry.value("controller_narrows", LABELS) == 1

    def test_slo_breach_narrows_when_queue_is_shallow(self):
        config = ControllerConfig(hysteresis=1, slo_ms=5.0, interval_ms=10.0)
        controller, _, inputs = bound_controller(
            config, initial_batch=32, initial_delay_ms=8.0
        )
        for _ in range(64):
            inputs["latency"].record(12.0)  # p99 far over the 5 ms SLO
        decision = controller.tick(0.0)
        assert decision is not None and decision.action == "narrow"
        assert decision.p99_ms == 12.0

    def test_ticks_are_rate_limited_to_the_interval(self):
        config = ControllerConfig(interval_ms=10.0, hysteresis=1)
        controller, registry, inputs = bound_controller(config, initial_batch=4)
        inputs["queue_depth"].set(100)
        assert controller.tick(0.000) is not None
        assert controller.tick(0.005) is None  # too soon: not even counted
        assert registry.value("controller_ticks", LABELS) == 1
        assert controller.tick(0.011) is not None

    def test_one_odd_tick_never_flaps(self):
        config = ControllerConfig(hysteresis=2, interval_ms=10.0)
        controller, _, inputs = bound_controller(config, initial_batch=8)
        inputs["queue_depth"].set(50)
        controller.tick(0.00)  # pressure, streak 1
        inputs["queue_depth"].set(0)
        controller.tick(0.02)  # neutral tick resets the streak
        inputs["queue_depth"].set(50)
        controller.tick(0.04)  # pressure again, streak back to 1
        assert controller.adjustments == 0

    def test_clamped_noop_is_not_logged(self):
        config = ControllerConfig(min_batch=1, max_batch=16, max_delay_ms=4.0)
        controller, _, inputs = bound_controller(
            config, initial_batch=16, initial_delay_ms=4.0
        )
        inputs["queue_depth"].set(500)  # permanent pressure at the clamp
        for i in range(10):
            assert controller.tick(i * 0.02) is None
        assert controller.decisions == []

    def test_decision_log_round_trips_to_dicts(self):
        config = ControllerConfig(hysteresis=1, interval_ms=10.0)
        controller, _, inputs = bound_controller(config, initial_batch=4)
        inputs["queue_depth"].set(9)
        controller.tick(0.5)
        (entry,) = controller.decision_log()
        assert entry["action"] == "widen"
        assert entry["at"] == 0.5
        assert entry["queue_depth"] == 9
        assert math.isnan(entry["p99_ms"])  # no latency history yet


# --- hypothesis properties ---------------------------------------------------

SIGNALS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),  # queue_depth
        st.integers(min_value=0, max_value=20),  # size flushes this tick
        st.integers(min_value=0, max_value=20),  # deadline flushes this tick
        st.integers(min_value=0, max_value=200),  # requests batched this tick
        st.floats(min_value=0.1, max_value=50.0),  # a latency sample (ms)
    ),
    min_size=1,
    max_size=60,
)

CONFIGS = st.builds(
    ControllerConfig,
    min_batch=st.integers(min_value=1, max_value=8),
    max_batch=st.integers(min_value=8, max_value=256),
    min_delay_ms=st.floats(min_value=0.1, max_value=1.0),
    max_delay_ms=st.floats(min_value=1.0, max_value=32.0),
    hysteresis=st.integers(min_value=1, max_value=3),
    increase_step=st.integers(min_value=1, max_value=16),
    decrease_factor=st.floats(min_value=0.2, max_value=0.8),
    slo_ms=st.one_of(st.none(), st.floats(min_value=1.0, max_value=40.0)),
)


def drive(controller, inputs, signals, interval_s=0.02):
    """Feed scripted per-tick signals through a bound controller."""
    for i, (depth, size_fl, deadline_fl, batched, latency) in enumerate(signals):
        inputs["queue_depth"].set(depth)
        inputs["size_flushes"].inc(size_fl)
        inputs["deadline_flushes"].inc(deadline_fl)
        batches = size_fl + deadline_fl
        inputs["batches_served"].inc(batches)
        inputs["requests_batched"].inc(batched)
        inputs["latency"].record(latency)
        controller.tick(i * interval_s)


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(config=CONFIGS, signals=SIGNALS)
    def test_knobs_always_inside_the_clamps(self, config, signals):
        controller, _, inputs = bound_controller(config)
        for i, signal in enumerate(signals):
            drive(controller, inputs, [signal], interval_s=0.02)
            assert config.min_batch <= controller.window <= config.max_batch
            assert config.min_delay_ms <= controller.delay_ms <= config.max_delay_ms

    @settings(max_examples=60, deadline=None)
    @given(
        queue_depth=st.integers(min_value=0, max_value=300),
        occupancy=st.integers(min_value=0, max_value=64),
        initial_batch=st.integers(min_value=1, max_value=128),
    )
    def test_constant_load_converges(self, queue_depth, occupancy, initial_batch):
        """Under any constant signal (no SLO term) the loop settles: the
        second half of a long run applies zero further adjustments."""
        config = ControllerConfig(hysteresis=1, interval_ms=10.0)
        controller, _, inputs = bound_controller(config, initial_batch=initial_batch)
        signal = (queue_depth, 0, 1, occupancy, 5.0)
        drive(controller, inputs, [signal] * 100)
        halfway = len(
            [d for d in controller.decisions if d.tick <= 50]
        )
        assert len(controller.decisions) == halfway  # quiet after tick 50

    @settings(max_examples=40, deadline=None)
    @given(config=CONFIGS, signals=SIGNALS)
    def test_identical_traces_identical_decision_logs(self, config, signals):
        logs = []
        for _ in range(2):
            controller, _, inputs = bound_controller(config)
            drive(controller, inputs, signals)
            logs.append(controller.decision_log())
        assert logs[0] == logs[1]


# --- closed loop through a real server ---------------------------------------

class TestServerIntegration:
    @pytest.fixture(scope="class")
    def index(self, small_clustered):
        return create_index("exact").fit(small_clustered[:200])

    def test_queue_pressure_widens_the_effective_window(self, index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            controller = AdaptiveBatchController(
                ControllerConfig(
                    min_batch=2, max_batch=64, hysteresis=1, interval_ms=1.0,
                    increase_step=8, max_delay_ms=16.0,
                ),
                initial_batch=4,
                initial_delay_ms=2.0,
            )
            server = AsyncSearchServer(
                index, clock=clock, executor=ImmediateExecutor(), controller=controller
            )
            assert server.effective_max_batch == 4
            pending = []
            # Three waves of 12 concurrent submits, 2 (virtual) ms apart:
            # the queue is deeper than the window at every tick.
            for _ in range(3):
                pending += [
                    asyncio.ensure_future(server.submit(row, Knn(k=2)))
                    for row in small_clustered[:12]
                ]
                await settle()
                await advance(clock, 0.002)
            await advance(clock, 0.05)
            await asyncio.gather(*pending)
            stats = server.stats()
            await server.close()
            return controller, stats

        controller, stats = asyncio.run(scenario())
        assert controller.window > 4  # widened under sustained pressure
        assert any(d.action == "widen" for d in controller.decisions)
        assert stats.controller_window == controller.window
        assert stats.controller_adjustments == controller.adjustments

    def test_idle_traffic_narrows_the_effective_window(self, index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            controller = AdaptiveBatchController(
                ControllerConfig(
                    min_batch=1, max_batch=64, hysteresis=1, interval_ms=1.0,
                    min_delay_ms=0.5, max_delay_ms=16.0,
                ),
                initial_batch=32,
                initial_delay_ms=8.0,
            )
            server = AsyncSearchServer(
                index, clock=clock, executor=ImmediateExecutor(), controller=controller
            )
            # Lone requests 10 (virtual) ms apart: every batch goes out
            # on deadline with occupancy 1 and an empty queue.
            for i in range(8):
                pending = asyncio.ensure_future(
                    server.submit(small_clustered[i], Knn(k=2))
                )
                await settle()
                await advance(clock, float(server.effective_delay_ms) / 1e3)
                await pending
                await advance(clock, 0.010)
            narrowed = controller.window
            await server.close()
            return narrowed, controller

        narrowed, controller = asyncio.run(scenario())
        assert narrowed < 32
        assert any(d.action == "narrow" for d in controller.decisions)

    def test_two_identical_server_traces_reproduce_the_decision_log(
        self, index, small_clustered
    ):
        async def run_once():
            clock = VirtualClock()
            controller = AdaptiveBatchController(
                ControllerConfig(hysteresis=1, interval_ms=1.0),
                initial_batch=4,
                initial_delay_ms=2.0,
            )
            server = AsyncSearchServer(
                index, clock=clock, executor=ImmediateExecutor(), controller=controller
            )
            pending = []
            for wave in range(4):
                pending += [
                    asyncio.ensure_future(server.submit(row, Knn(k=2)))
                    for row in small_clustered[wave * 8 : wave * 8 + 8]
                ]
                await settle()
                await advance(clock, 0.002)
            await advance(clock, 0.05)
            await asyncio.gather(*pending)
            await server.close()
            return controller.decision_log()

        first = asyncio.run(run_once())
        second = asyncio.run(run_once())
        assert first == second
        assert first  # the trace actually exercised the loop
