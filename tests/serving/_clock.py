"""Virtual-time harness for the serving test suite.

Every time-driven serving test runs on a
:class:`~repro.serving.clock.VirtualClock` injected into the server:
time only moves when the test says so, deadline flushes and shed
decisions happen at exact instants, and the whole suite finishes with
**zero wall-clock sleeps** — ``await asyncio.sleep(0)`` (a pure yield to
the event loop, no timer armed) is the only ``sleep`` spelled anywhere.

The helpers:

* :func:`settle` — yield the event loop a few turns so queued callbacks
  (scatter tasks, executor completions) run, without advancing any
  clock;
* :func:`advance` — move a :class:`VirtualClock` forward (firing due
  deadline timers synchronously) and then settle, so the batches those
  timers dispatched get scattered;
* :func:`run_trace` — drive a server with a scripted arrival trace
  ``(at_s, query, deadline_ms, priority)`` in virtual time and collect
  one outcome per request (a ``QueryResult`` or the typed refusal);
* :class:`RecordingIndex` — an index wrapper that records every batch
  ``run()`` receives, the witness for "a shed request never reaches the
  index";
* :class:`ImmediateExecutor` — runs executor jobs synchronously on the
  caller (submission order trivially preserved), which keeps a whole
  server single-threaded and therefore bit-for-bit deterministic under
  the virtual clock.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from concurrent.futures import Executor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving import VirtualClock

__all__ = [
    "ImmediateExecutor",
    "RecordingIndex",
    "VirtualClock",
    "advance",
    "run_trace",
    "settle",
]


async def settle(turns: int = 10) -> None:
    """Yield the event loop *turns* times; never arms a timer."""
    for _ in range(turns):
        await asyncio.sleep(0)


async def advance(clock: VirtualClock, dt: float, *, turns: int = 10) -> int:
    """Advance virtual time by *dt* seconds, then settle the loop.

    Timer callbacks (deadline dispatches) fire synchronously inside the
    ``advance``; the settle afterwards lets the scatter tasks they
    created resolve their futures.  Returns the number of timers fired.
    """
    fired = clock.advance(dt)
    await settle(turns)
    return fired


class ImmediateExecutor(Executor):
    """An executor that runs each job synchronously at submit time.

    Satisfies the server's executor contract (jobs run in submission
    order, one at a time) while keeping everything on the event-loop
    thread — no worker thread, no scheduling jitter, so a server driven
    by a :class:`VirtualClock` is fully deterministic.
    """

    def submit(self, fn, *args, **kwargs):
        future: "concurrent.futures.Future" = concurrent.futures.Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # propagate to the awaiting scatter
            future.set_exception(exc)
        return future


class CostedIndex:
    """Delegating index wrapper that charges *virtual* service time.

    Each ``run()`` call advances the supplied :class:`VirtualClock` by
    ``base_s + per_row_s * rows`` — the classic batch cost model (a
    fixed dispatch overhead amortized over the rows).  Combined with
    :class:`ImmediateExecutor` (so ``run()`` executes synchronously
    inside the dispatch), this turns the whole server into a
    deterministic discrete-event simulation: queueing, deadline expiry
    and controller decisions all unfold in virtual time, identically on
    every host.  Advancing the clock inside a dispatch can fire other
    lanes' deadline timers — that is the simulation working, not a bug:
    a long-running batch really does push later lanes past their
    deadlines.
    """

    def __init__(self, index, clock: VirtualClock, *, base_s: float, per_row_s: float) -> None:
        self._index = index
        self._clock = clock
        self.base_s = float(base_s)
        self.per_row_s = float(per_row_s)
        self.busy_s = 0.0  # total virtual service time charged

    def run(self, queries, spec):
        rows = int(np.atleast_2d(queries).shape[0])
        result = self._index.run(queries, spec)
        cost = self.base_s + self.per_row_s * rows
        self.busy_s += cost
        self._clock.advance(cost)
        return result

    def __getattr__(self, name):
        return getattr(self._index, name)


class RecordingIndex:
    """Delegating index wrapper that records every ``run()`` batch.

    ``batches`` holds a copy of each query matrix the index actually
    received, in execution order — the evidence that shed requests never
    reached it and that priority lanes dispatched first.
    """

    def __init__(self, index) -> None:
        self._index = index
        self.batches: List[np.ndarray] = []

    def run(self, queries, spec):
        self.batches.append(np.array(queries, copy=True))
        return self._index.run(queries, spec)

    @property
    def rows_seen(self) -> int:
        return sum(batch.shape[0] for batch in self.batches)

    def __getattr__(self, name):
        return getattr(self._index, name)


async def run_trace(
    server,
    clock: VirtualClock,
    arrivals: Sequence[Tuple[float, np.ndarray, Optional[float], int]],
    spec,
    *,
    drain_s: float = 120.0,
) -> List[object]:
    """Drive *server* with a scripted virtual-time arrival trace.

    Each arrival is ``(at_s, query, deadline_ms, priority)``; the clock
    is advanced to each arrival instant (firing any deadline dispatches
    due on the way), the request is submitted, and after the last
    arrival time advances by *drain_s* so every armed timer fires.
    Returns one outcome per arrival, in order: the ``QueryResult`` or
    the exception (``DeadlineExceeded`` / ``QueueFull``) it raised.
    """
    tasks = []
    for at_s, query, deadline_ms, priority in arrivals:
        if at_s > clock.now():
            clock.advance_to(float(at_s))
        await settle(4)
        tasks.append(
            asyncio.ensure_future(
                server.submit(
                    query, spec, deadline_ms=deadline_ms, priority=priority
                )
            )
        )
        await settle(4)
    await advance(clock, drain_s)
    return list(await asyncio.gather(*tasks, return_exceptions=True))
