"""Tests for the projected-locality query-result cache."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Knn, Range, create_index
from repro.engine.stats import LatencyWindow
from repro.obs import MetricsRegistry
from repro.queries import QuerySpec
from repro.serving import AsyncSearchServer, ProjectedQueryCache, TieredQueryCache


class TestMergeKeys:
    def test_equal_specs_share_a_key(self):
        assert Knn(k=5).merge_key == Knn(k=5).merge_key
        assert Knn(k=5).can_merge_with(Knn(k=5))
        assert Range(r=2.0, c=1.5).merge_key == Range(r=2.0, c=1.5).merge_key

    def test_any_field_difference_splits_the_key(self):
        assert not Knn(k=5).can_merge_with(Knn(k=6))
        assert not Knn(k=5).can_merge_with(Knn(k=5, budget=100))
        assert not Knn(k=5).can_merge_with(Knn(k=5, c=2.0))
        assert not Range(r=2.0).can_merge_with(Range(r=2.5))
        assert not Knn(k=5).can_merge_with(Range(r=5.0))

    def test_keys_are_hashable(self):
        grouped = {spec.merge_key for spec in [Knn(5), Knn(5), Knn(6), Range(r=1.0)]}
        assert len(grouped) == 3

    def test_base_spec_key(self):
        assert QuerySpec().merge_key == ("QuerySpec",)


class TestProjectedQueryCache:
    def make_result(self, seed: int):
        from repro.baselines.base import QueryResult

        rng = np.random.default_rng(seed)
        return QueryResult(
            ids=rng.integers(0, 100, size=3), distances=np.sort(rng.random(3))
        )

    def test_put_get_round_trip_and_counters(self):
        cache = ProjectedQueryCache(capacity=8)
        q = np.arange(4, dtype=np.float64)
        result = self.make_result(0)
        assert cache.get(q, Knn(k=3)) is None
        assert cache.put(q, Knn(k=3), result, epoch=0)
        hit = cache.get(q, Knn(k=3))
        assert hit is result
        assert (cache.hits, cache.misses) == (1, 1)

    def test_spec_key_separates_entries(self):
        cache = ProjectedQueryCache(capacity=8)
        q = np.arange(4, dtype=np.float64)
        cache.put(q, Knn(k=3), self.make_result(0), epoch=0)
        assert cache.get(q, Knn(k=4)) is None
        assert cache.get(q, Range(r=1.0)) is None

    def test_resolution_collapses_near_duplicates(self):
        fine = ProjectedQueryCache(capacity=8, resolution=1e-9)
        coarse = ProjectedQueryCache(capacity=8, resolution=1.0)
        q = np.zeros(4)
        near = q + 1e-3
        result = self.make_result(1)
        fine.put(q, Knn(k=3), result, epoch=0)
        coarse.put(q, Knn(k=3), result, epoch=0)
        assert fine.get(near, Knn(k=3)) is None  # distinct cells
        assert coarse.get(near, Knn(k=3)) is result  # same cell

    def test_lru_eviction(self):
        cache = ProjectedQueryCache(capacity=2)
        queries = [np.full(3, float(i)) for i in range(3)]
        for i, q in enumerate(queries):
            cache.put(q, Knn(k=1), self.make_result(i), epoch=0)
        assert cache.get(queries[0], Knn(k=1)) is None  # evicted
        assert cache.get(queries[2], Knn(k=1)) is not None

    def test_stale_epoch_put_is_dropped(self):
        cache = ProjectedQueryCache(capacity=8)
        q = np.arange(3, dtype=np.float64)
        cache.invalidate()  # epoch 0 -> 1
        assert not cache.put(q, Knn(k=1), self.make_result(0), epoch=0)
        assert len(cache) == 0
        assert cache.put(q, Knn(k=1), self.make_result(0), epoch=1)

    def test_projector_is_used_for_keys(self, small_clustered):
        index = create_index("pm-lsh", seed=5).fit(small_clustered[:300])
        cache = ProjectedQueryCache(capacity=4, projector=index.projection.project)
        q = small_clustered[0]
        key = cache.key_for(q, Knn(k=2))
        cell = np.frombuffer(key[1], dtype=np.int64)
        assert cell.size == index.params.m  # keyed in projected space, not R^d

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="capacity"):
            ProjectedQueryCache(capacity=0)
        with pytest.raises(ValueError, match="resolution"):
            ProjectedQueryCache(resolution=0.0)


class TestTieredQueryCache:
    def make_result(self, seed: int):
        from repro.baselines.base import QueryResult

        rng = np.random.default_rng(seed)
        return QueryResult(
            ids=rng.integers(0, 100, size=3), distances=np.sort(rng.random(3))
        )

    def test_exact_tier_answers_byte_identical_repeats(self):
        cache = TieredQueryCache(exact_capacity=8)
        q = np.arange(4, dtype=np.float64)
        result = self.make_result(0)
        assert cache.get(q, Knn(k=3)) is None
        assert cache.put(q, Knn(k=3), result, epoch=0)
        assert cache.get(q, Knn(k=3)) is result
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.exact_hits == 1
        # A near-duplicate is NOT an exact repeat: tier 1 alone misses.
        assert cache.get(q + 1e-9, Knn(k=3)) is None

    def test_projected_tier_hit_is_promoted_to_exact(self):
        projected = ProjectedQueryCache(capacity=8, resolution=1.0)
        cache = TieredQueryCache(exact_capacity=8, projected=projected)
        q = np.zeros(4)
        near = q + 1e-3  # same projected cell at resolution 1.0
        result = self.make_result(1)
        cache.put(q, Knn(k=3), result, epoch=0)
        assert cache.get(near, Knn(k=3)) is result  # tier-2 hit …
        assert cache.exact_hits == 0
        assert cache.get(near, Knn(k=3)) is result  # … promoted: tier-1 now
        assert cache.exact_hits == 1

    def test_tiers_share_one_epoch(self):
        projected = ProjectedQueryCache(capacity=8)
        cache = TieredQueryCache(exact_capacity=8, projected=projected)
        q = np.arange(3, dtype=np.float64)
        cache.put(q, Knn(k=1), self.make_result(0), epoch=0)
        cache.invalidate()
        assert cache.epoch == projected.epoch == 1
        assert len(cache) == 0  # both tiers dropped together
        # A put tagged with the pre-bump epoch is refused by both tiers.
        assert not cache.put(q, Knn(k=1), self.make_result(0), epoch=0)
        assert cache.get(q, Knn(k=1)) is None

    def test_standalone_exact_tier_has_its_own_epoch(self):
        cache = TieredQueryCache(exact_capacity=4)
        q = np.arange(3, dtype=np.float64)
        cache.invalidate()
        assert cache.epoch == 1
        assert not cache.put(q, Knn(k=1), self.make_result(0), epoch=0)
        assert cache.put(q, Knn(k=1), self.make_result(0), epoch=1)

    def test_exact_lru_eviction_is_counted(self):
        registry = MetricsRegistry()
        cache = TieredQueryCache(exact_capacity=2)
        cache.bind_metrics(registry, {"instance": "t"})
        queries = [np.full(3, float(i)) for i in range(3)]
        for i, q in enumerate(queries):
            cache.put(q, Knn(k=1), self.make_result(i), epoch=0)
        assert cache.get(queries[0], Knn(k=1)) is None  # evicted
        assert registry.value("cache_exact_evictions", {"instance": "t"}) == 1

    def test_aggregate_miss_counts_once_across_tiers(self):
        projected = ProjectedQueryCache(capacity=8)
        cache = TieredQueryCache(exact_capacity=8, projected=projected)
        assert cache.get(np.zeros(3), Knn(k=1)) is None
        assert cache.misses == 1  # fell through both tiers, counted once

    def test_capacity_sums_tiers(self):
        cache = TieredQueryCache(
            exact_capacity=8, projected=ProjectedQueryCache(capacity=16)
        )
        assert cache.capacity == 24
        with pytest.raises(ValueError, match="exact_capacity"):
            TieredQueryCache(exact_capacity=0)

    def test_server_builds_tier_on_exact_cache_kwarg(self, small_clustered):
        index = create_index("exact").fit(small_clustered[:150])
        q = small_clustered[2]

        async def serve():
            async with AsyncSearchServer(
                index, max_batch=2, cache=16, exact_cache=8
            ) as server:
                assert isinstance(server.cache, TieredQueryCache)
                await server.submit(q, Knn(k=2))
                hit = await server.submit(q, Knn(k=2))
                return hit, server.stats()

        hit, stats = asyncio.run(serve())
        assert hit.stats["served_from_cache"] == 1.0
        assert stats.exact_cache_hits == 1
        assert stats.cache_hits == 1
        # The write-safety contract holds through the tier: one batch.
        assert stats.batches_served == 1

    def test_server_write_invalidates_both_tiers(self, small_clustered):
        index = create_index("exact").fit(small_clustered[:150])
        q = small_clustered[160]  # not indexed yet

        async def serve():
            async with AsyncSearchServer(
                index, max_batch=2, cache=16, exact_cache=8
            ) as server:
                before = await server.submit(q, Knn(k=1))
                await server.add(q[None, :])  # plant an exact duplicate
                after = await server.submit(q, Knn(k=1))
                return before, after

        before, after = asyncio.run(serve())
        assert float(before.distances[0]) > 0.0
        assert float(after.distances[0]) == 0.0  # never the stale answer


class TestServerCacheIntegration:
    def test_repeat_query_hits_and_is_identical(self, small_clustered):
        index = create_index("pm-lsh", seed=7).fit(small_clustered[:400])
        q = small_clustered[5] + 0.01

        async def serve():
            async with AsyncSearchServer(index, max_batch=4, cache=32) as server:
                first = await server.submit(q, Knn(k=6))
                second = await server.submit(q, Knn(k=6))
                return first, second, server.stats()

        first, second, stats = asyncio.run(serve())
        assert "served_from_cache" not in first.stats
        assert second.stats["served_from_cache"] == 1.0
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_array_equal(first.distances, second.distances)
        assert (stats.cache_hits, stats.cache_misses) == (1, 1)
        assert stats.cache_hit_rate == 0.5
        # The hit never reached the batcher: one batch total.
        assert stats.batches_served == 1

    def test_prebuilt_cache_with_nonzero_epoch_still_stores(self, small_clustered):
        """Regression: puts used to be tagged with the *server's* epoch,
        so a pre-built (or previously invalidated) cache whose own epoch
        wasn't 0 silently rejected every store."""
        index = create_index("exact").fit(small_clustered[:150])
        cache = ProjectedQueryCache(capacity=16)
        cache.invalidate()  # epoch 1 before the server ever sees it
        q = small_clustered[2]

        async def serve():
            async with AsyncSearchServer(index, max_batch=2, cache=cache) as server:
                await server.submit(q, Knn(k=2))
                hit = await server.submit(q, Knn(k=2))
                return hit

        hit = asyncio.run(serve())
        assert hit.stats["served_from_cache"] == 1.0
        assert cache.hits == 1

    def test_add_invalidates_cached_answers(self, small_clustered):
        index = create_index("pm-lsh", seed=8).fit(small_clustered[:300])
        q = small_clustered[3] + 0.005

        async def serve():
            async with AsyncSearchServer(index, max_batch=4, cache=32) as server:
                await server.submit(q, Knn(k=4))  # miss, fills cache
                await server.add(small_clustered[300:320])
                refreshed = await server.submit(q, Knn(k=4))  # must recompute
                return refreshed, server.stats()

        refreshed, stats = asyncio.run(serve())
        assert "served_from_cache" not in refreshed.stats
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2
        assert stats.epoch == 1

    def test_cached_answers_see_post_add_data_never_pre_add(self, small_clustered):
        """After a write, a lookup of the same query must reflect the
        grown dataset (the planted duplicate wins), not the cached
        pre-write answer."""
        index = create_index("exact").fit(small_clustered[:200])
        q = small_clustered[250]  # not indexed yet

        async def serve():
            async with AsyncSearchServer(index, max_batch=2, cache=16) as server:
                before = await server.submit(q, Knn(k=1))
                await server.add(q[None, :])  # plant an exact duplicate
                after = await server.submit(q, Knn(k=1))
                return before, after

        before, after = asyncio.run(serve())
        assert float(before.distances[0]) > 0.0
        assert int(after.ids[0]) == 200 and float(after.distances[0]) == 0.0


class TestLatencyWindow:
    def test_percentiles_over_recorded_samples(self):
        window = LatencyWindow(capacity=8)
        assert np.isnan(window.p50) and np.isnan(window.mean)
        for value in [1.0, 2.0, 3.0, 4.0]:
            window.record(value)
        assert window.p50 == 2.5
        assert window.count == 4
        assert window.mean == 2.5

    def test_ring_buffer_evicts_oldest(self):
        window = LatencyWindow(capacity=4)
        for value in range(100):
            window.record(float(value))
        assert window.count == 100
        assert window.percentile(0) == 96.0  # only the newest 4 retained

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyWindow(capacity=0)
