"""Tests for the asyncio micro-batching server.

Every test drives a real event loop through ``asyncio.run`` — no asyncio
test plugin needed — and pins the contracts ``docs/serving.md``
advertises: byte-identical scattering, the deadline flush, merge-key
isolation, epoch-interleaved writes, and drop-free shutdown.

Time-driven behavior (deadline flushes, stragglers) runs on the
virtual-clock harness (``tests/serving/_clock.py``): the server gets a
:class:`~repro.serving.clock.VirtualClock` and the test advances time
explicitly, so the whole file passes with zero wall-clock sleeps.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Knn, Range, create_index
from repro.serving import AsyncSearchServer, open_loop_arrivals

from tests.serving._clock import VirtualClock, advance, settle


@pytest.fixture(scope="module")
def pmlsh_index(small_clustered):
    return create_index("pm-lsh", seed=11).fit(small_clustered[:600])


@pytest.fixture(scope="module")
def exact_index(small_clustered):
    return create_index("exact").fit(small_clustered[:400])


class TestDeterminism:
    def test_async_knn_byte_identical_to_direct_run(self, pmlsh_index, small_clustered):
        queries = small_clustered[:37] + 0.01
        spec = Knn(k=8)
        direct = pmlsh_index.run(queries, spec)

        async def serve():
            clock = VirtualClock()
            async with AsyncSearchServer(
                pmlsh_index, max_batch=16, max_delay_ms=2.0, clock=clock
            ) as server:
                pending = asyncio.ensure_future(server.submit_many(queries, spec))
                await settle()
                await advance(clock, 0.002)  # flush the 37 % 16 stragglers
                return await pending

        results = asyncio.run(serve())
        assert len(results) == queries.shape[0]
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result.ids, direct[i].ids)
            np.testing.assert_array_equal(result.distances, direct[i].distances)

    def test_async_range_byte_identical_to_direct_run(self, pmlsh_index, small_clustered):
        queries = small_clustered[:12] + 0.01
        spec = Range(r=6.0)
        direct = pmlsh_index.run(queries, spec)

        async def serve():
            async with AsyncSearchServer(pmlsh_index, max_batch=4) as server:
                return await server.submit_many(queries, spec)

        results = asyncio.run(serve())
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result.ids, direct[i].ids)
            np.testing.assert_array_equal(result.distances, direct[i].distances)

    def test_sharded_engine_served_identically(self, small_clustered):
        engine = create_index(
            "sharded", backend="exact", num_shards=3, num_workers=1
        ).fit(small_clustered[:300])
        queries = small_clustered[:9] + 0.01
        direct = engine.run(queries, Knn(k=5))

        async def serve():
            async with AsyncSearchServer(engine, max_batch=3) as server:
                return await server.submit_many(queries, Knn(k=5))

        results = asyncio.run(serve())
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result.ids, direct[i].ids)
        engine.close()

    def test_results_carry_serving_fields(self, exact_index, small_clustered):
        async def serve():
            async with AsyncSearchServer(exact_index, max_batch=4) as server:
                return await server.submit_many(small_clustered[:4], Knn(k=3))

        results = asyncio.run(serve())
        for result in results:
            assert result.stats["serving_batch_size"] == 4.0
            assert result.stats["serving_wait_ms"] >= 0.0


class TestBatchingPolicy:
    def test_size_threshold_flushes_full_batches(self, exact_index, small_clustered):
        async def serve():
            server = AsyncSearchServer(exact_index, max_batch=8, max_delay_ms=60_000.0)
            results = await server.submit_many(small_clustered[:16], Knn(k=2))
            stats = server.stats()
            await server.close()
            return results, stats

        results, stats = asyncio.run(serve())
        assert len(results) == 16
        # A minute-long deadline cannot have fired: both flushes were size.
        assert stats.size_flushes == 2
        assert stats.deadline_flushes == 0
        assert stats.mean_occupancy == 8.0

    def test_deadline_flushes_single_straggler(self, exact_index, small_clustered):
        """Virtual time: the lone request dispatches exactly when the
        2 ms window expires — no wall-clock wait, exact wait accounting."""

        async def serve():
            clock = VirtualClock()
            server = AsyncSearchServer(
                exact_index, max_batch=64, max_delay_ms=2.0, clock=clock
            )
            pending = asyncio.ensure_future(server.submit(small_clustered[0], Knn(k=3)))
            await settle()
            assert server.queue_depth == 1  # queued, timer armed, nothing fired
            fired = await advance(clock, 0.002)
            assert fired == 1
            result = await pending
            stats = server.stats()
            await server.close()
            return result, stats

        result, stats = asyncio.run(serve())
        # The lone request was answered without 63 peers ever arriving …
        assert len(result) == 3
        assert result.stats["serving_batch_size"] == 1.0
        # … because the deadline, not the size threshold, fired — after
        # exactly the configured window on the virtual clock.
        assert result.stats["serving_wait_ms"] == 2.0
        assert stats.deadline_flushes == 1
        assert stats.size_flushes == 0

    def test_incompatible_specs_never_coalesce(self, exact_index, small_clustered):
        queries = small_clustered[:6]

        async def serve():
            clock = VirtualClock()
            async with AsyncSearchServer(
                exact_index, max_batch=64, max_delay_ms=5.0, clock=clock
            ) as server:
                pending = asyncio.gather(
                    server.submit_many(queries, Knn(k=5)),
                    server.submit_many(queries, Knn(k=3)),
                    server.submit_many(queries, Range(r=4.0)),
                )
                await settle()
                await advance(clock, 0.005)  # all three lanes hit the deadline
                k5, k3, ranged = await pending
                return k5, k3, ranged, server.stats()

        k5, k3, ranged, stats = asyncio.run(serve())
        # Three merge keys -> three separate batches, never one of 18.
        assert stats.batches_served == 3
        assert stats.mean_occupancy == 6.0
        assert all(len(result) == 5 for result in k5)
        assert all(len(result) == 3 for result in k3)
        assert all(result.stats["serving_batch_size"] == 6.0 for result in ranged)

    def test_zero_window_dispatches_next_loop_pass(self, exact_index, small_clustered):
        """Regression: max_delay_ms=0 with max_batch>1 used to arm no
        timer at all, hanging a lone submit forever.  A zero window must
        dispatch on the next loop pass — and a same-tick burst still
        coalesces."""

        async def serve():
            async with AsyncSearchServer(
                exact_index, max_batch=64, max_delay_ms=0.0
            ) as server:
                results = await asyncio.wait_for(
                    server.submit_many(small_clustered[:6], Knn(k=2)), timeout=5.0
                )
                return results, server.stats()

        results, stats = asyncio.run(serve())
        assert all(len(result) == 2 for result in results)
        assert stats.mean_occupancy > 1.0  # the burst still shared a batch

    def test_max_batch_one_disables_coalescing(self, exact_index, small_clustered):
        async def serve():
            async with AsyncSearchServer(exact_index, max_batch=1) as server:
                await server.submit_many(small_clustered[:5], Knn(k=2))
                return server.stats()

        stats = asyncio.run(serve())
        assert stats.batches_served == 5
        assert stats.mean_occupancy == 1.0


class TestWritePath:
    def test_add_grows_index_and_new_points_findable(self, small_clustered):
        index = create_index("pm-lsh", seed=3).fit(small_clustered[:300])
        fresh = small_clustered[300:310]

        async def serve():
            # A zero window dispatches the lone probe on the next loop
            # pass — no deadline timer, no wall-clock wait.
            async with AsyncSearchServer(index, max_batch=4, max_delay_ms=0.0) as server:
                ids = await server.add(fresh)
                probe = await server.submit(fresh[0], Knn(k=1))
                return ids, probe

        ids, probe = asyncio.run(serve())
        np.testing.assert_array_equal(ids, np.arange(300, 310))
        assert int(probe.ids[0]) == 300
        assert index.ntotal == 310

    def test_pending_requests_drain_before_the_write(self, small_clustered):
        """Requests submitted before add() are answered against pre-write
        data: the drain dispatches them ahead of the mutation on the
        (ordered, single-worker) executor."""
        index = create_index("exact").fit(small_clustered[:200])
        pre_n = index.ntotal

        async def serve():
            async with AsyncSearchServer(
                index, max_batch=64, max_delay_ms=60_000.0
            ) as server:
                pending = [
                    asyncio.ensure_future(server.submit(small_clustered[i], Knn(k=1)))
                    for i in range(4)
                ]
                await settle()  # let the submits enqueue (pure yields)
                assert server.queue_depth == 4
                await server.add(small_clustered[200:250])
                return await asyncio.gather(*pending), server.stats()

        results, stats = asyncio.run(serve())
        # Drained as one batch, answered over the pre-add candidate set.
        assert stats.drain_flushes >= 1
        for result in results:
            assert int(result.ids[0]) < pre_n
        assert stats.points_added == 50
        assert stats.epoch == 1


class TestShutdown:
    def test_close_resolves_inflight_requests(self, exact_index, small_clustered):
        async def serve():
            server = AsyncSearchServer(exact_index, max_batch=64, max_delay_ms=60_000.0)
            pending = [
                asyncio.ensure_future(server.submit(small_clustered[i], Knn(k=2)))
                for i in range(7)
            ]
            await settle()
            await server.close()  # drains the queue, awaits the batch
            results = await asyncio.gather(*pending)
            return results, server.stats()

        results, stats = asyncio.run(serve())
        assert len(results) == 7
        assert all(len(result) == 2 for result in results)
        assert stats.requests_served == 7
        assert stats.queue_depth == 0
        assert stats.inflight_batches == 0

    def test_submit_after_close_raises(self, exact_index, small_clustered):
        async def serve():
            server = AsyncSearchServer(exact_index)
            await server.close()
            await server.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                await server.submit(small_clustered[0], Knn(k=1))
            with pytest.raises(RuntimeError, match="closed"):
                await server.add(small_clustered[:2])

        asyncio.run(serve())

    def test_backend_error_propagates_to_every_waiter(self, exact_index):
        bad = np.zeros(7)  # wrong dimensionality -> index.run raises

        async def serve():
            async with AsyncSearchServer(exact_index, max_batch=2) as server:
                outcomes = await asyncio.gather(
                    server.submit(bad, Knn(k=1)),
                    server.submit(bad, Knn(k=1)),
                    return_exceptions=True,
                )
                return outcomes

        outcomes = asyncio.run(serve())
        assert all(isinstance(outcome, ValueError) for outcome in outcomes)


class TestValidationAndStats:
    def test_rejects_bad_constructor_args(self, exact_index):
        with pytest.raises(ValueError, match="max_batch"):
            AsyncSearchServer(exact_index, max_batch=0)
        with pytest.raises(ValueError, match="max_delay_ms"):
            AsyncSearchServer(exact_index, max_delay_ms=-1.0)

    def test_rejects_matrix_submit(self, exact_index, small_clustered):
        async def serve():
            async with AsyncSearchServer(exact_index) as server:
                with pytest.raises(ValueError, match="query vector"):
                    await server.submit(small_clustered[:3], Knn(k=1))

        asyncio.run(serve())

    def test_stats_snapshot_and_table(self, exact_index, small_clustered):
        async def serve():
            async with AsyncSearchServer(exact_index, max_batch=4) as server:
                await server.submit_many(small_clustered[:8], Knn(k=2))
                return server.stats()

        stats = asyncio.run(serve())
        assert stats.requests_submitted == 8
        assert stats.requests_served == 8
        assert stats.latency_p50_ms > 0.0
        assert stats.latency_p99_ms >= stats.latency_p50_ms
        as_dict = stats.as_dict()
        assert as_dict["mean_occupancy"] == 4.0
        table = stats.as_table()
        assert "Serving stats" in table and "Occupancy" in table

    def test_open_loop_driver_preserves_arrival_order(
        self, exact_index, small_clustered
    ):
        queries = list(small_clustered[:10])
        direct = exact_index.run(np.stack(queries), Knn(k=1))

        async def serve():
            # An (effectively) infinite rate makes every computed delay
            # non-positive: the driver never sleeps, order is still pinned.
            async with AsyncSearchServer(exact_index, max_batch=4) as server:
                return await open_loop_arrivals(
                    server, queries, Knn(k=1), rate_per_s=1e9, seed=0
                )

        results = asyncio.run(serve())
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result.ids, direct[i].ids)
