"""Admission control: deadlines, the bounded queue, priority lanes.

All on the virtual-clock harness — every shed decision happens at an
exact, scripted instant — with a :class:`RecordingIndex` witnessing the
central promise: **a shed request never reaches the index**, and every
admitted request's answer stays byte-identical to a direct ``run()``.

The hypothesis property at the bottom sweeps arbitrary arrival traces
and asserts the legitimacy invariant from ``repro/serving/admission.py``:
the server only ever sheds requests whose deadlines had already passed.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Knn, create_index
from repro.serving import (
    AdmissionControl,
    AsyncSearchServer,
    DeadlineExceeded,
    QueueFull,
    ServingRejected,
)

from tests.serving._clock import (
    ImmediateExecutor,
    RecordingIndex,
    VirtualClock,
    advance,
    run_trace,
    settle,
)


@pytest.fixture(scope="module")
def base_index(small_clustered):
    return create_index("exact").fit(small_clustered[:200])


def make_server(index, clock, **kwargs):
    kwargs.setdefault("max_batch", 64)
    kwargs.setdefault("max_delay_ms", 5.0)
    return AsyncSearchServer(
        index, clock=clock, executor=ImmediateExecutor(), **kwargs
    )


class TestDeadlines:
    def test_dead_on_arrival_is_shed_at_submit(self, base_index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            recording = RecordingIndex(base_index)
            server = make_server(recording, clock)
            with pytest.raises(DeadlineExceeded) as excinfo:
                await server.submit(small_clustered[0], Knn(k=2), deadline_ms=-1.0)
            stats = server.stats()
            await server.close()
            return excinfo.value, stats, recording, server.admission

        exc, stats, recording, admission = asyncio.run(scenario())
        assert exc.late_ms == 1.0
        assert exc.deadline_ms == -1.0
        assert recording.batches == []  # never reached the index
        assert stats.requests_shed == 1
        assert stats.requests_served == 0
        assert [record.stage for record in admission.shed_log] == ["submit"]

    def test_expiry_in_queue_sheds_at_dispatch(self, base_index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            recording = RecordingIndex(base_index)
            server = make_server(recording, clock, max_delay_ms=5.0)
            pending = asyncio.ensure_future(
                server.submit(small_clustered[0], Knn(k=2), deadline_ms=1.0)
            )
            await settle()
            await advance(clock, 0.005)  # deadline flush at t=5ms; budget died at 1ms
            with pytest.raises(DeadlineExceeded) as excinfo:
                await pending
            stats = server.stats()
            await server.close()
            return excinfo.value, stats, recording, server.admission

        exc, stats, recording, admission = asyncio.run(scenario())
        assert exc.late_ms == 4.0  # exactly (5 - 1) ms on the virtual clock
        assert recording.batches == []
        # An all-expired dispatch runs nothing: no flush is counted.
        assert stats.deadline_flushes == 0
        assert stats.batches_served == 0
        assert [record.stage for record in admission.shed_log] == ["dispatch"]

    def test_mixed_batch_sheds_expired_and_answers_live(
        self, base_index, small_clustered
    ):
        """The live remainder of a partly-expired batch is answered
        byte-identically to a direct run over just those queries."""
        live_query = small_clustered[1]
        direct = base_index.run(live_query[None, :], Knn(k=3))

        async def scenario():
            clock = VirtualClock()
            recording = RecordingIndex(base_index)
            server = make_server(recording, clock, max_delay_ms=5.0)
            doomed = asyncio.ensure_future(
                server.submit(small_clustered[0], Knn(k=3), deadline_ms=1.0)
            )
            alive = asyncio.ensure_future(
                server.submit(live_query, Knn(k=3), deadline_ms=50.0)
            )
            await settle()
            await advance(clock, 0.005)
            outcome_doomed, outcome_alive = await asyncio.gather(
                doomed, alive, return_exceptions=True
            )
            stats = server.stats()
            await server.close()
            return outcome_doomed, outcome_alive, stats, recording

        outcome_doomed, outcome_alive, stats, recording = asyncio.run(scenario())
        assert isinstance(outcome_doomed, DeadlineExceeded)
        np.testing.assert_array_equal(outcome_alive.ids, direct[0].ids)
        np.testing.assert_array_equal(outcome_alive.distances, direct[0].distances)
        # The index saw exactly one batch holding only the live query.
        assert len(recording.batches) == 1
        assert recording.batches[0].shape[0] == 1
        assert stats.deadline_flushes == 1
        assert (stats.requests_shed, stats.requests_served) == (1, 1)

    def test_live_deadline_is_never_shed(self, base_index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            server = make_server(base_index, clock, max_delay_ms=5.0)
            pending = asyncio.ensure_future(
                server.submit(small_clustered[0], Knn(k=2), deadline_ms=10.0)
            )
            await settle()
            await advance(clock, 0.005)  # dispatch at 5ms < 10ms budget
            result = await pending
            await server.close()
            return result, server.admission

        result, admission = asyncio.run(scenario())
        assert len(result) == 2
        assert admission.shed_log == []

    def test_typed_exceptions_share_a_base(self):
        assert issubclass(DeadlineExceeded, ServingRejected)
        assert issubclass(QueueFull, ServingRejected)
        assert "budget was 5 ms" in str(DeadlineExceeded(2.0, 5.0))
        assert "3/2" in str(QueueFull(3, 2))


class TestBoundedQueue:
    def test_reject_newest_refuses_the_arrival(self, base_index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            server = make_server(
                base_index, clock, max_queue_depth=2, max_delay_ms=60_000.0
            )
            queued = [
                asyncio.ensure_future(server.submit(small_clustered[i], Knn(k=2)))
                for i in range(2)
            ]
            await settle()
            with pytest.raises(QueueFull) as excinfo:
                await server.submit(small_clustered[2], Knn(k=2))
            # Everything already queued keeps its place and is answered.
            server.flush()
            results = await asyncio.gather(*queued)
            stats = server.stats()
            await server.close()
            return excinfo.value, results, stats

        exc, results, stats = asyncio.run(scenario())
        assert (exc.depth, exc.max_depth) == (2, 2)
        assert all(len(result) == 2 for result in results)
        assert stats.requests_rejected == 1
        assert stats.requests_shed == 0

    def test_drop_oldest_expired_frees_slots(self, base_index, small_clustered):
        async def scenario():
            clock = VirtualClock()
            server = make_server(
                base_index,
                clock,
                max_queue_depth=2,
                shed_policy="drop-oldest-expired",
                max_delay_ms=60_000.0,
            )
            stale = [
                asyncio.ensure_future(
                    server.submit(small_clustered[i], Knn(k=2), deadline_ms=1.0)
                )
                for i in range(2)
            ]
            await settle()
            await advance(clock, 0.002)  # both queued deadlines expire
            fresh = asyncio.ensure_future(
                server.submit(small_clustered[2], Knn(k=2), deadline_ms=50.0)
            )
            await settle()
            server.flush()
            outcomes = await asyncio.gather(*stale, fresh, return_exceptions=True)
            stats = server.stats()
            await server.close()
            return outcomes, stats, server.admission

        outcomes, stats, admission = asyncio.run(scenario())
        # The two expired entries were shed to admit the live arrival.
        assert isinstance(outcomes[0], DeadlineExceeded)
        assert isinstance(outcomes[1], DeadlineExceeded)
        assert len(outcomes[2]) == 2
        assert stats.requests_shed == 2
        assert stats.requests_rejected == 0
        assert [record.stage for record in admission.shed_log] == [
            "overflow",
            "overflow",
        ]

    def test_drop_oldest_expired_never_touches_live_requests(
        self, base_index, small_clustered
    ):
        async def scenario():
            clock = VirtualClock()
            server = make_server(
                base_index,
                clock,
                max_queue_depth=2,
                shed_policy="drop-oldest-expired",
                max_delay_ms=60_000.0,
            )
            queued = [
                asyncio.ensure_future(
                    server.submit(small_clustered[i], Knn(k=2), deadline_ms=1000.0)
                )
                for i in range(2)
            ]
            await settle()
            with pytest.raises(QueueFull):
                await server.submit(small_clustered[2], Knn(k=2), deadline_ms=1000.0)
            server.flush()
            results = await asyncio.gather(*queued)
            await server.close()
            return results, server.admission

        results, admission = asyncio.run(scenario())
        assert all(len(result) == 2 for result in results)
        assert admission.shed_log == []  # live deadlines were untouchable

    def test_rejects_bad_admission_args(self, base_index):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AsyncSearchServer(base_index, max_queue_depth=0)
        with pytest.raises(ValueError, match="shed_policy"):
            AsyncSearchServer(base_index, shed_policy="drop-everything")
        with pytest.raises(ValueError, match="shed_policy"):
            AdmissionControl(shed_policy="nope")


class TestPriorityLanes:
    def test_priorities_split_lanes_within_a_merge_key(
        self, base_index, small_clustered
    ):
        async def scenario():
            clock = VirtualClock()
            recording = RecordingIndex(base_index)
            server = make_server(recording, clock, max_delay_ms=60_000.0)
            pending = [
                asyncio.ensure_future(
                    server.submit(small_clustered[i], Knn(k=2), priority=i % 2)
                )
                for i in range(4)
            ]
            await settle()
            server.flush()
            await asyncio.gather(*pending)
            stats = server.stats()
            await server.close()
            return stats, recording

        stats, recording = asyncio.run(scenario())
        # Same spec, two priorities -> two lanes, two batches of two.
        assert stats.batches_served == 2
        assert [batch.shape[0] for batch in recording.batches] == [2, 2]

    def test_flush_drains_highest_priority_first(self, base_index, small_clustered):
        low_query, high_query = small_clustered[0], small_clustered[1]

        async def scenario():
            clock = VirtualClock()
            recording = RecordingIndex(base_index)
            server = make_server(recording, clock, max_delay_ms=60_000.0)
            low = asyncio.ensure_future(
                server.submit(low_query, Knn(k=2), priority=0)
            )
            high = asyncio.ensure_future(
                server.submit(high_query, Knn(k=2), priority=5)
            )
            await settle()
            server.flush()
            await asyncio.gather(low, high)
            await server.close()
            return recording

        recording = asyncio.run(scenario())
        # Submission order was low-then-high; execution order is
        # high-then-low: the priority lane cut the line.
        assert len(recording.batches) == 2
        np.testing.assert_array_equal(recording.batches[0][0], high_query)
        np.testing.assert_array_equal(recording.batches[1][0], low_query)

    def test_overflow_shed_scans_lowest_priority_first(
        self, base_index, small_clustered
    ):
        async def scenario():
            clock = VirtualClock()
            server = make_server(
                base_index,
                clock,
                max_queue_depth=2,
                shed_policy="drop-oldest-expired",
                max_delay_ms=60_000.0,
            )
            doomed_high = asyncio.ensure_future(
                server.submit(small_clustered[0], Knn(k=2), deadline_ms=1.0, priority=9)
            )
            doomed_low = asyncio.ensure_future(
                server.submit(small_clustered[1], Knn(k=2), deadline_ms=1.0, priority=0)
            )
            await settle()
            await advance(clock, 0.002)
            fresh = asyncio.ensure_future(
                server.submit(small_clustered[2], Knn(k=2), deadline_ms=50.0)
            )
            await settle()
            server.flush()
            await asyncio.gather(doomed_high, doomed_low, fresh, return_exceptions=True)
            await server.close()
            return server.admission

        admission = asyncio.run(scenario())
        # Both were expired; the scan ate the low-priority lane first.
        assert [record.priority for record in admission.shed_log] == [0, 9]


# --- the legitimacy property -------------------------------------------------

ARRIVALS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.01),  # inter-arrival gap (s)
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=20.0)),  # budget ms
        st.integers(min_value=0, max_value=2),  # priority
    ),
    min_size=1,
    max_size=12,
)


class TestNeverShedsSatisfiable:
    @settings(max_examples=25, deadline=None)
    @given(trace=ARRIVALS, policy=st.sampled_from(AdmissionControl.POLICIES))
    def test_only_expired_requests_are_ever_shed(self, trace, policy):
        """Over arbitrary arrival traces, budgets and shed policies:
        every shed carries the evidence ``deadline < now``, sheds and
        rejections account exactly for the non-answered requests, and a
        deadline-free request is always answered."""
        data = np.random.default_rng(0).normal(size=(40, 8))
        index = create_index("exact").fit(data)

        async def scenario():
            clock = VirtualClock()
            server = make_server(
                index,
                clock,
                max_batch=4,
                max_delay_ms=5.0,
                max_queue_depth=6,
                shed_policy=policy,
            )
            at = 0.0
            arrivals = []
            for i, (gap, budget_ms, priority) in enumerate(trace):
                at += gap
                arrivals.append((at, data[i % 40], budget_ms, priority))
            outcomes = await run_trace(server, clock, arrivals, Knn(k=2))
            await server.close()
            return outcomes, server.admission

        outcomes, admission = asyncio.run(scenario())
        shed = [o for o in outcomes if isinstance(o, DeadlineExceeded)]
        rejected = [o for o in outcomes if isinstance(o, QueueFull)]
        answered = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(shed) + len(rejected) + len(answered) == len(trace)
        # Every shed was legitimate: its deadline was strictly behind
        # the clock at decision time, and each is logged with evidence.
        assert len(admission.shed_log) == len(shed)
        for record in admission.shed_log:
            assert record.deadline < record.now
            assert record.late_ms > 0.0
        # No deadline-free request is ever shed on deadline grounds.
        for (_, budget_ms, _), outcome in zip(trace, outcomes):
            if budget_ms is None:
                assert not isinstance(outcome, DeadlineExceeded)
