"""Tests for MBR geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.rtree.geometry import MBR


class TestConstruction:
    def test_from_point(self):
        rect = MBR.from_point(np.array([1.0, 2.0]))
        assert rect.volume() == 0.0
        assert rect.contains_point(np.array([1.0, 2.0]))

    def test_from_points(self):
        points = np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        rect = MBR.from_points(points)
        np.testing.assert_array_equal(rect.lo, [0.0, 1.0])
        np.testing.assert_array_equal(rect.hi, [2.0, 5.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            MBR(np.array([1.0]), np.array([0.0]))

    def test_union(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        union = MBR.union_of([a, b])
        np.testing.assert_array_equal(union.lo, [0.0, -1.0])
        np.testing.assert_array_equal(union.hi, [3.0, 1.0])

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR.union_of([])


class TestMeasures:
    def test_volume_and_margin(self):
        rect = MBR(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert rect.volume() == 6.0
        assert rect.margin() == 5.0

    def test_center(self):
        rect = MBR(np.array([0.0, 2.0]), np.array([4.0, 4.0]))
        np.testing.assert_array_equal(rect.center(), [2.0, 3.0])

    def test_enlargement(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, 0.0]), np.array([3.0, 1.0]))
        assert a.enlargement(b) == pytest.approx(3.0 - 1.0)

    def test_extend(self):
        rect = MBR(np.array([0.0]), np.array([1.0]))
        rect.extend_point(np.array([5.0]))
        assert rect.hi[0] == 5.0
        rect.extend(MBR(np.array([-2.0]), np.array([0.0])))
        assert rect.lo[0] == -2.0


class TestBallGeometry:
    def test_min_distance_inside_is_zero(self):
        rect = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        assert rect.min_distance(np.array([1.0, 1.0])) == 0.0

    def test_min_distance_outside(self):
        rect = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert rect.min_distance(np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_max_distance(self):
        rect = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert rect.max_distance(np.array([0.0, 0.0])) == pytest.approx(np.sqrt(2.0))

    def test_intersects_ball(self):
        rect = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert rect.intersects_ball(np.array([2.0, 0.5]), 1.0)
        assert not rect.intersects_ball(np.array([3.0, 0.5]), 1.0)

    def test_intersects(self):
        a = MBR(np.array([0.0]), np.array([2.0]))
        b = MBR(np.array([1.0]), np.array([3.0]))
        c = MBR(np.array([2.5]), np.array([4.0]))
        assert a.intersects(b)
        assert not a.intersects(c)

    @given(
        arrays(np.float64, 4, elements=st.floats(-50, 50)),
        arrays(np.float64, 8, elements=st.floats(-50, 50)),
    )
    @settings(max_examples=50)
    def test_min_max_bound_actual_distances(self, query, corners):
        """MINDIST <= distance to any contained point <= MAXDIST."""
        points = corners.reshape(2, 4)
        rect = MBR.from_points(points)
        inner = points.mean(axis=0)
        dist = float(np.linalg.norm(inner - query))
        assert rect.min_distance(query) <= dist + 1e-9
        assert rect.max_distance(query) >= dist - 1e-9
