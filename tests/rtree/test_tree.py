"""Unit and property tests for the R-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.tree import RTree


@pytest.fixture(scope="module", params=["str", "insert"])
def built_tree(request, projected_points):
    return RTree.build(projected_points, capacity=16, method=request.param)


def brute_range(points, query, radius):
    dists = np.linalg.norm(points - query, axis=1)
    return {int(i) for i in np.flatnonzero(dists <= radius)}


class TestConstruction:
    def test_capacity_floor(self, projected_points):
        with pytest.raises(ValueError):
            RTree(projected_points, capacity=2)

    def test_unknown_method(self, projected_points):
        with pytest.raises(ValueError):
            RTree.build(projected_points, method="magic")

    def test_all_points_indexed(self, built_tree, projected_points):
        assert len(built_tree) == projected_points.shape[0]
        built_tree.check_invariants()

    def test_single_point(self):
        tree = RTree.build(np.zeros((1, 4)), capacity=4)
        assert len(tree) == 1
        assert tree.range_query(np.zeros(4), 0.1) == [(0, 0.0)]

    def test_insert_out_of_range(self, projected_points):
        tree = RTree(projected_points, capacity=8)
        with pytest.raises(IndexError):
            tree.insert(projected_points.shape[0])


class TestRangeQuery:
    def test_matches_brute_force(self, built_tree, projected_points):
        rng = np.random.default_rng(0)
        for _ in range(10):
            query = projected_points[rng.integers(0, len(projected_points))] + 0.1
            radius = float(rng.uniform(0.5, 6.0))
            got = {pid for pid, _ in built_tree.range_query(query, radius)}
            assert got == brute_range(projected_points, query, radius)

    def test_distances_are_exact(self, built_tree, projected_points):
        query = projected_points[5] + 0.05
        for pid, dist in built_tree.range_query(query, 3.0):
            assert dist == pytest.approx(
                float(np.linalg.norm(projected_points[pid] - query)), rel=1e-9
            )

    def test_zero_radius(self, built_tree, projected_points):
        query = projected_points[17].copy()
        got = built_tree.range_query(query, 0.0)
        assert any(pid == 17 for pid, _ in got)

    def test_negative_radius_rejected(self, built_tree):
        with pytest.raises(ValueError):
            built_tree.range_query(np.zeros(15), -1.0)

    def test_limit_returns_closest(self, built_tree, projected_points):
        """A limited range query must return the closest in-ball points."""
        query = projected_points[3] + 0.2
        full_dists = np.sort(np.linalg.norm(projected_points - query, axis=1))
        radius = float(full_dists[60])  # ball holds ~60 points
        limited = built_tree.range_query(query, radius, limit=20)
        assert len(limited) == 20
        got_dists = np.array([d for _, d in limited])
        np.testing.assert_allclose(got_dists, full_dists[:20], rtol=1e-9)


class TestNearestIter:
    def test_yields_sorted(self, built_tree, projected_points):
        query = projected_points[0] + 0.3
        dists = [d for _, d in zip(range(50), built_tree.nearest_iter(query))]
        dists = [d for _, d in built_tree.knn(query, 50)]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))

    def test_matches_brute_force_order(self, built_tree, projected_points):
        query = projected_points[42] + 0.1
        expected = np.argsort(np.linalg.norm(projected_points - query, axis=1))[:25]
        got = [pid for pid, _ in built_tree.knn(query, 25)]
        assert set(got) == set(int(i) for i in expected)

    def test_full_drain(self, built_tree, projected_points):
        query = np.zeros(projected_points.shape[1])
        seen = [pid for pid, _ in built_tree.nearest_iter(query)]
        assert len(seen) == len(projected_points)
        assert len(set(seen)) == len(seen)

    def test_knn_rejects_bad_k(self, built_tree):
        with pytest.raises(ValueError):
            built_tree.knn(np.zeros(15), 0)


class TestKnnWithin:
    def test_respects_radius(self, built_tree, projected_points):
        query = projected_points[9]
        got = built_tree.knn_within(query, k=100, radius=2.0)
        assert all(d <= 2.0 for _, d in got)

    def test_matches_knn_at_infinite_radius(self, built_tree, projected_points):
        query = projected_points[10] + 0.05
        a = built_tree.knn_within(query, k=12)
        b = built_tree.knn(query, 12)
        assert [pid for pid, _ in a] == [pid for pid, _ in b]

    def test_exclude(self, built_tree, projected_points):
        query = projected_points[4] + 0.01
        base = built_tree.knn_within(query, k=5)
        excluded = {base[0][0]}
        redo = built_tree.knn_within(query, k=5, exclude=excluded)
        assert base[0][0] not in {pid for pid, _ in redo}


class TestCounters:
    def test_counters_accumulate_and_reset(self, built_tree):
        built_tree.reset_counters()
        built_tree.range_query(np.zeros(15), 5.0)
        assert built_tree.node_accesses > 0
        assert built_tree.distance_computations > 0
        built_tree.reset_counters()
        assert built_tree.node_accesses == 0
        assert built_tree.distance_computations == 0


class TestInsertPath:
    @given(st.integers(min_value=5, max_value=120), st.integers(min_value=0, max_value=999))
    @settings(max_examples=20, deadline=None)
    def test_incremental_inserts_stay_valid(self, count, seed):
        points = np.random.default_rng(seed).normal(size=(count, 6))
        tree = RTree.build(points, capacity=4, method="insert")
        tree.check_invariants()
        query = points[0]
        got = {pid for pid, _ in tree.range_query(query, 1.5)}
        assert got == brute_range(points, query, 1.5)

    def test_duplicate_points(self):
        points = np.zeros((40, 3))
        tree = RTree.build(points, capacity=4, method="insert")
        tree.check_invariants()
        assert len(tree.range_query(np.zeros(3), 0.0)) == 40
