"""Property-based tests: the R-tree is exact for range and kNN queries
regardless of data distribution, build path or capacity."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.tree import RTree


@st.composite
def point_cloud(draw):
    n = draw(st.integers(min_value=2, max_value=100))
    dim = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    kind = draw(st.sampled_from(["normal", "lattice"]))
    rng = np.random.default_rng(seed)
    if kind == "normal":
        return rng.normal(size=(n, dim)) * draw(st.sampled_from([0.5, 5.0]))
    return rng.integers(-3, 4, size=(n, dim)).astype(np.float64)


@given(
    point_cloud(),
    st.sampled_from(["str", "insert"]),
    st.integers(min_value=4, max_value=16),
    st.floats(min_value=0.0, max_value=8.0),
)
@settings(max_examples=40, deadline=None)
def test_range_query_is_exact(points, method, capacity, radius):
    tree = RTree.build(points, capacity=capacity, method=method)
    tree.check_invariants()
    query = points[0] + 0.3
    got = sorted(pid for pid, _ in tree.range_query(query, radius))
    dists = np.linalg.norm(points - query, axis=1)
    expected = sorted(int(i) for i in np.flatnonzero(dists <= radius))
    assert got == expected


@given(point_cloud(), st.integers(min_value=1, max_value=12))
@settings(max_examples=40, deadline=None)
def test_knn_is_exact(points, k):
    k = min(k, points.shape[0])
    tree = RTree.build(points, capacity=8, method="str")
    query = points[-1] * 0.5
    got = tree.knn(query, k)
    assert len(got) == k
    dists = np.sort(np.linalg.norm(points - query, axis=1))
    got_dists = np.array([d for _, d in got])
    np.testing.assert_allclose(got_dists, dists[:k], rtol=1e-9, atol=1e-9)


@given(
    point_cloud(),
    st.integers(min_value=1, max_value=25),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=40, deadline=None)
def test_knn_within_returns_closest_in_ball(points, limit, radius):
    tree = RTree.build(points, capacity=8, method="str")
    query = points[0] + 0.1
    got = tree.knn_within(query, k=limit, radius=radius)
    dists = np.sort(np.linalg.norm(points - query, axis=1))
    in_ball = dists[dists <= radius]
    expected_count = min(limit, in_ball.size)
    assert len(got) == expected_count
    got_dists = np.array([d for _, d in got])
    np.testing.assert_allclose(got_dists, in_ball[:expected_count], rtol=1e-9, atol=1e-9)


@given(point_cloud())
@settings(max_examples=25, deadline=None)
def test_nearest_iter_is_globally_sorted(points):
    tree = RTree.build(points, capacity=8, method="str")
    query = points[0] * 0.25
    dists = [d for _, d in tree.nearest_iter(query)]
    assert len(dists) == points.shape[0]
    assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))
