"""Tests for PM-tree split policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.distance import pairwise_distances
from repro.pmtree.split import (
    partition_members,
    promote_mm_rad,
    promote_random,
)


def random_matrix(k, seed=0):
    points = np.random.default_rng(seed).normal(size=(k, 4))
    return pairwise_distances(points)


class TestPromotion:
    def test_mm_rad_returns_distinct_pair(self):
        matrix = random_matrix(10)
        i, j = promote_mm_rad(matrix)
        assert i != j
        assert 0 <= i < 10 and 0 <= j < 10

    def test_random_returns_distinct_pair(self):
        matrix = random_matrix(8)
        i, j = promote_random(matrix, seed=1)
        assert i != j

    def test_mm_rad_beats_worst_pair(self):
        """The chosen pair's max covering radius must be no worse than an
        arbitrary pair's."""
        matrix = random_matrix(12, seed=3)

        def score(pair):
            group_a, group_b = partition_members(matrix, *pair)
            radius_a = matrix[pair[0], group_a].max()
            radius_b = matrix[pair[1], group_b].max()
            return max(radius_a, radius_b)

        best = score(promote_mm_rad(matrix))
        others = [score((i, j)) for i in range(12) for j in range(i + 1, 12)]
        assert best <= min(others) + 1e-9

    def test_rejects_tiny_matrix(self):
        with pytest.raises(ValueError):
            promote_mm_rad(np.zeros((1, 1)))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            promote_mm_rad(np.zeros((3, 4)))

    def test_large_matrix_uses_sampling(self):
        matrix = random_matrix(80, seed=5)
        i, j = promote_mm_rad(matrix, seed=0)
        assert i != j


class TestPartition:
    def test_balanced_sizes_differ_by_at_most_one(self):
        matrix = random_matrix(15)
        group_a, group_b = partition_members(matrix, 0, 1, method="balanced")
        assert abs(len(group_a) - len(group_b)) <= 1
        assert sorted(group_a + group_b) == list(range(15))

    def test_hyperplane_assigns_to_nearest(self):
        matrix = random_matrix(12, seed=2)
        group_a, group_b = partition_members(matrix, 0, 1, method="hyperplane")
        for member in group_a[1:]:
            assert matrix[member, 0] <= matrix[member, 1]
        for member in group_b[1:]:
            assert matrix[member, 1] < matrix[member, 0]

    def test_promoted_lead_groups(self):
        matrix = random_matrix(9)
        group_a, group_b = partition_members(matrix, 2, 7)
        assert group_a[0] == 2
        assert group_b[0] == 7

    def test_same_promoted_rejected(self):
        matrix = random_matrix(5)
        with pytest.raises(ValueError):
            partition_members(matrix, 1, 1)

    def test_unknown_method(self):
        matrix = random_matrix(5)
        with pytest.raises(ValueError):
            partition_members(matrix, 0, 1, method="zigzag")

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_partition_is_exhaustive_and_disjoint(self, k, seed):
        matrix = random_matrix(k, seed=seed)
        rng = np.random.default_rng(seed)
        a, b = rng.choice(k, size=2, replace=False)
        for method in ("balanced", "hyperplane"):
            group_a, group_b = partition_members(matrix, int(a), int(b), method=method)
            assert sorted(group_a + group_b) == list(range(k))
            assert not set(group_a) & set(group_b)
