"""Property-based tests: the PM-tree is exact for range and kNN queries
regardless of data distribution, build path, capacity or pivot count."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmtree.tree import PMTree
from repro.pmtree.validate import check_invariants


@st.composite
def point_cloud(draw):
    n = draw(st.integers(min_value=5, max_value=120))
    dim = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    scale = draw(st.sampled_from([0.1, 1.0, 25.0]))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["normal", "uniform", "lattice"]))
    if kind == "normal":
        points = rng.normal(size=(n, dim)) * scale
    elif kind == "uniform":
        points = rng.uniform(-scale, scale, size=(n, dim))
    else:
        # Integer lattice: many exact duplicates and ties.
        points = rng.integers(-3, 4, size=(n, dim)).astype(np.float64)
    return points


@given(
    point_cloud(),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=4, max_value=16),
    st.sampled_from(["bulk", "insert"]),
    st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=40, deadline=None)
def test_range_query_is_exact(points, num_pivots, capacity, method, radius):
    num_pivots = min(num_pivots, points.shape[0])
    tree = PMTree.build(
        points, num_pivots=num_pivots, capacity=capacity, method=method, seed=0
    )
    check_invariants(tree)
    query = points[0] + 0.25
    got = sorted(pid for pid, _ in tree.range_query(query, radius))
    dists = np.linalg.norm(points - query, axis=1)
    expected = sorted(int(i) for i in np.flatnonzero(dists <= radius))
    assert got == expected


@given(
    point_cloud(),
    st.integers(min_value=1, max_value=15),
    st.sampled_from(["bulk", "insert"]),
)
@settings(max_examples=40, deadline=None)
def test_knn_is_exact(points, k, method):
    k = min(k, points.shape[0])
    tree = PMTree.build(points, num_pivots=2 if len(points) >= 2 else 0,
                        capacity=8, method=method, seed=1)
    query = points[-1] + 0.1
    got = tree.knn(query, k)
    assert len(got) == k
    dists = np.linalg.norm(points - query, axis=1)
    kth = np.sort(dists)[k - 1]
    # Distance multiset must match (ids may differ on ties).
    got_dists = np.array([d for _, d in got])
    np.testing.assert_allclose(got_dists, np.sort(dists)[:k], rtol=1e-9, atol=1e-9)
    assert got_dists.max() <= kth + 1e-9


@given(
    point_cloud(),
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.1, max_value=20.0),
)
@settings(max_examples=40, deadline=None)
def test_limited_range_returns_closest_prefix(points, limit, radius):
    tree = PMTree.build(points, num_pivots=min(3, len(points)), capacity=8, seed=2)
    query = points[0] * 0.5
    got = tree.range_query(query, radius, limit=limit)
    dists = np.sort(np.linalg.norm(points - query, axis=1))
    in_ball = dists[dists <= radius]
    expected_count = min(limit, in_ball.size)
    assert len(got) == expected_count
    got_dists = np.array([d for _, d in got])
    np.testing.assert_allclose(got_dists, in_ball[:expected_count], rtol=1e-9, atol=1e-9)


@given(point_cloud(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_insert_preserves_invariants_under_shuffles(points, seed):
    order = np.random.default_rng(seed).permutation(points.shape[0])
    tree = PMTree(points, num_pivots=min(2, len(points)), capacity=4, seed=0)
    for point_id in order:
        tree.insert(int(point_id))
    check_invariants(tree)
    assert len(tree) == points.shape[0]
