"""Flatten round-trip and flat-vs-recursive traversal equivalence.

Two families of guarantees:

* ``flatten()`` is a faithful snapshot — every routing entry (radius,
  parent distance, hyper-rings, child), every leaf membership and every
  parent distance of the pointer tree reappears in the packed arrays;
* the batched level-synchronous traversal is *observationally identical*
  to the recursive one: same result sets with the same floats, and the
  same node-access / distance-computation counters on plain range
  queries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmtree.tree import PMTree


@st.composite
def point_cloud(draw):
    n = draw(st.integers(min_value=5, max_value=150))
    dim = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["normal", "lattice"]))
    if kind == "normal":
        points = rng.normal(size=(n, dim)) * draw(st.sampled_from([0.5, 5.0]))
    else:
        # Integer lattice: many exact duplicates and distance ties.
        points = rng.integers(-3, 4, size=(n, dim)).astype(np.float64)
    return points


def _walk_pairs(tree):
    """(pointer node, BFS id) pairs in the flat tree's breadth-first order."""
    flat_order = [tree.root]
    frontier = [tree.root]
    while frontier:
        nxt = [
            entry.child
            for node in frontier
            if not node.is_leaf
            for entry in node.entries
        ]
        flat_order.extend(nxt)
        frontier = nxt
    return list(enumerate(flat_order))


@given(
    point_cloud(),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=4, max_value=16),
    st.sampled_from(["bulk", "insert"]),
)
@settings(max_examples=30, deadline=None)
def test_flatten_round_trips_the_pointer_tree(points, num_pivots, capacity, method):
    num_pivots = min(num_pivots, points.shape[0])
    tree = PMTree.build(
        points, num_pivots=num_pivots, capacity=capacity, method=method, seed=0
    )
    flat = tree.flatten()
    assert len(flat) == len(tree)
    assert flat.height == tree.height()
    pairs = _walk_pairs(tree)
    assert flat.num_nodes == len(pairs)
    entry_cursor = {}
    for node_id, node in pairs:
        assert bool(flat.is_leaf[node_id]) == node.is_leaf
        lo, hi = int(flat.span_start[node_id]), int(flat.span_end[node_id])
        if node.is_leaf:
            np.testing.assert_array_equal(flat.leaf_ids[lo:hi], node.ids_array)
            np.testing.assert_array_equal(flat.leaf_pd[lo:hi], node.pd_array)
        else:
            assert hi - lo == len(node.entries)
            np.testing.assert_array_equal(flat.entry_center[lo:hi], node.centers)
            np.testing.assert_array_equal(flat.entry_radius[lo:hi], node.radii)
            np.testing.assert_array_equal(flat.entry_pd[lo:hi], node.pds)
            if tree.num_pivots:
                np.testing.assert_array_equal(flat.entry_hr_min[lo:hi], node.hr_min)
                np.testing.assert_array_equal(flat.entry_hr_max[lo:hi], node.hr_max)
            entry_cursor[node_id] = (lo, hi)
    # Child pointers resolve to the children's BFS ids, in entry order.
    id_of = {id(node): node_id for node_id, node in pairs}
    for node_id, node in pairs:
        if node.is_leaf:
            continue
        lo, hi = entry_cursor[node_id]
        expected = [id_of[id(entry.child)] for entry in node.entries]
        np.testing.assert_array_equal(flat.entry_child[lo:hi], expected)
    # Every indexed point appears exactly once in the packed leaf array.
    assert sorted(flat.leaf_ids.tolist()) == sorted(
        pid for _, node in pairs if node.is_leaf for pid in node.ids
    )


@given(
    point_cloud(),
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["bulk", "insert"]),
    st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=30, deadline=None)
def test_flat_range_matches_recursive_results_and_counters(
    points, num_pivots, method, radius
):
    """Same matches, same floats, same node-visit and distance counters."""
    num_pivots = min(num_pivots, points.shape[0])
    tree = PMTree.build(
        points, num_pivots=num_pivots, capacity=8, method=method, seed=1
    )
    flat = tree.flatten()
    queries = np.stack([points[0] + 0.25, points[-1] * 0.5, points[0] - 1.0])
    tree.reset_counters()
    flat.reset_counters()
    lims, ids, dists, stats = flat.batch_range(queries, radius)
    for i, q in enumerate(queries):
        expected = sorted((d, pid) for pid, d in tree.range_query(q, radius))
        got = list(
            zip(dists[lims[i] : lims[i + 1]], ids[lims[i] : lims[i + 1]])
        )
        assert len(got) == len(expected)
        for (exp_d, exp_id), (got_d, got_id) in zip(expected, got):
            assert exp_id == got_id
            assert exp_d == got_d  # bit-identical kernels
    assert flat.node_accesses == tree.node_accesses
    assert flat.distance_computations == tree.distance_computations
    # The per-level counters sum to the node-access total.
    assert int(stats.level_visits.sum()) == flat.node_accesses
    assert int(stats.nodes.sum()) == flat.node_accesses
    assert int(stats.dist_comps.sum()) == flat.distance_computations


class TestCappedAndAnnulusFetch:
    @pytest.fixture(scope="class")
    def built(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(600, 6))
        tree = PMTree.build(points, num_pivots=3, capacity=16, seed=4)
        return points, tree, tree.flatten()

    def test_limits_keep_the_closest_prefix(self, built):
        points, tree, flat = built
        queries = points[:5] + 0.1
        radius, limit = 2.0, 7
        lims, ids, dists, _ = flat.batch_range(
            queries, radius, limits=np.full(5, limit, dtype=np.int64)
        )
        for i, q in enumerate(queries):
            expected = tree.range_query(q, radius, limit=limit)
            got_ids = ids[lims[i] : lims[i + 1]]
            assert got_ids.size == len(expected)
            assert set(got_ids.tolist()) == {pid for pid, _ in expected}
            # ascending projected distance, capped at the limit
            assert np.all(np.diff(dists[lims[i] : lims[i + 1]]) >= 0)

    def test_annulus_excludes_the_inner_ball(self, built):
        points, tree, flat = built
        queries = points[:4] - 0.2
        inner, outer = 1.0, 2.5
        lims_o, ids_o, dists_o, _ = flat.batch_range(queries, outer, lower=inner)
        lims_i, ids_i, _, _ = flat.batch_range(queries, inner)
        lims_f, ids_f, _, _ = flat.batch_range(queries, outer)
        for i in range(4):
            annulus = set(ids_o[lims_o[i] : lims_o[i + 1]].tolist())
            ball_inner = set(ids_i[lims_i[i] : lims_i[i + 1]].tolist())
            ball_outer = set(ids_f[lims_f[i] : lims_f[i + 1]].tolist())
            assert annulus == ball_outer - ball_inner
            assert np.all(dists_o[lims_o[i] : lims_o[i + 1]] > inner)

    def test_batch_knn_is_exact_with_canonical_ties(self, built):
        points, _, flat = built
        queries = points[10:16] * 0.9
        ids, dists = flat.batch_knn(queries, 9)
        diff = points[None, :, :] - queries[:, None, :]
        truth = np.sqrt(np.einsum("qij,qij->qi", diff, diff))
        for i in range(queries.shape[0]):
            order = np.lexsort((np.arange(points.shape[0]), truth[i]))[:9]
            np.testing.assert_array_equal(ids[i], order)
            np.testing.assert_array_equal(dists[i], truth[i][order])

    def test_flatten_empty_tree_rejected(self):
        tree = PMTree(np.zeros((1, 3)), num_pivots=0)
        with pytest.raises(ValueError):
            tree.flatten()

    def test_flatten_single_leaf_root(self):
        points = np.random.default_rng(0).normal(size=(5, 3))
        tree = PMTree.build(points, num_pivots=2, capacity=8, seed=0)
        flat = tree.flatten()
        assert flat.height == 1
        lims, ids, _, _ = flat.batch_range(points[:2], 10.0)
        assert np.all(np.diff(lims) == 5)
        assert len(flat) == 5
