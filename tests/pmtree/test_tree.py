"""Unit tests for the PM-tree: construction, range queries, kNN, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pmtree.tree import PMTree
from repro.pmtree.validate import check_invariants


@pytest.fixture(scope="module", params=["bulk", "insert"])
def built_tree(request, projected_points):
    return PMTree.build(
        projected_points, num_pivots=5, capacity=16, method=request.param, seed=9
    )


def brute_range(points, query, radius):
    dists = np.linalg.norm(points - query, axis=1)
    return {int(i) for i in np.flatnonzero(dists <= radius)}


class TestConstruction:
    def test_counts(self, built_tree, projected_points):
        assert len(built_tree) == projected_points.shape[0]

    def test_invariants(self, built_tree):
        check_invariants(built_tree)

    def test_capacity_floor(self, projected_points):
        with pytest.raises(ValueError):
            PMTree(projected_points, capacity=2)

    def test_unknown_build_method(self, projected_points):
        with pytest.raises(ValueError):
            PMTree.build(projected_points, method="osmosis")

    def test_unknown_promotion(self, projected_points):
        with pytest.raises(ValueError):
            PMTree(projected_points, split_promotion="best")

    def test_zero_pivots_is_mtree(self, projected_points):
        tree = PMTree.build(projected_points, num_pivots=0, capacity=16, seed=0)
        check_invariants(tree)
        query = projected_points[0]
        got = {pid for pid, _ in tree.range_query(query, 3.0)}
        assert got == brute_range(projected_points, query, 3.0)

    def test_single_point(self):
        tree = PMTree.build(np.ones((1, 4)), num_pivots=1, capacity=4, seed=0)
        assert tree.range_query(np.ones(4), 0.1) == [(0, 0.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PMTree(np.empty((0, 3)))

    def test_insert_out_of_range(self, projected_points):
        tree = PMTree(projected_points, capacity=8, seed=0)
        with pytest.raises(IndexError):
            tree.insert(projected_points.shape[0] + 5)

    def test_height_grows(self, projected_points):
        tree = PMTree.build(projected_points, capacity=8, method="bulk", seed=0)
        assert tree.height() >= 2


class TestRangeQuery:
    def test_matches_brute_force(self, built_tree, projected_points):
        rng = np.random.default_rng(1)
        for _ in range(10):
            query = projected_points[rng.integers(0, len(projected_points))] + 0.1
            radius = float(rng.uniform(0.5, 6.0))
            got = {pid for pid, _ in built_tree.range_query(query, radius)}
            assert got == brute_range(projected_points, query, radius)

    def test_distances_exact(self, built_tree, projected_points):
        query = projected_points[7] + 0.05
        for pid, dist in built_tree.range_query(query, 3.0):
            assert dist == pytest.approx(
                float(np.linalg.norm(projected_points[pid] - query)), rel=1e-9
            )

    def test_negative_radius(self, built_tree):
        with pytest.raises(ValueError):
            built_tree.range_query(np.zeros(15), -0.1)

    def test_limit_returns_closest(self, built_tree, projected_points):
        query = projected_points[3] + 0.2
        all_dists = np.sort(np.linalg.norm(projected_points - query, axis=1))
        radius = float(all_dists[70])  # ball holds ~70 points
        limited = built_tree.range_query(query, radius, limit=25)
        assert len(limited) == 25
        got = np.array([d for _, d in limited])
        np.testing.assert_allclose(got, all_dists[:25], rtol=1e-9)

    def test_limit_zero(self, built_tree):
        assert built_tree.range_query(np.zeros(15), 5.0, limit=0) == []

    def test_exclude_skips_ids(self, built_tree, projected_points):
        query = projected_points[11]
        base = built_tree.range_query(query, 4.0, limit=10)
        excluded = {pid for pid, _ in base[:3]}
        redo = built_tree.range_query(query, 4.0, limit=10, exclude=excluded)
        assert not excluded & {pid for pid, _ in redo}

    def test_pruning_ablation_same_results(self, projected_points):
        """Rings and parent filter must never change results, only cost."""
        query = projected_points[2] + 0.3
        baseline = None
        for rings in (True, False):
            for parent in (True, False):
                tree = PMTree.build(
                    projected_points, num_pivots=4, capacity=16,
                    use_rings=rings, use_parent_filter=parent, seed=3,
                )
                got = sorted(pid for pid, _ in tree.range_query(query, 4.0))
                if baseline is None:
                    baseline = got
                assert got == baseline

    def test_rings_reduce_distance_computations(self, projected_points):
        query = projected_points[2] + 0.3
        with_rings = PMTree.build(
            projected_points, num_pivots=5, capacity=16, use_rings=True, seed=3
        )
        without = PMTree.build(
            projected_points, num_pivots=5, capacity=16, use_rings=False, seed=3
        )
        with_rings.range_query(query, 2.0)
        without.range_query(query, 2.0)
        assert with_rings.distance_computations <= without.distance_computations


class TestKnn:
    def test_matches_brute_force(self, built_tree, projected_points):
        rng = np.random.default_rng(4)
        for _ in range(5):
            query = projected_points[rng.integers(0, len(projected_points))] + 0.2
            got = built_tree.knn(query, 10)
            exact = np.argsort(np.linalg.norm(projected_points - query, axis=1))[:10]
            assert {pid for pid, _ in got} == {int(i) for i in exact}

    def test_sorted_ascending(self, built_tree, projected_points):
        dists = [d for _, d in built_tree.knn(projected_points[0] + 0.1, 20)]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))

    def test_k_larger_than_n_capped(self, projected_points):
        tree = PMTree.build(projected_points[:30], capacity=8, seed=0)
        got = tree.knn(projected_points[0], 30)
        assert len(got) == 30

    def test_rejects_bad_k(self, built_tree):
        with pytest.raises(ValueError):
            built_tree.knn(np.zeros(15), 0)


class TestKnnWithin:
    def test_radius_respected(self, built_tree, projected_points):
        got = built_tree.knn_within(projected_points[9], k=50, radius=2.0)
        assert all(d <= 2.0 for _, d in got)

    def test_equals_range_intersection(self, built_tree, projected_points):
        query = projected_points[21] + 0.1
        within = built_tree.knn_within(query, k=15, radius=3.0)
        in_ball = sorted(built_tree.range_query(query, 3.0), key=lambda p: p[1])
        assert [pid for pid, _ in within] == [pid for pid, _ in in_ball[:15]]


class TestCounters:
    def test_accumulate_and_reset(self, built_tree):
        built_tree.reset_counters()
        built_tree.range_query(np.zeros(15), 5.0)
        assert built_tree.node_accesses > 0
        assert built_tree.distance_computations > 0
        built_tree.reset_counters()
        assert built_tree.node_accesses == 0

    def test_iter_nodes_covers_tree(self, built_tree, projected_points):
        leaf_points = sum(
            len(node) for _, node in built_tree.iter_nodes() if node.is_leaf
        )
        assert leaf_points == projected_points.shape[0]

    def test_iter_entries_nonempty(self, built_tree):
        assert sum(1 for _ in built_tree.iter_entries()) > 0
