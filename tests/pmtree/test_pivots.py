"""Tests for pivot selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.distance import pairwise_distances
from repro.pmtree.pivots import select_pivots


class TestSelectPivots:
    @pytest.mark.parametrize("method", ["maxsep", "random", "variance"])
    def test_shape(self, projected_points, method):
        pivots = select_pivots(projected_points, 5, method=method, seed=0)
        assert pivots.shape == (5, projected_points.shape[1])

    def test_zero_pivots(self, projected_points):
        pivots = select_pivots(projected_points, 0, seed=0)
        assert pivots.shape == (0, projected_points.shape[1])

    def test_too_many_pivots(self):
        with pytest.raises(ValueError):
            select_pivots(np.zeros((3, 2)), 4)

    def test_unknown_method(self, projected_points):
        with pytest.raises(ValueError):
            select_pivots(projected_points, 2, method="mystery")

    def test_negative_count(self, projected_points):
        with pytest.raises(ValueError):
            select_pivots(projected_points, -1)

    def test_deterministic(self, projected_points):
        a = select_pivots(projected_points, 4, seed=11)
        b = select_pivots(projected_points, 4, seed=11)
        np.testing.assert_array_equal(a, b)

    def test_pivots_are_dataset_points(self, projected_points):
        pivots = select_pivots(projected_points, 3, seed=0)
        for pivot in pivots:
            assert np.any(np.all(np.isclose(projected_points, pivot), axis=1))

    def test_maxsep_spreads_more_than_random(self, projected_points):
        """Farthest-first pivots should be at least as separated as random
        ones on average (that is the point of the heuristic)."""
        def min_separation(pivots):
            matrix = pairwise_distances(pivots)
            np.fill_diagonal(matrix, np.inf)
            return matrix.min()

        maxsep_scores = [
            min_separation(select_pivots(projected_points, 5, method="maxsep", seed=s))
            for s in range(5)
        ]
        random_scores = [
            min_separation(select_pivots(projected_points, 5, method="random", seed=s))
            for s in range(5)
        ]
        assert np.mean(maxsep_scores) > np.mean(random_scores)

    def test_sample_size_respected(self, projected_points):
        pivots = select_pivots(projected_points, 3, sample_size=10, seed=0)
        assert pivots.shape == (3, projected_points.shape[1])
