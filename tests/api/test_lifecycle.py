"""Tests for the fit/add/search lifecycle and the legacy deprecation shim."""

from __future__ import annotations

import numpy as np
import pytest

from repro import E2LSH, LinearScan, PMLSH, PMLSHParams, QALSH, create_index
from repro.baselines.qalsh import derive_parameters


class TestFit:
    def test_fit_returns_self_and_builds(self, tiny_uniform):
        index = PMLSH(seed=0)
        assert not index.is_built
        assert index.fit(tiny_uniform) is index
        assert index.is_built
        assert index.n == tiny_uniform.shape[0]

    def test_properties_raise_before_fit(self):
        index = PMLSH(seed=0)
        with pytest.raises(RuntimeError):
            index.n
        with pytest.raises(RuntimeError):
            index.d

    def test_query_before_fit_raises(self, tiny_uniform):
        index = PMLSH(seed=0)
        with pytest.raises(RuntimeError):
            index.query(tiny_uniform[0], 1)
        with pytest.raises(RuntimeError):
            index.search(tiny_uniform[:2], 1)

    def test_refit_recalibrates_bucket_width(self, tiny_uniform):
        """Width-calibrating algorithms must re-tune w when fit() rebinds a
        dataset at a different scale (an explicit w stays pinned)."""
        from repro import MultiProbeLSH

        index = MultiProbeLSH(seed=0).fit(tiny_uniform)
        w_small = index.w
        index.fit(tiny_uniform * 1000.0)
        assert index.w > 100.0 * w_small
        pinned = MultiProbeLSH(w=12.0, seed=0).fit(tiny_uniform)
        pinned.fit(tiny_uniform * 1000.0)
        assert pinned.w == 12.0

    def test_refit_rebinds_dataset(self, tiny_uniform, small_gaussian):
        index = LinearScan(portion=1.0, seed=0).fit(tiny_uniform)
        assert index.n == tiny_uniform.shape[0]
        index.fit(small_gaussian)
        assert index.n == small_gaussian.shape[0]
        result = index.query(small_gaussian[3], k=1)
        assert int(result.ids[0]) == 3

    def test_bad_data_rejected(self):
        with pytest.raises(ValueError):
            PMLSH(seed=0).fit(np.zeros(5))
        with pytest.raises(ValueError):
            PMLSH(seed=0).fit(np.empty((0, 3)))


class TestIntrospection:
    """faiss-style ntotal / __repr__ on every index."""

    def test_ntotal_zero_before_fit(self):
        assert PMLSH(seed=0).ntotal == 0

    def test_ntotal_tracks_fit_and_add(self, tiny_uniform):
        index = PMLSH(seed=0).fit(tiny_uniform)
        assert index.ntotal == tiny_uniform.shape[0]
        index.add(tiny_uniform[:7])
        assert index.ntotal == tiny_uniform.shape[0] + 7

    def test_repr_unfitted(self):
        assert repr(PMLSH(seed=0)) == "PMLSH(unfitted)"

    def test_repr_fitted(self, tiny_uniform):
        index = LinearScan(portion=1.0, seed=0).fit(tiny_uniform)
        assert repr(index) == "LinearScan(d=8, ntotal=200, built)"


class TestAdd:
    def test_add_before_fit_raises(self, tiny_uniform):
        with pytest.raises(RuntimeError):
            PMLSH(seed=0).add(tiny_uniform)

    def test_add_dimension_check(self, tiny_uniform):
        index = PMLSH(seed=0).fit(tiny_uniform)
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 3)))

    def test_add_empty_is_noop(self, tiny_uniform):
        index = PMLSH(seed=0).fit(tiny_uniform)
        ids = index.add(np.empty((0, tiny_uniform.shape[1])))
        assert ids.size == 0
        assert index.n == tiny_uniform.shape[0]

    def test_pmlsh_add_incremental(self, small_clustered):
        base, extra = small_clustered[:600], small_clustered[600:650]
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(base)
        new_ids = index.add(extra)
        assert list(new_ids) == list(range(600, 650))
        assert index.n == 650
        hit = index.query(extra[7], k=1)
        assert int(hit.ids[0]) == int(new_ids[7])

    def test_default_add_refits(self, small_clustered):
        """Algorithms without an incremental path re-fit over the grown set
        and the new rows become findable."""
        base, extra = small_clustered[:300], small_clustered[300:320]
        index = E2LSH(w=30.0, seed=3).fit(base)
        new_ids = index.add(extra)
        assert list(new_ids) == list(range(300, 320))
        hit = index.query(extra[0], k=1)
        assert int(hit.ids[0]) == 300
        assert hit.distances[0] == pytest.approx(0.0, abs=1e-9)

    def test_qalsh_rederives_n_dependent_parameters(self, small_clustered):
        """β = 100/n and the m/α pair must track growth (the βn + k budget
        consistency the add() contract promises)."""
        base, extra = small_clustered[:300], small_clustered[300:]
        index = QALSH(seed=0).fit(base)
        assert index.beta == pytest.approx(min(0.5, 100.0 / 300))
        index.add(extra)
        n = small_clustered.shape[0]
        assert index.n == n
        assert index.beta == pytest.approx(min(0.5, 100.0 / n))
        expected_m, expected_alpha, _ = derive_parameters(
            n, index.c, index.delta, index.beta
        )
        assert index.m == expected_m
        assert index.alpha == pytest.approx(expected_alpha)
        result = index.query(small_clustered[0], k=5)
        assert len(result) == 5


class TestLegacyShimRemoved:
    """The pre-2.0 shims are gone: legacy calls fail loudly, not quietly."""

    def test_ctor_data_rejected(self, tiny_uniform):
        with pytest.raises(TypeError):
            PMLSH(tiny_uniform, seed=0)

    def test_build_gone(self, tiny_uniform):
        index = PMLSH(seed=0).fit(tiny_uniform)
        with pytest.raises(AttributeError):
            index.build()

    def test_extend_gone(self, small_clustered):
        index = PMLSH(seed=0).fit(small_clustered[:200])
        with pytest.raises(AttributeError):
            index.extend(small_clustered[200:210])

    def test_query_batch_gone(self, small_clustered):
        index = PMLSH(seed=0).fit(small_clustered[:200])
        with pytest.raises(AttributeError):
            index.query_batch(small_clustered[:5], k=4)

    def test_factory_index_never_warns(self, tiny_uniform, recwarn):
        index = create_index("lscan", seed=0).fit(tiny_uniform)
        index.search(tiny_uniform[:3], k=2)
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
