"""Tests for first-class batch queries: search() and BatchResult.

The central contract: for every algorithm, ``search(Q, k)`` returns
exactly the ids/distances of a per-query ``query()`` loop — including
PM-LSH, whose batch path replaces the per-query tree walks with one
blocked projected-space GEMM.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PMLSH, PMLSHParams, create_index
from repro.baselines.base import BatchResult, QueryResult


def _assert_batch_equals_loop(index, queries, k):
    batch = index.search(queries, k)
    assert batch.ids.shape == (queries.shape[0], k)
    assert batch.distances.shape == (queries.shape[0], k)
    for i, q in enumerate(queries):
        single = index.query(q, k)
        valid = batch.ids[i] >= 0
        np.testing.assert_array_equal(batch.ids[i][valid], single.ids)
        # rtol covers the one-row-vs-blocked GEMM rounding in the exact
        # oracle; every candidate-verifying algorithm matches bit for bit.
        np.testing.assert_allclose(
            batch.distances[i][valid], single.distances, rtol=1e-9
        )


class TestSearchEqualsQueryLoop:
    def test_pmlsh_batch_identical_to_loop(self, small_clustered):
        index = PMLSH(params=PMLSHParams(node_capacity=32), seed=3).fit(
            small_clustered[:500]
        )
        _assert_batch_equals_loop(index, small_clustered[:30] + 0.01, k=10)

    def test_pmlsh_batch_stats_identical_to_loop(self, small_clustered):
        index = PMLSH(seed=3).fit(small_clustered[:400])
        queries = small_clustered[:10] + 0.01
        batch = index.search(queries, k=5)
        for i, q in enumerate(queries):
            assert batch.per_query_stats[i] == index.query(q, 5).stats

    def test_pmlsh_batch_blocking_boundary(self, small_clustered, monkeypatch):
        """One-block and many-block flat traversals answer identically."""
        index = PMLSH(seed=3).fit(small_clustered[:300])
        queries = small_clustered[:9] + 0.01
        full = index.search(queries, k=5)
        monkeypatch.setattr(PMLSH, "_BATCH_QUERY_BLOCK", 4)
        blocked = index.search(queries, k=5)
        np.testing.assert_array_equal(full.ids, blocked.ids)
        np.testing.assert_array_equal(full.distances, blocked.distances)

    @pytest.mark.parametrize("name", ["srs", "qalsh", "exact", "lscan"])
    def test_baselines_batch_identical_to_loop(self, name, small_clustered):
        kwargs = {} if name == "exact" else {"seed": 3}
        index = create_index(name, **kwargs).fit(small_clustered[:400])
        _assert_batch_equals_loop(index, small_clustered[:15] + 0.01, k=8)

    def test_single_vector_promoted_to_batch(self, tiny_uniform):
        index = create_index("exact").fit(tiny_uniform)
        batch = index.search(tiny_uniform[0], k=4)
        assert batch.ids.shape == (1, 4)
        assert int(batch.ids[0, 0]) == 0

    def test_dimension_mismatch_rejected(self, tiny_uniform):
        index = create_index("exact").fit(tiny_uniform)
        with pytest.raises(ValueError):
            index.search(np.zeros((3, tiny_uniform.shape[1] + 1)), k=2)

    def test_invalid_k_rejected(self, tiny_uniform):
        index = create_index("exact").fit(tiny_uniform)
        with pytest.raises(ValueError):
            index.search(tiny_uniform[:2], k=0)
        with pytest.raises(ValueError):
            index.search(tiny_uniform[:2], k=tiny_uniform.shape[0] + 1)


class TestBatchResult:
    def test_from_queries_pads_short_rows(self):
        full = QueryResult(ids=np.array([4, 2]), distances=np.array([0.1, 0.2]))
        short = QueryResult(ids=np.array([7]), distances=np.array([0.3]))
        batch = BatchResult.from_queries([full, short], k=2)
        np.testing.assert_array_equal(batch.ids, [[4, 2], [7, -1]])
        assert batch.distances[1, 1] == np.inf
        # Indexing strips the padding again.
        assert len(batch[1]) == 1
        assert int(batch[1].ids[0]) == 7

    def test_aggregated_stats(self):
        a = QueryResult(np.array([1]), np.array([0.1]), stats={"candidates": 10.0})
        b = QueryResult(np.array([2]), np.array([0.2]), stats={"candidates": 30.0})
        batch = BatchResult.from_queries([a, b], k=1)
        assert batch.stats["queries"] == 2.0
        assert batch.stats["candidates"] == 20.0
        assert batch.per_query_stats == ({"candidates": 10.0}, {"candidates": 30.0})

    def test_len_and_k(self):
        batch = BatchResult(ids=np.zeros((3, 4)), distances=np.zeros((3, 4)))
        assert len(batch) == 3
        assert batch.num_queries == 3
        assert batch.k == 4

    def test_negative_index(self):
        a = QueryResult(np.array([1]), np.array([0.1]), stats={"rounds": 1.0})
        b = QueryResult(np.array([2]), np.array([0.2]), stats={"rounds": 2.0})
        batch = BatchResult.from_queries([a, b], k=1)
        assert int(batch[-1].ids[0]) == 2
        assert batch[-1].stats == {"rounds": 2.0}
        # Directly-constructed results carry no per-query stats; negative
        # indexing must still work.
        bare = BatchResult(ids=np.zeros((2, 1)), distances=np.zeros((2, 1)))
        assert bare[-1].stats == {}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BatchResult(ids=np.zeros((2, 3)), distances=np.zeros((2, 4)))
        with pytest.raises(ValueError):
            BatchResult(ids=np.zeros(3), distances=np.zeros(3))


class TestHarnessBatchMode:
    def test_batch_and_loop_agree_on_metrics(self, small_clustered):
        from repro.evaluation import compute_ground_truth, run_query_set

        data = small_clustered[:400]
        queries = small_clustered[:10] + 0.01
        gt = compute_ground_truth(data, queries, k_max=5)
        index = PMLSH(seed=1).fit(data)
        looped = run_query_set(index, queries, 5, gt)
        batched = run_query_set(index, queries, 5, gt, batch=True)
        assert batched.recall == pytest.approx(looped.recall)
        assert batched.overall_ratio == pytest.approx(looped.overall_ratio)
        assert batched.per_query_time_ms.shape == (10,)

    def test_evaluate_algorithm_by_name(self, small_clustered):
        from repro.evaluation import evaluate_algorithm

        data = small_clustered[:300]
        queries = small_clustered[:6] + 0.01
        result = evaluate_algorithm(
            "exact", data, queries, k=4, dataset_name="toy", batch=True
        )
        assert result.algorithm == "Exact"
        assert result.dataset == "toy"
        assert result.recall == pytest.approx(1.0)
        assert result.overall_ratio == pytest.approx(1.0)
