"""Cross-backend contract sweep: registry × query type × kernel backend.

Every registered index answers kNN, range and closest-pair queries under
both kernel dispatch modes (``REPRO_KERNELS=numpy`` and ``fast``), on a
dataset with a planted duplicate triple so exact distance ties exercise
the canonical ``(distance, id)`` cut everywhere.  The assertion is byte
equality between modes — for indexes without a fast path this pins that
dispatch is transparent; for indexes with one (PM-LSH, QALSH, C2LSH,
E2LSH, LSB-Forest) it pins that the batch kernels change nothing but
speed.  Fresh same-seed indexes are built per mode: the rng-consuming
fallbacks would otherwise drift between runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import create_index, kernels
from repro.queries import Knn, Range

ALL_NAMES = [
    "c2lsh",
    "e2lsh",
    "exact",
    "lsb-forest",
    "lscan",
    "multi-probe",
    "pm-lsh",
    "process-sharded",
    "qalsh",
    "r-lsh",
    "sharded",
    "srs",
]

#: Constructor kwargs per registry name, sized for a fast sweep.
KWARGS = {name: {"seed": 3} for name in ALL_NAMES}
KWARGS["exact"] = {}
KWARGS["lsb-forest"] = {"num_trees": 3, "m": 6, "seed": 3}
KWARGS["sharded"] = {"num_shards": 2, "seed": 3}
KWARGS["process-sharded"] = {"num_shards": 2, "num_workers": 2, "seed": 3}


def _dataset():
    rng = np.random.default_rng(31)
    data = rng.normal(size=(500, 10))
    data[50] = data[10]  # duplicate triple: ties at identical distance
    data[51] = data[10]
    return data


def _queries(data):
    queries = np.asarray(data[:5]) + 0.01
    queries[2] = data[10]  # exactly on the tie
    return queries


def _sweep(index, queries, spec_kind):
    if spec_kind == "knn":
        result = index.run(queries, Knn(k=8))
        return (result.ids, result.distances)
    if spec_kind == "range":
        result = index.run(queries, Range(r=3.5))
        return (result.lims, result.ids, result.distances)
    result = index.closest_pairs(m=4)
    return (result.pairs, result.distances)


@pytest.mark.parametrize("spec_kind", ["knn", "range", "closest-pairs"])
@pytest.mark.parametrize("name", ALL_NAMES)
def test_backend_times_query_times_dispatch(name, spec_kind):
    data = _dataset()
    queries = _queries(data)
    outputs = {}
    for mode in ("numpy", "fast"):
        with kernels.use_backend(mode):
            index = create_index(name, **KWARGS[name]).fit(data)
            try:
                outputs[mode] = _sweep(index, queries, spec_kind)
            finally:
                if hasattr(index, "close"):
                    index.close()
    for got, want in zip(outputs["fast"], outputs["numpy"]):
        got, want = np.asarray(got), np.asarray(want)
        assert got.dtype == want.dtype
        assert got.shape == want.shape
        assert got.tobytes() == want.tobytes()


@pytest.mark.parametrize("name", ["exact", "e2lsh", "pm-lsh", "lsb-forest"])
def test_duplicate_tie_returned_in_id_order(name):
    """When the duplicate triple makes the cut, its members appear in
    ascending id order under both dispatch modes."""
    data = _dataset()
    queries = data[10][None, :]
    for mode in ("numpy", "fast"):
        with kernels.use_backend(mode):
            index = create_index(name, **KWARGS[name]).fit(data)
            row = index.run(queries, Knn(k=8)).ids[0]
            tied = [int(i) for i in row if int(i) in {10, 50, 51}]
            assert tied == sorted(tied), (mode, row)
