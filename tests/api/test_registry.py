"""Tests for the index registry and the create_index factory."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines.base import ANNIndex, QueryResult
from repro.registry import available_indexes, create_index, get_index_class, register_index

ALL_NAMES = [
    "c2lsh",
    "e2lsh",
    "exact",
    "lsb-forest",
    "lscan",
    "multi-probe",
    "pm-lsh",
    "process-sharded",
    "qalsh",
    "r-lsh",
    "sharded",
    "srs",
]

#: Constructor kwargs per registry name (exact takes no seed).
KWARGS = {name: ({} if name == "exact" else {"seed": 3}) for name in ALL_NAMES}


class TestListing:
    def test_all_algorithms_registered(self):
        assert available_indexes() == ALL_NAMES

    def test_package_level_exports(self):
        assert repro.available_indexes() == ALL_NAMES
        assert repro.create_index is create_index


class TestResolution:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_create_constructs_ann_index(self, name):
        index = create_index(name, **KWARGS[name])
        assert isinstance(index, ANNIndex)
        assert not index.is_built

    @pytest.mark.parametrize(
        "variant", ["pm-lsh", "PM-LSH", "pmlsh", "pm_lsh", "  Pm LSH  "]
    )
    def test_name_normalisation(self, variant):
        assert get_index_class(variant) is repro.PMLSH

    def test_aliases_resolve(self):
        from repro.engine.sharded import ProcessShardedIndex

        assert get_index_class("lsb") is repro.LSBForest
        assert get_index_class("brute-force") is repro.ExactKNN
        assert get_index_class("linear-scan") is repro.LinearScan
        assert get_index_class("engine") is repro.ShardedIndex
        assert get_index_class("process-engine") is ProcessShardedIndex

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="pm-lsh"):
            create_index("no-such-index")

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(KeyError, match="Did you mean 'pm-lsh'"):
            create_index("pmlshh")
        with pytest.raises(KeyError, match="Did you mean 'sharded'"):
            create_index("shard")

    def test_unknown_name_without_close_match_has_no_hint(self):
        with pytest.raises(KeyError) as excinfo:
            create_index("zzzzzzzz")
        assert "Did you mean" not in str(excinfo.value)

    def test_constructor_kwargs_pass_through(self):
        index = create_index("lscan", portion=0.4, seed=1)
        assert index.portion == 0.4

    def test_registry_name_attribute(self):
        assert repro.PMLSH.registry_name == "pm-lsh"


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_factory_fit_query_round_trip(self, name, tiny_uniform):
        """Every registered algorithm is constructible by name and answers
        queries through the uniform lifecycle."""
        index = create_index(name, **KWARGS[name]).fit(tiny_uniform)
        result = index.query(tiny_uniform[0] + 0.001, k=3)
        assert len(result) == 3
        batch = index.search(tiny_uniform[:4] + 0.001, k=3)
        assert batch.ids.shape == (4, 3)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_index("pm-lsh")
            class Impostor(ANNIndex):  # pragma: no cover - never instantiated
                def query(self, q, k):
                    raise NotImplementedError

    def test_reregistering_same_class_is_noop(self):
        cls = get_index_class("pm-lsh")
        register_index("pm-lsh")(cls)
        assert get_index_class("pm-lsh") is cls

    def test_custom_registration_round_trip(self, tiny_uniform):
        @register_index("test-dummy-knn")
        class DummyKNN(ANNIndex):
            name = "DummyKNN"

            def _fit(self):
                pass

            def query(self, q, k):
                q = self._validate_query(q, k)
                dists = np.linalg.norm(self.data - q, axis=1)
                order = np.argsort(dists, kind="stable")[:k]
                return QueryResult(ids=order, distances=dists[order])

        index = create_index("test-dummy-knn").fit(tiny_uniform)
        result = index.query(tiny_uniform[5], k=1)
        assert int(result.ids[0]) == 5

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_index("  - ")
