"""Tests for the polymorphic query model: specs, run() dispatch, ragged
range results, closest pairs, and per-query runtime knobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ClosestPairResult,
    ExactKNN,
    Knn,
    PMLSH,
    PMLSHParams,
    Range,
    RangeResult,
    create_index,
)
from repro.baselines.base import QueryResult
from repro.queries import as_query_spec, dedupe_pairs, sort_pairs


@pytest.fixture(scope="module")
def pm_index(small_clustered):
    return PMLSH(params=PMLSHParams(node_capacity=32), seed=0).fit(small_clustered)


@pytest.fixture(scope="module")
def exact_index(small_clustered):
    return ExactKNN().fit(small_clustered)


class TestSpecValidation:
    def test_knn_requires_positive_k(self):
        with pytest.raises(ValueError):
            Knn(k=0)

    def test_knn_knob_validation(self):
        with pytest.raises(ValueError):
            Knn(k=3, budget=0)
        with pytest.raises(ValueError):
            Knn(k=3, c=1.0)

    def test_range_requires_positive_radius(self):
        with pytest.raises(ValueError):
            Range(r=0.0)
        with pytest.raises(ValueError):
            Range(r=-2.0)

    def test_range_knob_validation(self):
        with pytest.raises(ValueError):
            Range(r=1.0, c=0.9)
        with pytest.raises(ValueError):
            Range(r=1.0, budget=-1)

    def test_has_overrides(self):
        assert not Knn(k=5).has_overrides
        assert Knn(k=5, budget=10).has_overrides
        assert Knn(k=5, c=2.0).has_overrides
        assert not Range(r=1.0).has_overrides
        assert Range(r=1.0, budget=3).has_overrides

    def test_numeric_knobs_coerced_to_canonical_types(self):
        """Float knobs must be stored coerced, not just validated — a float
        budget used to crash deep inside PM-LSH's buffer allocation."""
        knn = Knn(k=3, budget=50.0, c=2)
        assert isinstance(knn.budget, int) and knn.budget == 50
        assert isinstance(knn.c, float) and knn.c == 2.0
        rng_spec = Range(r=1, budget=7.0, c=2)
        assert isinstance(rng_spec.r, float)
        assert isinstance(rng_spec.budget, int) and rng_spec.budget == 7
        assert isinstance(rng_spec.c, float)

    def test_float_budget_runs_end_to_end(self, pm_index, small_clustered):
        queries = small_clustered[:2] + 0.01
        result = pm_index.run(queries, Knn(k=3, budget=50.0))
        assert result.stats["candidates"] <= 50

    def test_as_query_spec_coerces_int(self):
        spec = as_query_spec(7)
        assert isinstance(spec, Knn) and spec.k == 7
        assert as_query_spec(spec) is spec
        with pytest.raises(TypeError):
            as_query_spec("knn")
        with pytest.raises(TypeError):
            as_query_spec(True)


class TestRunDispatch:
    def test_run_knn_matches_search(self, pm_index, small_clustered):
        queries = small_clustered[:5] + 0.01
        via_run = pm_index.run(queries, Knn(k=6))
        via_search = pm_index.search(queries, 6)
        np.testing.assert_array_equal(via_run.ids, via_search.ids)

    def test_run_int_spec_is_knn(self, exact_index, small_clustered):
        queries = small_clustered[:3] + 0.01
        np.testing.assert_array_equal(
            exact_index.run(queries, 4).ids, exact_index.search(queries, 4).ids
        )

    def test_run_range_matches_range_search(self, exact_index, small_clustered):
        queries = small_clustered[:4] + 0.01
        a = exact_index.run(queries, Range(r=5.0))
        b = exact_index.range_search(queries, 5.0)
        np.testing.assert_array_equal(a.lims, b.lims)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_unknown_spec_rejected(self, exact_index, small_clustered):
        class Weird:
            pass

        with pytest.raises(TypeError):
            exact_index.run(small_clustered[:2], Weird())

    def test_run_requires_fit(self, small_clustered):
        with pytest.raises(RuntimeError):
            PMLSH(seed=0).run(small_clustered[:2], Knn(k=1))


class TestKnnKnobs:
    def test_budget_override_caps_candidates(self, pm_index, small_clustered):
        queries = small_clustered[:6] + 0.01
        default = pm_index.run(queries, Knn(k=5))
        capped = pm_index.run(queries, Knn(k=5, budget=30))
        assert capped.stats["candidates"] <= 30
        assert default.stats["candidates"] > capped.stats["candidates"]
        assert "overrides_ignored" not in capped.stats

    def test_budget_never_below_k(self, pm_index, small_clustered):
        result = pm_index.run(small_clustered[:2] + 0.01, Knn(k=8, budget=1))
        assert result.ids.shape[1] == 8

    def test_c_override_changes_probing(self, pm_index, small_clustered):
        queries = small_clustered[:6] + 0.01
        tight = pm_index.run(queries, Knn(k=5, c=1.2))
        loose = pm_index.run(queries, Knn(k=5, c=3.0))
        # A looser ratio terminates earlier: fewer candidates verified.
        assert loose.stats["candidates"] < tight.stats["candidates"]

    def test_c_override_uses_solved_cache(self, pm_index):
        first = pm_index.solved_for(2.5)
        again = pm_index.solved_for(2.5)
        assert first is again
        assert pm_index.solved_for(None) is pm_index.solved

    def test_overrides_marked_ignored_on_plain_backends(
        self, exact_index, small_clustered
    ):
        queries = small_clustered[:3] + 0.01
        result = exact_index.run(queries, Knn(k=4, budget=10))
        assert result.stats["overrides_ignored"] == 1.0
        plain = exact_index.run(queries, Knn(k=4))
        assert "overrides_ignored" not in plain.stats

    def test_range_overrides_marked_ignored_on_fallback_backends(
        self, exact_index, pm_index, small_clustered
    ):
        queries = small_clustered[:3] + 0.01
        ignored = exact_index.run(queries, Range(r=5.0, budget=10))
        assert ignored.stats["overrides_ignored"] == 1.0
        plain = exact_index.run(queries, Range(r=5.0))
        assert "overrides_ignored" not in plain.stats
        honoured = pm_index.run(queries, Range(r=5.0, budget=10))
        assert "overrides_ignored" not in honoured.stats

    def test_plain_spec_identical_to_overridden_default(
        self, pm_index, small_clustered
    ):
        """Passing the index's own c explicitly must not change answers."""
        queries = small_clustered[:5] + 0.01
        a = pm_index.run(queries, Knn(k=5))
        b = pm_index.run(queries, Knn(k=5, c=pm_index.params.c))
        np.testing.assert_array_equal(a.ids, b.ids)


class TestRangeResultContainer:
    def test_csr_layout(self):
        result = RangeResult(
            lims=np.array([0, 2, 2, 5]),
            ids=np.array([4, 7, 1, 2, 3]),
            distances=np.array([0.1, 0.2, 0.3, 0.4, 0.5]),
        )
        assert result.num_queries == 3
        np.testing.assert_array_equal(result.counts, [2, 0, 3])
        np.testing.assert_array_equal(result[0].ids, [4, 7])
        assert len(result[1]) == 0
        np.testing.assert_array_equal(result[-1].ids, [1, 2, 3])

    def test_invalid_lims_rejected(self):
        with pytest.raises(ValueError):
            RangeResult(
                lims=np.array([1, 2]), ids=np.array([3]), distances=np.array([0.5])
            )
        with pytest.raises(ValueError):
            RangeResult(
                lims=np.array([0, 2]), ids=np.array([3]), distances=np.array([0.5])
            )

    def test_out_of_range_query_index(self):
        result = RangeResult(
            lims=np.array([0, 1]), ids=np.array([0]), distances=np.array([0.0])
        )
        with pytest.raises(IndexError):
            result[1]

    def test_from_queries_round_trip(self):
        parts = [
            QueryResult(ids=np.array([3, 1]), distances=np.array([0.1, 0.9])),
            QueryResult(ids=np.empty(0, dtype=np.int64), distances=np.empty(0)),
        ]
        result = RangeResult.from_queries(parts)
        assert result.num_queries == 2
        np.testing.assert_array_equal(result.lims, [0, 2, 2])
        np.testing.assert_array_equal(result[0].ids, [3, 1])

    def test_iteration(self):
        result = RangeResult(
            lims=np.array([0, 1, 2]),
            ids=np.array([5, 6]),
            distances=np.array([0.5, 0.6]),
        )
        assert [len(one) for one in result] == [1, 1]


class TestClosestPairContainer:
    def test_well_formed(self):
        result = ClosestPairResult(
            pairs=np.array([[0, 3], [1, 2]]), distances=np.array([0.1, 0.2])
        )
        assert len(result) == 2
        assert result[0] == (0, 3, 0.1)
        assert list(result)[1] == (1, 2, 0.2)

    def test_rejects_unordered_pairs(self):
        with pytest.raises(ValueError):
            ClosestPairResult(pairs=np.array([[3, 0]]), distances=np.array([0.1]))
        with pytest.raises(ValueError):
            ClosestPairResult(pairs=np.array([[1, 1]]), distances=np.array([0.1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClosestPairResult(pairs=np.array([[0, 1]]), distances=np.array([0.1, 0.2]))


class TestPairHelpers:
    def test_sort_pairs_orders_by_distance_then_ids(self):
        pairs = np.array([[2, 5], [0, 9], [0, 3], [1, 4]])
        dists = np.array([0.5, 0.2, 0.2, 0.2])
        sorted_pairs, sorted_dists = sort_pairs(pairs, dists)
        np.testing.assert_array_equal(sorted_pairs, [[0, 3], [0, 9], [1, 4], [2, 5]])
        np.testing.assert_array_equal(sorted_dists, [0.2, 0.2, 0.2, 0.5])
        top, _ = sort_pairs(pairs, dists, m=2)
        np.testing.assert_array_equal(top, [[0, 3], [0, 9]])

    def test_dedupe_pairs_keeps_first(self):
        pairs = np.array([[0, 1], [2, 3], [0, 1]])
        dists = np.array([0.1, 0.2, 0.1])
        unique_pairs, unique_dists = dedupe_pairs(pairs, dists)
        assert unique_pairs.shape[0] == 2
        np.testing.assert_array_equal(unique_pairs, [[0, 1], [2, 3]])


class TestFactoryIntegration:
    def test_every_registry_backend_runs_all_query_types(self, tiny_uniform):
        """A cheap registry sweep: run(Knn), run(Range) and closest_pairs
        answer on every registered backend (contract details live in
        tests/baselines/test_contracts.py)."""
        import repro

        for name in repro.available_indexes():
            kwargs = {} if name == "exact" else {"seed": 1}
            if name == "sharded":
                kwargs.update(backend="exact", num_shards=2)
            index = create_index(name, **kwargs).fit(tiny_uniform)
            batch = index.run(tiny_uniform[:2] + 0.001, Knn(k=3))
            assert batch.ids.shape == (2, 3), name
            ragged = index.run(tiny_uniform[:2] + 0.001, Range(r=0.6))
            assert ragged.num_queries == 2, name
            pairs = index.closest_pairs(2)
            assert len(pairs) == 2, name
