"""Shared benchmark fixtures.

Scale knobs (environment variables, or the ``--n``/``--queries``/
``--seed``/``--out`` flags when a bench runs as a script — see
:mod:`_cli`):

* ``REPRO_BENCH_N`` — points per emulated dataset (default 2000).
* ``REPRO_BENCH_QUERIES`` — queries per workload (default 15).
* ``REPRO_BENCH_SEED`` — master seed offset added to every bench RNG
  stream (unset: each bench's built-in seeds).
* ``REPRO_BENCH_OUT`` — directory for the result tables (default
  ``results/`` at the repo root).
* ``REPRO_BENCH_JSON`` — when ``1`` (the ``--json`` flag), each bench
  also writes a machine-readable ``BENCH_<name>.json`` next to its table.
* ``REPRO_BENCH_METRICS_OUT`` — a file path (the ``--metrics-out``
  flag): benches that build a metrics registry dump it there in
  Prometheus text format on completion.
* ``REPRO_BENCH_TRACE_SAMPLE`` — head-sampling rate for per-request
  trace spans in serving benches (the ``--trace-sample`` flag; default 0).

Every bench writes its paper-style table to ``<out>/<bench>.txt`` and
registers at least one timed region with pytest-benchmark, so
``pytest benchmarks/ --benchmark-only`` both regenerates the tables and
reports timings.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, Optional

# Script mode (`python benchmarks/bench_X.py`): make `repro` importable
# exactly as under `PYTHONPATH=src` before anything pulls it in.  Bench
# modules import conftest *first* so this runs ahead of their own imports.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro import PMLSHParams, create_index  # noqa: E402
from repro.datasets import Workload, load_dataset  # noqa: E402
from repro.evaluation import GroundTruth, compute_ground_truth  # noqa: E402

try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    # Script mode without the plugin: a no-op stand-in keeps every bench
    # runnable (`--benchmark-disable` semantics, minus the plugin).
    class _NoOpBenchmark:
        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _NoOpBenchmark()

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_n() -> int:
    return int(os.environ.get("REPRO_BENCH_N", "2000"))


def bench_queries() -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", "15"))


def bench_seed(default: int) -> int:
    """Seed for one benchmark RNG stream.

    ``REPRO_BENCH_SEED`` (the ``--seed`` flag) shifts every stream by the
    same master offset — the whole run stays reproducible under one knob
    while distinct streams (dataset, index, queries) remain decorrelated
    because their built-in defaults differ.
    """
    base = os.environ.get("REPRO_BENCH_SEED")
    return default if base is None else default + int(base)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    out = Path(os.environ.get("REPRO_BENCH_OUT", str(RESULTS_DIR)))
    out.mkdir(parents=True, exist_ok=True)
    return out


@pytest.fixture(scope="session")
def write_result(results_dir: Path) -> Callable[[str, str], None]:
    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print()
        print(text)

    return _write


def bench_trace_sample() -> float:
    """Head-sampling rate for serving benches (``--trace-sample``)."""
    return float(os.environ.get("REPRO_BENCH_TRACE_SAMPLE", "0"))


@pytest.fixture(scope="session")
def write_json(results_dir: Path) -> Callable[[str, dict], Optional[Path]]:
    """Write ``BENCH_<name>.json`` when ``--json`` / ``REPRO_BENCH_JSON`` is set.

    Returns the written path, or ``None`` when JSON output is off — every
    bench calls this unconditionally with its headline numbers.
    """

    def _write(name: str, payload: dict) -> Optional[Path]:
        if os.environ.get("REPRO_BENCH_JSON") != "1":
            return None
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
        return path

    return _write


def write_metrics(registry) -> Optional[Path]:
    """Dump *registry* to ``REPRO_BENCH_METRICS_OUT`` (``--metrics-out``).

    Prometheus text exposition format; parent directories are created.
    Returns the written path, or ``None`` when the knob is unset.
    """
    out = os.environ.get("REPRO_BENCH_METRICS_OUT")
    if not out:
        return None
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.to_prometheus())
    print(f"\nwrote {path}")
    return path


class WorkloadCache:
    """Builds each emulated workload and its ground truth at most once."""

    def __init__(self) -> None:
        self._workloads: Dict[str, Workload] = {}
        self._ground_truth: Dict[tuple, GroundTruth] = {}

    def workload(self, name: str, n: int | None = None) -> Workload:
        size = n if n is not None else bench_n()
        key = f"{name}:{size}"
        if key not in self._workloads:
            self._workloads[key] = load_dataset(
                name, n=size, num_queries=bench_queries(), seed=bench_seed(1)
            )
        return self._workloads[key]

    def ground_truth(self, name: str, k_max: int, n: int | None = None) -> GroundTruth:
        size = n if n is not None else bench_n()
        key = (name, size, k_max)
        if key not in self._ground_truth:
            wl = self.workload(name, n=size)
            self._ground_truth[key] = compute_ground_truth(wl.data, wl.queries, k_max)
        return self._ground_truth[key]


@pytest.fixture(scope="session")
def cache() -> WorkloadCache:
    return WorkloadCache()


#: Factory per §6.1 competitor, keyed by the paper's algorithm name.  Each
#: factory constructs through the registry and returns a *fitted* index, so
#: adding a contender is one (registry name, constructor kwargs) line.
def algorithm_factories(
    c: float = 1.5, node_capacity: int = 128
) -> Dict[str, Callable[[np.ndarray], object]]:
    params = PMLSHParams(c=c, node_capacity=node_capacity)
    specs: Dict[str, tuple] = {
        "PM-LSH": ("pm-lsh", {"params": params, "seed": bench_seed(7)}),
        "SRS": ("srs", {"c": c, "seed": bench_seed(7)}),
        "QALSH": ("qalsh", {"c": c, "seed": bench_seed(7)}),
        "Multi-Probe": ("multi-probe", {"seed": bench_seed(7)}),
        "R-LSH": ("r-lsh", {"params": params, "seed": bench_seed(7)}),
        "LScan": ("lscan", {"portion": 0.7, "seed": bench_seed(7)}),
    }
    return {
        label: (
            lambda data, name=name, kwargs=kwargs: create_index(name, **kwargs).fit(data)
        )
        for label, (name, kwargs) in specs.items()
    }
