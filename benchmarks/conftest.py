"""Shared benchmark fixtures.

Scale knobs (environment variables):

* ``REPRO_BENCH_N`` — points per emulated dataset (default 2000).
* ``REPRO_BENCH_QUERIES`` — queries per workload (default 15).

Every bench writes its paper-style table to ``results/<bench>.txt`` and
registers at least one timed region with pytest-benchmark, so
``pytest benchmarks/ --benchmark-only`` both regenerates the tables and
reports timings.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict

import numpy as np
import pytest

from repro import PMLSHParams, create_index
from repro.datasets import Workload, load_dataset
from repro.evaluation import GroundTruth, compute_ground_truth

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_n() -> int:
    return int(os.environ.get("REPRO_BENCH_N", "2000"))


def bench_queries() -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", "15"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir: Path) -> Callable[[str, str], None]:
    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print()
        print(text)

    return _write


class WorkloadCache:
    """Builds each emulated workload and its ground truth at most once."""

    def __init__(self) -> None:
        self._workloads: Dict[str, Workload] = {}
        self._ground_truth: Dict[tuple, GroundTruth] = {}

    def workload(self, name: str, n: int | None = None) -> Workload:
        size = n if n is not None else bench_n()
        key = f"{name}:{size}"
        if key not in self._workloads:
            self._workloads[key] = load_dataset(
                name, n=size, num_queries=bench_queries(), seed=1
            )
        return self._workloads[key]

    def ground_truth(self, name: str, k_max: int, n: int | None = None) -> GroundTruth:
        size = n if n is not None else bench_n()
        key = (name, size, k_max)
        if key not in self._ground_truth:
            wl = self.workload(name, n=size)
            self._ground_truth[key] = compute_ground_truth(wl.data, wl.queries, k_max)
        return self._ground_truth[key]


@pytest.fixture(scope="session")
def cache() -> WorkloadCache:
    return WorkloadCache()


#: Factory per §6.1 competitor, keyed by the paper's algorithm name.  Each
#: factory constructs through the registry and returns a *fitted* index, so
#: adding a contender is one (registry name, constructor kwargs) line.
def algorithm_factories(
    c: float = 1.5, node_capacity: int = 128
) -> Dict[str, Callable[[np.ndarray], object]]:
    params = PMLSHParams(c=c, node_capacity=node_capacity)
    specs: Dict[str, tuple] = {
        "PM-LSH": ("pm-lsh", {"params": params, "seed": 7}),
        "SRS": ("srs", {"c": c, "seed": 7}),
        "QALSH": ("qalsh", {"c": c, "seed": 7}),
        "Multi-Probe": ("multi-probe", {"seed": 7}),
        "R-LSH": ("r-lsh", {"params": params, "seed": 7}),
        "LScan": ("lscan", {"portion": 0.7, "seed": 7}),
    }
    return {
        label: (
            lambda data, name=name, kwargs=kwargs: create_index(name, **kwargs).fit(data)
        )
        for label, (name, kwargs) in specs.items()
    }
