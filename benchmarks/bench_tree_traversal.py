"""Tree-traversal micro-bench — flat SoA vs recursive PM-tree on the §4.2 hot loop.

One PM-LSH index answers the same batched kNN workload through the
default flattened structure-of-arrays traversal (one level-synchronous
sweep per radius-enlarging round for the whole batch) and through
per-query recursive pointer-tree walks
(``PMLSHParams(traversal="recursive")``).  The two share projections,
tree and radii, so the comparison isolates the traversal.  Two sections:

* **candidate fetch** — Algorithm 2's round-1 probe (``range(q', t·r_min)``
  capped at the ⌈βn⌉ + k budget): one ``FlatPMTree.batch_range`` call for
  the whole batch against a per-query ``PMTree.range_query`` loop, with
  the candidate sets asserted identical first.  This is the traversal
  itself; the flat layout must win by >= 2x at the acceptance scale
  (``--n 50000``, d = 128).
* **end-to-end search** — ``index.search(queries, k)`` under both
  traversals (identical ids/distances/stats asserted), which adds the
  original-space verification both paths share.

The assertions are enforced from n >= 5000 so the tiny CI smoke run
stays a smoke test; the table — including the per-level frontier
counters — lands in ``results/tree_traversal.txt``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np


from conftest import bench_n, bench_queries, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import PMLSHParams, create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.tables import format_table

K = 10
DIM = 128
#: Both traversals share this tree (the test suite's configuration); the
#: node count — and with it the pointer-chasing overhead the flat layout
#: removes — grows as the capacity shrinks.
NODE_CAPACITY = 32
REPEATS = 3
#: Below this n, Python dispatch noise can mask the traversal gap; the
#: speedup assertions only apply at or above it.
MIN_ASSERT_N = 5000


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def _median_paired(first, second):
    """Median wall time of two callables over paired repeats (drift cancels)."""
    first_ms, second_ms = [], []
    for _ in range(REPEATS):
        first_ms.append(_timed(first))
        second_ms.append(_timed(second))
    return float(np.median(first_ms)), float(np.median(second_ms))


def test_bench_tree_traversal(write_result, benchmark):
    n = max(bench_n(), 400)
    num_queries = max(2 * bench_queries(), 30)
    data = gaussian_mixture(
        n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5)
    )
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=num_queries)]
        + rng.normal(size=(num_queries, DIM)) * 0.05
    )
    index = create_index(
        "pm-lsh", params=PMLSHParams(node_capacity=NODE_CAPACITY), seed=bench_seed(7)
    ).fit(data)

    # ---- section 1: the candidate fetch (the traversal itself) ----------
    projected = np.atleast_2d(index.projection.project(queries))
    budget = index.candidate_budget(K)
    probe_radius = index.solved.t * index._initial_radius(K)
    limits = np.full(num_queries, budget, dtype=np.int64)
    flat_tree = index.flat_tree

    def recursive_fetch():
        return [
            index.tree.range_query(pq, probe_radius, limit=budget) for pq in projected
        ]

    def flat_fetch():
        return flat_tree.batch_range(projected, probe_radius, limits=limits, sort=False)

    # Identical candidate sets are a precondition for timing to mean anything.
    lims, ids, dists, _ = flat_tree.batch_range(
        projected, probe_radius, limits=limits, sort=True
    )
    for i, matches in enumerate(recursive_fetch()):
        expected = sorted((d, pid) for pid, d in matches)
        got = list(zip(dists[lims[i] : lims[i + 1]], ids[lims[i] : lims[i + 1]]))
        assert len(expected) == len(got)
        assert all(e == g for e, g in zip(expected, got))
    fetch_recursive_ms, fetch_flat_ms = _median_paired(recursive_fetch, flat_fetch)
    fetch_speedup = fetch_recursive_ms / fetch_flat_ms

    # ---- section 2: end-to-end batch search under both traversals -------
    def flat_search():
        index.params = replace(index.params, traversal="flat")
        return index.search(queries, K)

    def recursive_search():
        index.params = replace(index.params, traversal="recursive")
        return index.search(queries, K)

    flat_batch = flat_search()
    recursive_batch = recursive_search()
    np.testing.assert_array_equal(flat_batch.ids, recursive_batch.ids)
    np.testing.assert_array_equal(flat_batch.distances, recursive_batch.distances)
    assert flat_batch.per_query_stats == recursive_batch.per_query_stats
    search_recursive_ms, search_flat_ms = _median_paired(
        recursive_search, flat_search
    )
    search_speedup = search_recursive_ms / search_flat_ms

    index.params = replace(index.params, traversal="flat")
    benchmark.pedantic(lambda: index.search(queries, K), rounds=3, iterations=1)

    levels = int(flat_batch.stats["tree_levels"])
    per_level = ", ".join(
        f"l{d}={flat_batch.stats[f'tree_visits_l{d}']:.1f}" for d in range(levels)
    )
    table = format_table(
        f"Flat vs recursive PM-tree traversal (PM-LSH batch kNN, n={n}, "
        f"Q={num_queries}, d={DIM}, k={K}, capacity={NODE_CAPACITY})",
        ["Phase", "Traversal", "Total (ms)", "Per query (ms)", "Speedup"],
        [
            ["candidate fetch", "recursive pointer tree", fetch_recursive_ms,
             fetch_recursive_ms / num_queries, 1.0],
            ["candidate fetch", "flat structure-of-arrays", fetch_flat_ms,
             fetch_flat_ms / num_queries, fetch_speedup],
            ["search()", "recursive pointer tree", search_recursive_ms,
             search_recursive_ms / num_queries, 1.0],
            ["search()", "flat structure-of-arrays", search_flat_ms,
             search_flat_ms / num_queries, search_speedup],
        ],
        note=(
            f"identical candidate sets and identical ids/distances/stats on "
            f"every query; candidate fetch = Algorithm 2 round-1 probe at "
            f"t*r_min capped at budget {budget}; tree height {levels}, mean "
            f"node visits/query {flat_batch.stats['tree_nodes']:.1f} "
            f"({per_level}), mean projected-distance computations/query "
            f"{flat_batch.stats['tree_dist_comps']:.1f}, median of {REPEATS} "
            f"paired repeats."
        ),
    )
    write_result("tree_traversal", table)

    if n >= MIN_ASSERT_N:
        assert fetch_speedup >= 2.0, (
            f"flat traversal ({fetch_flat_ms:.1f} ms) should fetch candidates "
            f">= 2x faster than the recursive tree ({fetch_recursive_ms:.1f} ms) "
            f"at n={n}"
        )
        assert search_speedup >= 1.2, (
            f"end-to-end flat search ({search_flat_ms:.1f} ms) should beat the "
            f"recursive traversal ({search_recursive_ms:.1f} ms) at n={n}"
        )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
