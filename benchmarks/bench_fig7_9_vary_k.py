"""Figs. 7–9 — query time / recall / overall ratio as k varies, on the
Cifar, Deep and Trevi emulations, for all six algorithms.

Reproduced shapes (§6.2, "Effect of k"):

* query time is roughly flat in k (the candidate budget βn + k barely
  moves);
* ratio drifts up and recall drifts down slightly as k grows;
* PM-LSH keeps the best quality profile across the sweep.
"""

from __future__ import annotations


from conftest import algorithm_factories  # noqa: I001 (script-mode sys.path bootstrap)

from repro.evaluation import run_query_set
from repro.evaluation.tables import format_series


K_VALUES = [1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
DATASETS = ["Cifar", "Deep", "Trevi"]


def test_fig7_9_vary_k(cache, write_result, benchmark):
    factories = algorithm_factories()
    tables = []
    summary = {}

    def sweep():
        tables.clear()
        for dataset in DATASETS:
            workload = cache.workload(dataset)
            ground_truth = cache.ground_truth(dataset, k_max=max(K_VALUES))
            indexes = {
                name: make(workload.data) for name, make in factories.items()
            }
            times = {name: [] for name in factories}
            recalls = {name: [] for name in factories}
            ratios = {name: [] for name in factories}
            for k in K_VALUES:
                for name, index in indexes.items():
                    result = run_query_set(index, workload.queries, k, ground_truth)
                    times[name].append(result.query_time_ms)
                    recalls[name].append(result.recall)
                    ratios[name].append(result.overall_ratio)
            summary[dataset] = (times, recalls, ratios)
            tables.append(
                format_series(
                    f"Fig 7-9 ({dataset}): query time (ms) vs k", "k", K_VALUES, times
                )
            )
            tables.append(
                format_series(
                    f"Fig 7-9 ({dataset}): recall vs k", "k", K_VALUES, recalls
                )
            )
            tables.append(
                format_series(
                    f"Fig 7-9 ({dataset}): overall ratio vs k", "k", K_VALUES, ratios
                )
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("fig7_9_vary_k", "\n".join(tables))

    for dataset in DATASETS:
        times, recalls, ratios = summary[dataset]
        # PM-LSH quality stays at the front of the pack at the default k=50.
        at_k50 = K_VALUES.index(50)
        pm_ratio = ratios["PM-LSH"][at_k50]
        for other in ("SRS", "Multi-Probe", "LScan"):
            assert pm_ratio <= ratios[other][at_k50] + 5e-3, (dataset, other)
        # Query time roughly flat in k for PM-LSH (paper: "relatively
        # steady"): the k=100 time is within a small factor of the k=10 one.
        assert times["PM-LSH"][K_VALUES.index(100)] < 3.0 * max(
            times["PM-LSH"][K_VALUES.index(10)], 0.1
        ), dataset
        # Ratio does not improve as k grows (weakly increasing trend).
        assert ratios["PM-LSH"][-1] >= ratios["PM-LSH"][0] - 5e-3, dataset


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
