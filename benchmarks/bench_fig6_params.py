"""Fig. 6 — PM-LSH parameter study on the Trevi emulation.

Two sweeps, as in §6.2's "Parameter Study on PM-LSH":

* number of pivots s ∈ {0, …, 9}: only query time can move, and it stays
  roughly flat (more pruning vs more ring checks cancel out);
* number of hash functions m ∈ {1, 5, 10, 15, 20, 25}: recall and ratio
  improve with m (more accurate distance estimation) while query time
  grows; the paper settles on m = 15 as the balance point.
"""

from __future__ import annotations


from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import PMLSHParams, create_index
from repro.evaluation import run_query_set
from repro.evaluation.tables import format_series


K = 50
S_VALUES = list(range(10))
M_VALUES = [1, 5, 10, 15, 20, 25]


def test_fig6_vary_pivots(cache, write_result, benchmark):
    workload = cache.workload("Trevi")
    ground_truth = cache.ground_truth("Trevi", k_max=K)
    times, recalls = [], []

    def sweep():
        times.clear()
        recalls.clear()
        for s in S_VALUES:
            params = PMLSHParams(num_pivots=s)
            index = create_index("pm-lsh", params=params, seed=bench_seed(7)).fit(workload.data)
            result = run_query_set(index, workload.queries, K, ground_truth)
            times.append(result.query_time_ms)
            recalls.append(result.recall)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series(
        "Fig 6(a): PM-LSH query time vs number of pivots s (Trevi)",
        "s", S_VALUES, {"time_ms": times, "recall": recalls},
        note="Paper shape: time roughly flat in s; quality unchanged.",
    )
    write_result("fig6_vary_s", text)

    # Shape: recall does not depend on s (collection semantics identical).
    assert max(recalls) - min(recalls) < 0.05
    # Time stays within a modest band rather than exploding with s.
    assert max(times) < 4.0 * min(times)


def test_fig6_vary_m(cache, write_result, benchmark):
    workload = cache.workload("Trevi")
    ground_truth = cache.ground_truth("Trevi", k_max=K)
    times, recalls, ratios = [], [], []
    # The paper's sweep varies m while holding the candidate budget at its
    # m = 15 level (otherwise Eq. 10 hands tiny m an enormous β and the
    # query degenerates to a near-full scan with trivially perfect recall).
    from repro.core.estimation import solve_parameters

    fixed_beta = solve_parameters(m=15, c=1.5).beta

    def sweep():
        times.clear()
        recalls.clear()
        ratios.clear()
        for m in M_VALUES:
            params = PMLSHParams(m=m, beta_override=fixed_beta)
            index = create_index("pm-lsh", params=params, seed=bench_seed(7)).fit(workload.data)
            result = run_query_set(index, workload.queries, K, ground_truth)
            times.append(result.query_time_ms)
            recalls.append(result.recall)
            ratios.append(result.overall_ratio)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series(
        "Fig 6(b-d): PM-LSH vs number of hash functions m (Trevi)",
        "m", M_VALUES, {"time_ms": times, "recall": recalls, "ratio": ratios},
        note="Budget fixed at the m=15 solve, as in the paper's study. "
        "Paper shape: recall rises and ratio falls with m.",
    )
    write_result("fig6_vary_m", text)

    # Shape: quality at m = 15 is decisively better than at m = 1.
    index_m1 = M_VALUES.index(1)
    index_m15 = M_VALUES.index(15)
    assert recalls[index_m15] > recalls[index_m1]
    assert ratios[index_m15] < ratios[index_m1]


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
