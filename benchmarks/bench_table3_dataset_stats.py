"""Table 3 — dataset statistics (n, d, HV, RC, LID).

Computes the hardness statistics of every emulated dataset and prints them
next to the paper's published values.  Because the emulations are seeded
synthetic stand-ins at reduced cardinality, the *absolute* numbers differ;
the shape requirements are:

* HV ≈ 1 on every dataset (the cost models and r_min selection rely on it);
* the hardness ordering matches the paper: NUS and GIST hard (large LID,
  small RC), Audio/Trevi easy (RC ≈ 3).
"""

from __future__ import annotations

from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro.datasets.registry import DATASET_SPECS, available_datasets
from repro.datasets.stats import dataset_statistics
from repro.evaluation.tables import format_table


def test_table3_dataset_stats(cache, write_result, benchmark):
    rows = []
    stats = {}

    def compute_all():
        rows.clear()
        for name in available_datasets():
            workload = cache.workload(name)
            spec = DATASET_SPECS[name]
            row = dataset_statistics(workload.data, seed=bench_seed(2))
            stats[name] = row
            rows.append(
                [
                    name, row.n, row.d,
                    row.hv, row.rc, row.lid,
                    spec.paper_hv, spec.paper_rc, spec.paper_lid,
                ]
            )
        return rows

    benchmark.pedantic(compute_all, rounds=1, iterations=1)
    table = format_table(
        "Table 3: Dataset statistics (emulated vs paper)",
        ["Dataset", "n", "d", "HV", "RC", "LID", "HV(paper)", "RC(paper)", "LID(paper)"],
        rows,
        note=(
            "Emulations are seeded synthetic stand-ins at reduced n; absolute "
            "values differ, the hardness ordering is the reproduced shape."
        ),
    )
    write_result("table3_dataset_stats", table)

    # Shape checks.
    for name, row in stats.items():
        assert row.hv > 0.85, f"HV collapsed on {name}"
    assert stats["NUS"].lid > stats["Audio"].lid
    assert stats["GIST"].lid > stats["Audio"].lid
    assert stats["NUS"].rc < stats["Audio"].rc
    assert stats["NUS"].rc < stats["Trevi"].rc


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
