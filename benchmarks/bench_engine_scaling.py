"""Engine scaling (beyond the paper: Algorithm 2 as a serving layer) — batch QPS vs shards/workers.

For a fixed PM-LSH-backed workload the bench sweeps (num_shards,
num_workers) configurations of ``create_index("sharded", ...)``, measures
batch-search throughput (median of paired repeats), checks quality stays
level (recall against exact ground truth), and writes the paper-style
table to ``results/engine_scaling.txt``.

Scale with ``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (see conftest).
The thread-pool fan-out only buys wall-clock speedup when the host has
cores to run shards on, and only once shards are big enough that their
GEMM-heavy searches dominate per-shard dispatch overhead — so the bench
always records the table, but enforces the multi-shard speedup only on a
multi-core host at n >= MIN_SCALING_N (the tiny CI smoke run stays a
smoke test, not a flaky performance gate on shared runners).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import bench_n, bench_queries, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.ground_truth import compute_ground_truth
from repro.evaluation.metrics import recall
from repro.evaluation.tables import format_table


K = 10
DIM = 64
REPEATS = 5
#: Below this dataset size per-shard dispatch overhead can mask the
#: parallel win; the speedup assertion only applies at or above it.
MIN_SCALING_N = 2000
#: (num_shards, num_workers) grid; (1, 1) is the unsharded baseline.
CONFIGS = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4)]


def _timed_search(engine, queries, k) -> float:
    start = time.perf_counter()
    engine.search(queries, k)
    return time.perf_counter() - start


def test_bench_engine_scaling(write_result, benchmark):
    n = max(bench_n(), 200)
    num_queries = max(4 * bench_queries(), 32)
    data = gaussian_mixture(n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5))
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=num_queries)]
        + rng.normal(size=(num_queries, DIM)) * 0.05
    )
    truth = compute_ground_truth(data, queries, k_max=K)

    rows = []
    qps_by_config = {}
    for shards, workers in CONFIGS:
        engine = create_index(
            "sharded",
            backend="pm-lsh",
            num_shards=shards,
            num_workers=workers,
            seed=bench_seed(7),
        ).fit(data)
        batch = engine.search(queries, K)  # warm-up + quality check
        recalls = [
            recall(batch.ids[i][batch.ids[i] >= 0], truth.for_query(i, K)[0], k=K)
            for i in range(num_queries)
        ]
        seconds = float(np.median([_timed_search(engine, queries, K) for _ in range(REPEATS)]))
        qps = num_queries / seconds
        qps_by_config[(shards, workers)] = qps
        rows.append(
            [
                shards,
                workers,
                seconds * 1e3,
                qps,
                qps / qps_by_config[(1, 1)],
                float(np.mean(recalls)),
                batch.stats["shard_time_ms_max"],
                batch.stats["merge_time_ms"],
            ]
        )
        engine.close()

    best = max(qps_by_config, key=qps_by_config.get)
    cores = os.cpu_count() or 1
    note = (
        f"backend=pm-lsh, n={n}, Q={num_queries}, d={DIM}, k={K}, "
        f"median of {REPEATS} repeats on {cores} core(s); best config "
        f"S={best[0]}/W={best[1]} at {qps_by_config[best]:.0f} QPS "
        f"({qps_by_config[best] / qps_by_config[(1, 1)]:.2f}x the 1-shard baseline)."
    )
    table = format_table(
        "Sharded engine scaling: batch QPS vs shards / workers",
        ["Shards", "Workers", "Batch (ms)", "QPS", "Speedup", "Recall", "Slowest shard (ms)", "Merge (ms)"],
        rows,
        note=note,
    )
    write_result("engine_scaling", table)

    engine = create_index(
        "sharded", backend="pm-lsh", num_shards=best[0], num_workers=best[1], seed=bench_seed(7)
    ).fit(data)
    benchmark.pedantic(lambda: engine.search(queries, K), rounds=3, iterations=1)
    engine.close()

    assert all(qps > 0 for qps in qps_by_config.values())
    # Quality must not collapse under sharding (same c, per-shard top-k merge).
    assert all(row[5] >= 0.5 for row in rows), "sharded recall collapsed"
    if cores > 1 and n >= MIN_SCALING_N:
        multi = max(
            qps for (shards, _), qps in qps_by_config.items() if shards > 1
        )
        assert multi > qps_by_config[(1, 1)], (
            f"multi-shard QPS ({multi:.0f}) should beat the 1-shard baseline "
            f"({qps_by_config[(1, 1)]:.0f}) on a {cores}-core host at n={n}"
        )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
