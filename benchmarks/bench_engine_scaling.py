"""Engine scaling (beyond the paper: Algorithm 2 as a serving layer) — batch QPS vs shards/workers.

For a fixed PM-LSH-backed workload the bench sweeps (num_shards,
num_workers) configurations of ``create_index("sharded", ...)`` under
**both** fan-out pools — the in-process thread pool and the
shared-memory worker pool (``pool_backend="process"``, PR 8) — measures
batch-search throughput (median of paired repeats), checks the two
pools return byte-identical results, checks quality stays level (recall
against exact ground truth), and writes the paper-style table to
``results/engine_scaling.txt``.

Scale with ``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (see conftest).
Either fan-out only buys wall-clock speedup when the host has cores to
run shards on, and only once shards are big enough that their GEMM-heavy
searches dominate dispatch overhead (thread) or query pickling and pipe
round-trips (process) — so the bench always records the table, but
enforces the multi-shard speedup only on a multi-core host at
n >= MIN_SCALING_N (the tiny CI smoke run stays a smoke test, not a
flaky performance gate on shared runners).  Identity, by contrast, is
asserted unconditionally: the process pool must return exactly what the
serial engine returns, ids and distances, on every config.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import bench_n, bench_queries, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.ground_truth import compute_ground_truth
from repro.evaluation.metrics import recall
from repro.evaluation.tables import format_table
from repro.parallel.shm import leaked_segments


K = 10
DIM = 64
REPEATS = 5
#: Below this dataset size fan-out overhead can mask the parallel win;
#: the speedup assertions only apply at or above it.
MIN_SCALING_N = 2000
#: (num_shards, num_workers) grid; (1, 1) is the unsharded baseline.
CONFIGS = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4)]
#: Required process-pool speedup over the serial baseline at the
#: (4, 4) config on a multi-core host (the PR's acceptance bar).
PROCESS_SPEEDUP_FLOOR = 2.0


def _timed_search(engine, queries, k) -> float:
    start = time.perf_counter()
    engine.search(queries, k)
    return time.perf_counter() - start


def test_bench_engine_scaling(write_result, write_json, benchmark):
    n = max(bench_n(), 200)
    num_queries = max(4 * bench_queries(), 32)
    data = gaussian_mixture(n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5))
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=num_queries)]
        + rng.normal(size=(num_queries, DIM)) * 0.05
    )
    truth = compute_ground_truth(data, queries, k_max=K)

    rows = []
    qps = {}  # (pool, shards, workers) -> QPS
    reference = None  # serial (1, 1) results: the identity oracle
    for shards, workers in CONFIGS:
        for pool in ("thread", "process"):
            engine = create_index(
                "sharded",
                backend="pm-lsh",
                pool_backend=pool,
                num_shards=shards,
                num_workers=workers,
                seed=bench_seed(7),
            ).fit(data)
            batch = engine.search(queries, K)  # warm-up + quality/identity check
            if reference is None:
                reference = batch
            np.testing.assert_array_equal(batch.ids, reference.ids)
            np.testing.assert_array_equal(batch.distances, reference.distances)
            recalls = [
                recall(batch.ids[i][batch.ids[i] >= 0], truth.for_query(i, K)[0], k=K)
                for i in range(num_queries)
            ]
            seconds = float(
                np.median([_timed_search(engine, queries, K) for _ in range(REPEATS)])
            )
            qps[(pool, shards, workers)] = num_queries / seconds
            rows.append(
                [
                    shards,
                    workers,
                    pool,
                    seconds * 1e3,
                    qps[(pool, shards, workers)],
                    qps[(pool, shards, workers)] / qps[("thread", 1, 1)],
                    float(np.mean(recalls)),
                    batch.stats["shard_time_ms_max"],
                    batch.stats["merge_time_ms"],
                ]
            )
            engine.close()
    assert leaked_segments() == (), "process pool leaked shared-memory segments"

    serial_qps = qps[("thread", 1, 1)]
    best = max(qps, key=qps.get)
    cores = os.cpu_count() or 1
    note = (
        f"backend=pm-lsh, n={n}, Q={num_queries}, d={DIM}, k={K}, "
        f"median of {REPEATS} repeats on {cores} core(s); best config "
        f"{best[0]} S={best[1]}/W={best[2]} at {qps[best]:.0f} QPS "
        f"({qps[best] / serial_qps:.2f}x the serial 1-shard baseline). "
        f"Both pools return byte-identical results on every config."
    )
    table = format_table(
        "Sharded engine scaling: batch QPS vs shards / workers / pool",
        ["Shards", "Workers", "Pool", "Batch (ms)", "QPS", "Speedup", "Recall", "Slowest shard (ms)", "Merge (ms)"],
        rows,
        note=note,
    )
    write_result("engine_scaling", table)
    write_json(
        "engine_scaling",
        {
            "n": n,
            "num_queries": num_queries,
            "dim": DIM,
            "k": K,
            "cores": cores,
            "serial_qps": serial_qps,
            "configs": [
                {
                    "pool": pool,
                    "shards": shards,
                    "workers": workers,
                    "qps": value,
                    "speedup": value / serial_qps,
                }
                for (pool, shards, workers), value in sorted(qps.items())
            ],
            "best": {"pool": best[0], "shards": best[1], "workers": best[2], "qps": qps[best]},
        },
    )

    engine = create_index(
        "sharded",
        backend="pm-lsh",
        pool_backend=best[0],
        num_shards=best[1],
        num_workers=best[2],
        seed=bench_seed(7),
    ).fit(data)
    benchmark.pedantic(lambda: engine.search(queries, K), rounds=3, iterations=1)
    engine.close()

    assert all(value > 0 for value in qps.values())
    # Quality must not collapse under sharding (same c, per-shard top-k merge).
    assert all(row[6] >= 0.5 for row in rows), "sharded recall collapsed"
    if cores > 1 and n >= MIN_SCALING_N:
        multi = max(
            value for (_, shards, _), value in qps.items() if shards > 1
        )
        assert multi > serial_qps, (
            f"multi-shard QPS ({multi:.0f}) should beat the 1-shard baseline "
            f"({serial_qps:.0f}) on a {cores}-core host at n={n}"
        )
        process_4x4 = qps[("process", 4, 4)]
        assert process_4x4 >= PROCESS_SPEEDUP_FLOOR * serial_qps, (
            f"process pool at 4 shards/4 workers reached only "
            f"{process_4x4 / serial_qps:.2f}x the serial baseline "
            f"(floor {PROCESS_SPEEDUP_FLOOR:.1f}x on a {cores}-core host at n={n})"
        )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
