"""Self-tuning serving (beyond the paper): adaptive batching vs every static knob pair, goodput under an SLO.

``results/serving.txt`` shows the best static ``(max_batch,
max_delay_ms)`` pair flips with load — narrow wins near capacity, wide
wins under overload — so static knobs cannot serve a bursty or diurnal
trace well at both ends.  This bench quantifies the gap the
:class:`~repro.serving.controller.AdaptiveBatchController` closes: the
same deterministic arrival traces are played against a grid of static
pairs *and* against the self-tuning server (controller + per-request
deadlines), and each cell is scored by **goodput under the SLO** —
answers delivered within budget per second of virtual makespan.

The whole bench runs in **virtual time**: the served index is wrapped in
a cost model charging ``base + per_row * rows`` seconds of *virtual*
service per batch (the measured shape of PM-LSH's batch amortization — a
fixed dispatch overhead shared by the rows), the executor runs batches
synchronously on the event loop, and arrivals advance an injected
:class:`~repro.serving.clock.VirtualClock`.  No wall-clock sleeps, no
load sensitivity: every number in the table is bit-identical on every
run and every host, which is what lets the acceptance assertion —
adaptive goodput >= the best static pair at 1x AND 4x offered load on
the bursty trace — gate CI without flaking.

Two traces at each load factor:

* **bursty** — a square wave alternating 4x-mean bursts with deep lulls
  (phase length 40 requests);
* **diurnal** — a smooth sinusoidal rate swing (0.55x..1.45x the mean).

Writes ``results/serving_adaptive.txt``.  Scale with
``REPRO_BENCH_QUERIES`` (requests per cell); the virtual cost model is
fixed, so scaling changes resolution, not the story.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from concurrent.futures import Executor

import numpy as np

from conftest import (  # noqa: I001 (script-mode sys.path bootstrap)
    bench_n,
    bench_queries,
    bench_seed,
    write_metrics,
)

from repro import Knn, MetricsRegistry, create_index
from repro.evaluation.tables import format_table
from repro.serving import (
    AdaptiveBatchController,
    AsyncSearchServer,
    ControllerConfig,
    ServingRejected,
    VirtualClock,
)

K = 10
DIM = 16
#: Virtual cost model: a batch of B rows takes BASE_S + PER_ROW_S * B
#: seconds of service, so batch-1 capacity is ~488 req/s.
BASE_S = 2.0e-3
PER_ROW_S = 5.0e-5
CAPACITY = 1.0 / (BASE_S + PER_ROW_S)
#: Every request's latency budget; also the goodput SLO.
SLO_MS = 6.0
#: (label, max_batch, max_delay_ms) static grid; the adaptive row starts
#: from the middle pair and tunes itself.
STATIC_CONFIGS = [
    ("static 1 / 0 ms", 1, 0.0),
    ("static 8 / 2 ms", 8, 2.0),
    ("static 32 / 4 ms", 32, 4.0),
    ("static 64 / 8 ms", 64, 8.0),
]
ADAPTIVE_LABEL = "adaptive (8 / 2 ms start)"
LOAD_FACTORS = [1.0, 4.0]


# ----------------------------------------------------------------------
# virtual-time machinery (benchmarks/ is script-mode, not a package, so
# this mirrors tests/serving/_clock.py rather than importing it)
# ----------------------------------------------------------------------


class _ImmediateExecutor(Executor):
    """Runs each job synchronously at submit time: the whole server stays
    on the event-loop thread, so the virtual clock fully orders it."""

    def submit(self, fn, *args, **kwargs):
        future: "concurrent.futures.Future" = concurrent.futures.Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:
            future.set_exception(exc)
        return future


class _CostedIndex:
    """Index wrapper charging the virtual cost model inside ``run()``.

    Safe because the executor above keeps ``run()`` on the event-loop
    thread: advancing the clock mid-dispatch is exactly a long batch
    pushing later deadline timers past due.
    """

    def __init__(self, index, clock: VirtualClock) -> None:
        self._index = index
        self._clock = clock

    def run(self, queries, spec):
        rows = int(np.atleast_2d(queries).shape[0])
        result = self._index.run(queries, spec)
        self._clock.advance(BASE_S + PER_ROW_S * rows)
        return result

    def __getattr__(self, name):
        return getattr(self._index, name)


async def _settle(turns: int = 3) -> None:
    for _ in range(turns):
        await asyncio.sleep(0)


def bursty_schedule(n: int, load: float, *, phase: int = 40) -> np.ndarray:
    """Square-wave gaps (0.25x / 1.75x the mean) averaging ``load * CAPACITY``.

    Phases are counted from the *end* so the trace always closes on a
    burst regardless of ``n`` — the regime where queueing discipline
    (how fast the final backlog clears) decides the makespan, rather
    than a lull whose tail every config coasts through identically.
    """
    mean_gap = 1.0 / (load * CAPACITY)
    burst = ((n - 1 - np.arange(n)) // phase) % 2 == 0
    return np.cumsum(np.where(burst, 0.25 * mean_gap, 1.75 * mean_gap))


def diurnal_schedule(n: int, load: float) -> np.ndarray:
    """Sinusoidal gaps (rate swings 0.55x..1.45x the mean over two cycles)."""
    mean_gap = 1.0 / (load * CAPACITY)
    rate_scale = 1.0 + 0.45 * np.sin(np.linspace(0.0, 4.0 * np.pi, n))
    return np.cumsum(mean_gap / rate_scale)


async def _drive(server, clock, schedule, queries):
    """Submit each query at its scheduled virtual instant (or immediately
    when service already pushed the clock past it — that *is* backlog);
    returns per-request submit times and outcomes."""
    tasks, submit_at = [], []
    for at_s, query in zip(schedule, queries):
        if float(at_s) > clock.now():
            clock.advance_to(float(at_s))
        await _settle()
        submit_at.append(clock.now())
        tasks.append(
            asyncio.ensure_future(server.submit(query, Knn(k=K), deadline_ms=SLO_MS))
        )
        await _settle()
    clock.advance(1.0)  # fire every remaining deadline timer
    await _settle(10)
    outcomes = list(await asyncio.gather(*tasks, return_exceptions=True))
    await server.close()
    return submit_at, outcomes


def _score(submit_at, outcomes):
    """Goodput under the SLO plus the shed/violation breakdown.

    A delivered answer's latency is its recorded batch wait plus its
    batch's virtual service cost — the same seconds the clock charged.
    """
    in_slo = over_slo = shed = 0
    completions = []
    for t0, outcome in zip(submit_at, outcomes):
        if isinstance(outcome, BaseException):
            assert isinstance(outcome, ServingRejected), outcome
            shed += 1
            continue
        batch = outcome.stats["serving_batch_size"]
        latency_ms = outcome.stats["serving_wait_ms"] + (BASE_S + PER_ROW_S * batch) * 1e3
        completions.append(t0 + latency_ms / 1e3)
        if latency_ms <= SLO_MS + 1e-9:
            in_slo += 1
        else:
            over_slo += 1
    makespan = max(completions) - submit_at[0]
    return {
        "goodput": in_slo / makespan,
        "in_slo": in_slo,
        "over_slo": over_slo,
        "shed": shed,
        "makespan_s": makespan,
    }


def _controller() -> AdaptiveBatchController:
    return AdaptiveBatchController(
        ControllerConfig(
            # Keep a toehold of coalescing: at a window of one the
            # occupancy/flush signals degenerate (every batch is "full"
            # at exactly one request), leaving the controller nothing to
            # steer by when the next burst lands.
            min_batch=4,
            max_batch=32,
            min_delay_ms=0.5,
            max_delay_ms=2.0,
            interval_ms=5.0,
            hysteresis=2,
            increase_step=8,
            # Idle means literally singleton deadline batches: a lull that
            # still exceeds batch-1 capacity must keep amortizing, not
            # narrow itself into the backlog.
            idle_occupancy=0.12,
            slo_ms=SLO_MS,
        ),
        initial_batch=8,
        initial_delay_ms=2.0,
    )


def _run_cell(data, queries, schedule, *, max_batch, max_delay_ms, adaptive, registry):
    async def cell():
        clock = VirtualClock()
        index = _CostedIndex(create_index("exact").fit(data), clock)
        server = AsyncSearchServer(
            index,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            executor=_ImmediateExecutor(),
            clock=clock,
            metrics=registry if registry is not None else MetricsRegistry(),
            controller=_controller() if adaptive else None,
        )
        submit_at, outcomes = await _drive(server, clock, schedule, queries)
        score = _score(submit_at, outcomes)
        stats = server.stats()
        score["occupancy"] = stats.mean_occupancy
        score["window"] = stats.controller_window
        score["delay_ms"] = stats.controller_delay_ms
        score["adjustments"] = stats.controller_adjustments
        return score

    return asyncio.run(cell())


def test_bench_serving_adaptive(write_result, write_json, benchmark):
    n = max(min(bench_n(), 1200), 300)
    requests = min(max(40 * bench_queries(), 240), 1200)
    rng = np.random.default_rng(bench_seed(17))
    data = rng.normal(size=(n, DIM))
    queries = rng.normal(size=(requests, DIM))
    registry = MetricsRegistry()

    traces = {"bursty": bursty_schedule, "diurnal": diurnal_schedule}
    rows = []
    cells = {}
    for trace_name, schedule_fn in traces.items():
        for factor in LOAD_FACTORS:
            schedule = schedule_fn(requests, factor)
            for label, max_batch, max_delay_ms in STATIC_CONFIGS:
                cells[(trace_name, factor, label)] = _run_cell(
                    data,
                    queries,
                    schedule,
                    max_batch=max_batch,
                    max_delay_ms=max_delay_ms,
                    adaptive=False,
                    registry=None,
                )
            cells[(trace_name, factor, ADAPTIVE_LABEL)] = _run_cell(
                data,
                queries,
                schedule,
                max_batch=8,
                max_delay_ms=2.0,
                adaptive=True,
                registry=registry,
            )
            for label in [*(c[0] for c in STATIC_CONFIGS), ADAPTIVE_LABEL]:
                score = cells[(trace_name, factor, label)]
                rows.append(
                    [
                        trace_name,
                        factor,
                        label,
                        score["goodput"],
                        score["in_slo"],
                        score["over_slo"],
                        score["shed"],
                        score["occupancy"],
                        (
                            f"{score['window']:.0f} / {score['delay_ms']:.2g} ms"
                            if label == ADAPTIVE_LABEL
                            else "-"
                        ),
                    ]
                )

    def best_static(trace_name, factor):
        return max(
            ((label, cells[(trace_name, factor, label)]["goodput"]) for label, _, _ in STATIC_CONFIGS),
            key=lambda pair: pair[1],
        )

    margins = {}
    for factor in LOAD_FACTORS:
        label, best = best_static("bursty", factor)
        adaptive = cells[("bursty", factor, ADAPTIVE_LABEL)]["goodput"]
        margins[factor] = (label, best, adaptive)

    note = (
        f"virtual cost model base={BASE_S * 1e3:.1f} ms + {PER_ROW_S * 1e3:.2g} ms/row "
        f"(batch-1 capacity {CAPACITY:.0f} req/s), SLO = deadline = {SLO_MS:.0f} ms, "
        f"{requests} requests per cell, fully deterministic (virtual clock). "
        + " ".join(
            f"Bursty {factor:.0f}x: adaptive {margins[factor][2]:.0f}/s vs best static "
            f"{margins[factor][1]:.0f}/s ({margins[factor][0]})."
            for factor in LOAD_FACTORS
        )
    )
    table = format_table(
        "Self-tuning serving: goodput under SLO, adaptive vs static knob grid",
        [
            "Trace",
            "Load",
            "Config",
            "Goodput (/s)",
            "In SLO",
            "Over SLO",
            "Shed",
            "Occupancy",
            "Final window",
        ],
        rows,
        note=note,
    )
    write_result("serving_adaptive", table)
    write_json(
        "serving_adaptive",
        {
            "base_s": BASE_S,
            "per_row_s": PER_ROW_S,
            "capacity_req_per_s": CAPACITY,
            "slo_ms": SLO_MS,
            "requests_per_cell": requests,
            "cells": [
                {
                    "trace": trace_name,
                    "load_factor": factor,
                    "config": label,
                    **{
                        key: value
                        for key, value in score.items()
                        if key != "window" or label == ADAPTIVE_LABEL
                    },
                }
                for (trace_name, factor, label), score in cells.items()
            ],
            "bursty_margins": {
                str(factor): {
                    "best_static": margins[factor][0],
                    "best_static_goodput": margins[factor][1],
                    "adaptive_goodput": margins[factor][2],
                }
                for factor in LOAD_FACTORS
            },
        },
    )
    write_metrics(registry)

    benchmark.pedantic(
        lambda: _run_cell(
            data,
            queries,
            bursty_schedule(requests, LOAD_FACTORS[-1]),
            max_batch=8,
            max_delay_ms=2.0,
            adaptive=True,
            registry=None,
        ),
        rounds=1,
        iterations=1,
    )

    # The acceptance criterion: on the bursty trace the self-tuning
    # server's goodput under the SLO is at least the best static pair's —
    # at BOTH ends of the load range.  Deterministic, so no tolerance.
    for factor in LOAD_FACTORS:
        label, best, adaptive = margins[factor]
        assert adaptive >= best, (
            f"adaptive goodput {adaptive:.1f}/s fell below the best static "
            f"pair {label} ({best:.1f}/s) at {factor:.0f}x load"
        )
    # The controller must have actually moved the knobs, both directions
    # across the grid of cells (quiet-idle narrows, overload widens).
    assert any(
        cells[(trace, factor, ADAPTIVE_LABEL)]["adjustments"] > 0
        for trace in traces
        for factor in LOAD_FACTORS
    )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
