"""Table 2 — estimated computation cost (CC) of PM-tree vs R-tree.

Reproduces §4.2's model comparison: both trees are built over the m = 15
dimensional projection of every emulated dataset with node capacity 16, the
query radius is chosen to return ~8 % of the points, and the expected
number of distance computations is evaluated with Eqs. 6–7 (PM-tree) and
Eq. 9 (R-tree).  The paper reports reductions of 5–46 %; the reproduced
shape to check is `PM-tree CC < R-tree CC` on every dataset.

An empirical pair of columns measures the live distance-computation
counters on the same range queries, validating the model against reality
(the in-text claim accompanying Table 2).
"""

from __future__ import annotations

import numpy as np

from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro.core.hashing import GaussianProjection
from repro.costmodel import (
    compare_trees,
    selectivity_radius,
)
from repro.datasets import MarginalDistribution, sample_distance_distribution
from repro.datasets.registry import available_datasets
from repro.evaluation.tables import format_table
from repro.pmtree import PMTree
from repro.rtree import RTree


#: Paper's Table 2 settings.
M_PROJECTIONS = 15
NODE_CAPACITY = 16
SELECTIVITY = 0.08

#: Paper-reported reductions for reference in the output table.
PAPER_REDUCTION = {
    "Audio": 0.06, "Cifar": 0.36, "MNIST": 0.04, "Trevi": 0.46,
    "NUS": 0.20, "GIST": 0.17, "Deep": 0.05,
}


def _build_setup(cache, name):
    workload = cache.workload(name)
    projection = GaussianProjection(workload.d, M_PROJECTIONS, seed=bench_seed(3))
    projected = projection.project(workload.data)
    pm_tree = PMTree.build(projected, num_pivots=5, capacity=NODE_CAPACITY, seed=bench_seed(4))
    r_tree = RTree.build(projected, capacity=NODE_CAPACITY)
    distribution = sample_distance_distribution(projected, num_pairs=30_000, seed=bench_seed(5))
    marginals = MarginalDistribution.from_points(projected)
    radius = selectivity_radius(distribution, SELECTIVITY)
    return projected, pm_tree, r_tree, distribution, marginals, radius


def test_table2_costmodel(cache, write_result, benchmark):
    rows = []
    all_reductions = {}
    setups = {name: _build_setup(cache, name) for name in available_datasets()}

    def evaluate_models():
        rows.clear()
        for name, (projected, pm_tree, r_tree, distribution, marginals, radius) in setups.items():
            comparison = compare_trees(
                name, pm_tree, r_tree, distribution, marginals, radius
            )
            # Empirical counters on live range queries at the same radius.
            rng = np.random.default_rng(bench_seed(6))
            pm_tree.reset_counters()
            r_tree.reset_counters()
            trials = 10
            for _ in range(trials):
                query = projected[rng.integers(0, projected.shape[0])]
                pm_tree.range_query(query, radius)
                r_tree.range_query(query, radius)
            measured_pm = pm_tree.distance_computations / trials
            measured_rt = r_tree.distance_computations / trials
            all_reductions[name] = comparison.reduction
            rows.append(
                [
                    name,
                    comparison.pm_tree_cost,
                    comparison.r_tree_cost,
                    f"{comparison.reduction:.0%}",
                    measured_pm,
                    measured_rt,
                    f"{1 - measured_pm / max(measured_rt, 1e-9):.0%}",
                    f"{PAPER_REDUCTION[name]:.0%}",
                ]
            )
        return rows

    benchmark.pedantic(evaluate_models, rounds=1, iterations=1)
    table = format_table(
        "Table 2: Computation Cost (CC) of PM-tree and R-tree",
        [
            "Dataset", "PM-tree CC", "R-tree CC", "Model reduction",
            "PM measured", "R measured", "Measured reduction", "Paper reduction",
        ],
        rows,
        note=(
            "Model columns: Eqs. 6-7 vs Eq. 9 at ~8% selectivity, capacity "
            f"{NODE_CAPACITY}, m={M_PROJECTIONS}.  Measured columns: live "
            "distance-computation counters on the same range queries."
        ),
    )
    write_result("table2_costmodel", table)

    # Shape check: PM-tree is cheaper on every dataset (paper: 5-46%).
    for name, reduction in all_reductions.items():
        assert reduction > 0.0, f"PM-tree not cheaper on {name}"


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
