"""Range-query and closest-pair bench — the VLDBJ extension's workloads (arXiv:2107.05537).

For a fixed clustered workload the bench:

* sweeps ball radii chosen as quantiles of the pairwise-distance
  distribution, comparing PM-LSH's native (r, c)-ball path against the
  exact brute-force reference on recall, candidates scanned and QPS;
* times ``closest_pairs(m)`` for PM-LSH's projected-space self-join vs
  the exact self-join, recording the rank-wise distance ratio and the
  exact-pair overlap.

Writes the paper-style table to ``results/range_cp.txt``.  Scale with
``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (see conftest).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_n, bench_queries, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import create_index
from repro.datasets.distance import sample_distance_distribution
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.ground_truth import (
    compute_closest_pairs_ground_truth,
    compute_range_ground_truth,
)
from repro.evaluation.harness import evaluate_closest_pairs, run_range_query_set
from repro.evaluation.tables import format_table


DIM = 64
CP_M = 10
#: Ball radii as quantiles of F(x): selective, moderate, dense.
RADIUS_QUANTILES = [0.01, 0.05, 0.15]


def _timed_range(index, queries, radius) -> float:
    start = time.perf_counter()
    index.range_search(queries, radius)
    return time.perf_counter() - start


def test_bench_range_cp(write_result, benchmark):
    n = max(bench_n(), 200)
    num_queries = max(bench_queries(), 8)
    data = gaussian_mixture(n, DIM, num_clusters=20, cluster_std=0.8, seed=bench_seed(11))
    rng = np.random.default_rng(bench_seed(1))
    queries = (
        data[rng.integers(0, n, size=num_queries)]
        + rng.normal(size=(num_queries, DIM)) * 0.05
    )
    distribution = sample_distance_distribution(data, num_pairs=20_000, seed=bench_seed(2))

    exact = create_index("exact").fit(data)
    pm = create_index("pm-lsh", seed=bench_seed(7)).fit(data)

    rows = []
    for quantile in RADIUS_QUANTILES:
        radius = distribution.quantile(quantile)
        truth = compute_range_ground_truth(data, queries, radius)
        for label, index in (("Exact", exact), ("PM-LSH", pm)):
            outcome = run_range_query_set(index, queries, radius, truth)
            seconds = _timed_range(index, queries, radius)
            rows.append(
                [
                    label,
                    radius,
                    quantile,
                    float(truth.counts.mean()),
                    outcome.recall,
                    outcome.precision,
                    outcome.extra.get("mean_candidates", float(n)),
                    num_queries / seconds,
                ]
            )

    cp_truth = compute_closest_pairs_ground_truth(data, CP_M)
    cp_rows = []
    for label, index in (("Exact", exact), ("PM-LSH", pm)):
        outcome = evaluate_closest_pairs(index, CP_M, cp_truth)
        cp_rows.append(
            [label, CP_M, outcome.time_ms, outcome.ratio, outcome.overlap]
        )

    range_table = format_table(
        "(r, c)-ball range queries: recall / candidates / QPS vs exact",
        ["Index", "Radius", "F-quant", "Ball size", "Recall", "Precision", "Cand/query", "QPS"],
        rows,
        note=f"n={n}, Q={num_queries}, d={DIM}, c=1.5 (PM-LSH native path)",
    )
    cp_table = format_table(
        f"Closest-pair search (m={CP_M}): time / ratio / overlap vs exact",
        ["Index", "m", "Time (ms)", "Ratio", "Overlap"],
        cp_rows,
        note="PM-LSH = projected-space self-join; Exact = O(n^2) self-join",
    )
    write_result("range_cp", range_table + "\n\n" + cp_table)

    benchmark.pedantic(
        lambda: pm.range_search(queries, distribution.quantile(0.05)),
        rounds=3,
        iterations=1,
    )

    pm_rows = [row for row in rows if row[0] == "PM-LSH"]
    # The native path must hold the (r, c) recall promise while scanning
    # fewer candidates than the brute-force reference on *selective* balls
    # (a ball holding ~15% of a tiny smoke dataset legitimately needs a
    # near-linear candidate budget, so only the selective radii gate).
    assert all(row[4] >= 0.9 for row in pm_rows), "PM-LSH range recall fell below 0.9"
    assert all(
        row[6] < n for row in pm_rows if row[2] <= 0.05
    ), "PM-LSH scanned every point on a selective ball"
    cp_pm = cp_rows[1]
    assert cp_pm[3] <= 1.5, "PM-LSH closest-pair ratio collapsed"


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
