"""Kernel dispatch micro-bench — reference vs fast backend on every hot path.

One workload per dispatched hot kernel, each timed under
``REPRO_KERNELS=numpy`` (the reference backend) and ``fast``, with byte
identity between the two asserted before any timing — the fast backend
is only allowed to change speed, never a bit.  Four sections:

* **fused traversal + verification** — ``FlatPMTree.batch_range`` with a
  per-query budget, the Eq. 5 frontier mask fused with the alive-masked
  leaf verification and (under ``fast``) the chunked admission pass.
  This is the tentpole kernel; it must win by >= 1.5x at the acceptance
  scale (``--n 50000``, d = 128).
* **end-to-end PM-LSH search** — ``index.search(queries, k)`` under both
  backends; adds the original-space verification and the shared Python
  bookkeeping, so the speedup is smaller than the kernel's own.
* **structured hashing** — ``sampled_project`` (the FastLSH-style
  ``hash_family="sampled"`` projection) reference vs fast, with the
  dense Gaussian GEMM timed alongside for honest context: the sampled
  family computes fewer flops per hash but only the chunked-gather fast
  twin turns that into wall-clock; the dense BLAS GEMM remains the
  fastest projection at these shapes.
* **baseline batch paths** — E2LSH / QALSH / C2LSH / LSB-Forest batched
  kNN (the ``fast``-only ``_run_knn`` paths) against their per-query
  loops, fresh same-seed indexes per mode so rng-consuming fallbacks
  cannot drift.

Speedup assertions are enforced from n >= 5000 so the tiny CI smoke run
stays a smoke test — but the identity assertions always run, at every
size.  The table lands in ``results/kernels.txt``; headline numbers go
to ``BENCH_kernels.json`` under ``--json``.
"""

from __future__ import annotations

import time

import numpy as np


from conftest import bench_n, bench_queries, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import PMLSHParams, create_index, kernels
from repro.core.hashing import GaussianProjection, SampledProjection
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.tables import format_table

K = 10
DIM = 128
NODE_CAPACITY = 32
REPEATS = 3
#: Below this n, Python dispatch noise can mask the kernel gap; the
#: speedup assertions only apply at or above it.
MIN_ASSERT_N = 5000
#: The fused kernel's gap widens with n (chunked admission prunes more
#: the deeper the candidate pools get): ~1.45x at n=8000, ~1.96x at
#: n=50000.  The 1.5x floor applies from the acceptance scale up.
ACCEPT_N = 40000
#: The baseline loops are O(n) python per query; cap their section so the
#: acceptance-scale run stays minutes, not hours.
BASELINE_MAX_N = 20000
BASELINE_DIM = 64

#: Baseline registry entries with a ``fast``-only batch kNN path.
BASELINES = {
    "e2lsh": {},
    "qalsh": {},
    "c2lsh": {},
    "lsb-forest": {"num_trees": 3, "m": 6},
}


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def _median_paired(first, second):
    """Median wall time of two callables over paired repeats (drift cancels)."""
    first_ms, second_ms = [], []
    for _ in range(REPEATS):
        first_ms.append(_timed(first))
        second_ms.append(_timed(second))
    return float(np.median(first_ms)), float(np.median(second_ms))


def _assert_identical(got, want, label: str) -> None:
    for g, w in zip(got, want):
        g, w = np.asarray(g), np.asarray(w)
        assert g.dtype == w.dtype, label
        assert g.shape == w.shape, label
        assert g.tobytes() == w.tobytes(), label


def test_bench_kernels(write_result, write_json, benchmark):
    n = max(bench_n(), 400)
    num_queries = max(2 * bench_queries(), 30)
    data = gaussian_mixture(
        n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5)
    )
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=num_queries)]
        + rng.normal(size=(num_queries, DIM)) * 0.05
    )
    index = create_index(
        "pm-lsh", params=PMLSHParams(node_capacity=NODE_CAPACITY), seed=bench_seed(7)
    ).fit(data)
    rows = []
    json_kernels = {}

    # ---- section 1: fused traversal-verification kernel -----------------
    projected = np.atleast_2d(index.projection.project(queries))
    budget = index.candidate_budget(K)
    probe_radius = index.solved.t * index._initial_radius(K)
    limits = np.full(num_queries, budget, dtype=np.int64)
    flat_tree = index.flat_tree

    def fetch(mode):
        with kernels.use_backend(mode):
            lims, ids, dists, _ = flat_tree.batch_range(
                projected, probe_radius, limits=limits, sort=True
            )
        return lims, ids, dists

    _assert_identical(fetch("fast"), fetch("numpy"), "batch_range")
    fetch_ref_ms, fetch_fast_ms = _median_paired(
        lambda: fetch("numpy"), lambda: fetch("fast")
    )
    fetch_speedup = fetch_ref_ms / fetch_fast_ms
    rows.append(["fused traversal+verify", "batch_range", fetch_ref_ms,
                 fetch_fast_ms, fetch_speedup])
    json_kernels["batch_range"] = {
        "numpy_ms": fetch_ref_ms, "fast_ms": fetch_fast_ms,
        "speedup": fetch_speedup,
    }

    # ---- section 2: end-to-end PM-LSH search ----------------------------
    def search(mode):
        with kernels.use_backend(mode):
            return index.search(queries, K)

    ref_batch, fast_batch = search("numpy"), search("fast")
    _assert_identical(
        (fast_batch.ids, fast_batch.distances),
        (ref_batch.ids, ref_batch.distances),
        "search",
    )
    search_ref_ms, search_fast_ms = _median_paired(
        lambda: search("numpy"), lambda: search("fast")
    )
    search_speedup = search_ref_ms / search_fast_ms
    rows.append(["end-to-end kNN", "index.search", search_ref_ms,
                 search_fast_ms, search_speedup])
    json_kernels["search"] = {
        "numpy_ms": search_ref_ms, "fast_ms": search_fast_ms,
        "speedup": search_speedup,
    }

    benchmark.pedantic(lambda: search("fast"), rounds=3, iterations=1)

    # ---- section 3: structured hashing ----------------------------------
    sampled = SampledProjection(DIM, 15, seed=bench_seed(11))
    dense = GaussianProjection(DIM, 15, seed=bench_seed(11))

    def project(mode):
        with kernels.use_backend(mode):
            return (sampled.project(data),)

    _assert_identical(project("fast"), project("numpy"), "sampled_project")
    proj_ref_ms, proj_fast_ms = _median_paired(
        lambda: project("numpy"), lambda: project("fast")
    )
    proj_speedup = proj_ref_ms / proj_fast_ms
    dense_ms = float(np.median([_timed(lambda: dense.project(data))
                                for _ in range(REPEATS)]))
    rows.append(["sampled hashing", "sampled_project", proj_ref_ms,
                 proj_fast_ms, proj_speedup])
    rows.append(["dense hashing (context)", "BLAS GEMM", dense_ms, dense_ms, 1.0])
    json_kernels["sampled_project"] = {
        "numpy_ms": proj_ref_ms, "fast_ms": proj_fast_ms,
        "speedup": proj_speedup, "dense_gemm_ms": dense_ms,
    }

    # ---- section 4: baseline batch paths --------------------------------
    base_n = min(n, BASELINE_MAX_N)
    base_data = gaussian_mixture(
        base_n, BASELINE_DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(6)
    )
    base_queries = (
        base_data[rng.integers(0, base_n, size=num_queries)]
        + rng.normal(size=(num_queries, BASELINE_DIM)) * 0.05
    )
    from repro.queries import Knn

    for name, extra in BASELINES.items():
        # Fresh same-seed indexes per dispatch mode: the rng-consuming
        # fallback paths would otherwise drift between loop and batch.
        per_mode = {}
        for mode in ("numpy", "fast"):
            with kernels.use_backend(mode):
                per_mode[mode] = create_index(name, seed=3, **extra).fit(base_data)

        def loop_run(idx=per_mode["numpy"]):
            with kernels.use_backend("numpy"):
                return idx.run(base_queries, Knn(k=K))

        def batch_run(idx=per_mode["fast"]):
            with kernels.use_backend("fast"):
                return idx.run(base_queries, Knn(k=K))

        loop_res, batch_res = loop_run(), batch_run()
        _assert_identical(
            (batch_res.ids, batch_res.distances),
            (loop_res.ids, loop_res.distances),
            name,
        )
        loop_ms, batch_ms = _median_paired(loop_run, batch_run)
        speedup = loop_ms / batch_ms
        rows.append([f"{name} batch kNN", "loop vs batch", loop_ms, batch_ms, speedup])
        json_kernels[f"baseline_{name}"] = {
            "numpy_ms": loop_ms, "fast_ms": batch_ms, "speedup": speedup,
        }

    table = format_table(
        f"Kernel dispatch: reference (numpy) vs fast backend (n={n}, "
        f"Q={num_queries}, d={DIM}, k={K}; baselines n={base_n}, d={BASELINE_DIM})",
        ["Workload", "Kernel", "numpy (ms)", "fast (ms)", "Speedup"],
        rows,
        note=(
            f"byte identity asserted for every pairing before timing (ids, "
            f"distances, lims); baselines use fresh same-seed indexes per "
            f"dispatch mode; dense GEMM row is context for the sampled "
            f"family, not a dispatched kernel; median of {REPEATS} paired "
            f"repeats."
        ),
    )
    write_result("kernels", table)
    write_json(
        "kernels",
        {
            "n": n,
            "num_queries": num_queries,
            "dim": DIM,
            "k": K,
            "baseline_n": base_n,
            "baseline_dim": BASELINE_DIM,
            "kernels": json_kernels,
        },
    )

    if n >= MIN_ASSERT_N:
        floor = 1.5 if n >= ACCEPT_N else 1.2
        assert fetch_speedup >= floor, (
            f"fast fused traversal-verification kernel ({fetch_fast_ms:.1f} ms) "
            f"should beat the reference ({fetch_ref_ms:.1f} ms) by >= {floor}x "
            f"at n={n}"
        )
        assert proj_speedup >= 2.0, (
            f"fast chunked-gather sampled projection ({proj_fast_ms:.1f} ms) "
            f"should beat the reference fancy-index path ({proj_ref_ms:.1f} ms) "
            f"by >= 2x at n={n}"
        )
        assert search_speedup >= 1.05, (
            f"end-to-end fast search ({search_fast_ms:.1f} ms) should beat the "
            f"reference backend ({search_ref_ms:.1f} ms) at n={n}"
        )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
