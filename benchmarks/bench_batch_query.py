"""Micro-benchmark (Algorithm 2, batched) — first-class batch queries vs the per-query loop.

The unified API answers a whole ``(Q, d)`` query matrix through
``index.search(queries, k)``.  For PM-LSH the batch path projects every
query in one GEMM, walks the *flattened* PM-tree once per
radius-enlarging round for the whole batch (instead of one pointer-tree
walk per query), and verifies each round's candidates with one gathered
kernel — while returning *exactly* the ids/distances of a per-query
``query()`` loop.  This bench records per-query latency of both paths on
a (100, 128) query set and asserts the batch path wins.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_n, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.tables import format_table


K = 10
NUM_QUERIES = 100
DIM = 128
REPEATS = 5


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def test_bench_batch_query(write_result, benchmark):
    n = max(bench_n(), 1000)
    data = gaussian_mixture(n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5))
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=NUM_QUERIES)]
        + rng.normal(size=(NUM_QUERIES, DIM)) * 0.05
    )
    index = create_index("pm-lsh", seed=bench_seed(7)).fit(data)

    # The two paths must agree exactly before timing means anything.
    batch = index.search(queries, K)
    for i, q in enumerate(queries):
        single = index.query(q, K)
        np.testing.assert_array_equal(batch.ids[i][: len(single)], single.ids)

    # Paired repeats: each trial times both paths back to back, so machine
    # drift cancels in the per-trial ratio.
    loop_ms, batch_ms = [], []
    for _ in range(REPEATS):
        loop_ms.append(_timed(lambda: [index.query(q, K) for q in queries]))
        batch_ms.append(_timed(lambda: index.search(queries, K)))
    loop_med = float(np.median(loop_ms))
    batch_med = float(np.median(batch_ms))

    benchmark.pedantic(lambda: index.search(queries, K), rounds=3, iterations=1)

    table = format_table(
        f"Batch search vs per-query loop (PM-LSH, n={n}, Q={NUM_QUERIES}, "
        f"d={DIM}, k={K})",
        ["Path", "Total (ms)", "Per query (ms)"],
        [
            ["query() loop", loop_med, loop_med / NUM_QUERIES],
            ["search() batch", batch_med, batch_med / NUM_QUERIES],
            ["speedup", loop_med / batch_med, float("nan")],
        ],
        note="search() projects all queries in one GEMM and scans the "
        "projected space blockwise; results are identical to the loop.",
    )
    write_result("batch_query_microbench", table)

    assert batch_med < loop_med, (
        f"batch search ({batch_med:.1f} ms) should beat the per-query loop "
        f"({loop_med:.1f} ms)"
    )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
