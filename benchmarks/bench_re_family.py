"""Supplementary to Figs. 7-9 — the radius-enlarging family head to head.

§3.1 names three RE methods: the LSB-tree, C2LSH, and QALSH, in
(roughly) increasing estimation granularity: bucket-to-bucket (LSB,
C2LSH) vs point-to-bucket (QALSH) vs PM-LSH's point-to-point (§3.2's
taxonomy).  This bench lines all four up on one workload to make the
granularity ladder visible: quality per verified candidate should improve
with finer granularity.
"""

from __future__ import annotations

from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import create_index
from repro.evaluation import run_query_set
from repro.evaluation.tables import format_table


K = 50


def test_re_family(cache, write_result, benchmark):
    workload = cache.workload("Cifar")
    ground_truth = cache.ground_truth("Cifar", k_max=K)
    contenders = {
        "LSB-Forest (bucket)": "lsb-forest",
        "C2LSH (bucket)": "c2lsh",
        "QALSH (point-to-bucket)": "qalsh",
        "PM-LSH (point-to-point)": "pm-lsh",
    }
    rows = []
    quality_per_candidate = {}

    def run_family():
        rows.clear()
        for name, registry_name in contenders.items():
            index = create_index(registry_name, seed=bench_seed(7)).fit(workload.data)
            result = run_query_set(index, workload.queries, K, ground_truth)
            candidates = result.extra.get("mean_candidates", float("nan"))
            quality_per_candidate[name] = result.recall / max(candidates, 1.0)
            rows.append(
                [name, result.query_time_ms, result.overall_ratio, result.recall,
                 candidates]
            )

    benchmark.pedantic(run_family, rounds=1, iterations=1)
    table = format_table(
        "Supplementary: the radius-enlarging family (Cifar, k=50)",
        ["Method (granularity)", "Time (ms)", "Ratio", "Recall", "Candidates"],
        rows,
        note="Finer distance-estimation granularity -> better recall per "
        "verified candidate (the §3.2 taxonomy, made measurable).",
    )
    write_result("supplementary_re_family", table)

    # The granularity ladder: PM-LSH extracts the most recall per candidate.
    assert (
        quality_per_candidate["PM-LSH (point-to-point)"]
        >= quality_per_candidate["LSB-Forest (bucket)"]
    )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
