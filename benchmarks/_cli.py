"""Argparse front-end shared by every benchmark: run a bench as a script.

Each ``bench_*.py`` module ends with::

    if __name__ == "__main__":
        import sys

        from _cli import bench_main

        sys.exit(bench_main(__file__, __doc__))

so ``python benchmarks/bench_fig6_params.py --seed 3 --out /tmp/tables``
works without knowing the pytest plumbing: the flags map onto the
``REPRO_BENCH_*`` environment knobs (see ``conftest.py``) and pytest runs
the file, printing each table and writing it under ``--out``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence


def bench_main(
    bench_file: str, doc: Optional[str] = None, argv: Optional[Sequence[str]] = None
) -> int:
    """Parse the shared benchmark flags and run *bench_file* under pytest."""
    summary = (doc or "").strip().splitlines()[0] if doc else None
    parser = argparse.ArgumentParser(
        prog=os.path.basename(bench_file), description=summary
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed offset added to every RNG stream of the bench "
        "(default: the bench's built-in seeds)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for the result table(s) (default: results/ at the repo root)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="points per emulated dataset (default: REPRO_BENCH_N or 2000)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=None,
        help="queries per workload (default: REPRO_BENCH_QUERIES or 15)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write a machine-readable BENCH_<name>.json next to each table",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="dump the bench's metrics registry in Prometheus text format to FILE "
        "(benches that build a registry honour it; see repro.obs)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="head-sampling rate in [0, 1] for per-request trace spans "
        "(default 0: tracing off)",
    )
    args = parser.parse_args(argv)
    if args.seed is not None:
        os.environ["REPRO_BENCH_SEED"] = str(args.seed)
    if args.out is not None:
        os.environ["REPRO_BENCH_OUT"] = str(args.out)
    if args.n is not None:
        os.environ["REPRO_BENCH_N"] = str(args.n)
    if args.queries is not None:
        os.environ["REPRO_BENCH_QUERIES"] = str(args.queries)
    if args.json:
        os.environ["REPRO_BENCH_JSON"] = "1"
    if args.metrics_out is not None:
        os.environ["REPRO_BENCH_METRICS_OUT"] = str(args.metrics_out)
    if args.trace_sample is not None:
        os.environ["REPRO_BENCH_TRACE_SAMPLE"] = str(args.trace_sample)

    # `repro` must be importable exactly as under `PYTHONPATH=src`.
    src = os.path.join(os.path.dirname(os.path.abspath(bench_file)), "..", "src")
    sys.path.insert(0, os.path.normpath(src))

    import pytest

    pytest_args = [bench_file, "-q", "-p", "no:cacheprovider"]
    try:
        import pytest_benchmark  # noqa: F401

        pytest_args.append("--benchmark-disable")
    except ImportError:
        pass
    return int(pytest.main(pytest_args))
