"""Table 4 — performance overview: query time, overall ratio, recall for
all six algorithms on all seven emulated datasets (k = 50, c = 1.5).

Reproduced shapes (Table 4 and §6.2's discussion):

* PM-LSH achieves the best (or tied-best) overall ratio and recall on most
  datasets while staying among the fastest;
* LScan's recall sits near its scanned portion (~0.7) with the worst ratio;
* QALSH is accurate but pays a large query-time premium (its hash count
  grows with n);
* R-LSH matches PM-LSH's quality but needs more distance computations
  (see Table 2) — the PM-tree ablation.
"""

from __future__ import annotations

from conftest import algorithm_factories  # noqa: I001 (script-mode sys.path bootstrap)

from repro.datasets.registry import available_datasets
from repro.evaluation import run_query_set
from repro.evaluation.tables import format_table


K = 50


def test_table4_overview(cache, write_result, benchmark):
    factories = algorithm_factories()
    rows = []
    measured = {}

    def run_everything():
        rows.clear()
        for dataset in available_datasets():
            workload = cache.workload(dataset)
            ground_truth = cache.ground_truth(dataset, k_max=K)
            for algo_name, make in factories.items():
                index = make(workload.data)
                result = run_query_set(index, workload.queries, K, ground_truth)
                measured[(dataset, algo_name)] = result
                rows.append(
                    [
                        dataset,
                        algo_name,
                        result.query_time_ms,
                        result.overall_ratio,
                        result.recall,
                    ]
                )
        return rows

    benchmark.pedantic(run_everything, rounds=1, iterations=1)
    table = format_table(
        "Table 4: Performance overview (k=50, c=1.5)",
        ["Dataset", "Algorithm", "Query time (ms)", "Overall ratio", "Recall"],
        rows,
        note="Paper shape: PM-LSH fastest-or-tied with best ratio/recall; "
        "LScan recall ~= scanned portion; QALSH accurate but slow.",
    )
    write_result("table4_overview", table)

    # Shape assertions per dataset.
    for dataset in available_datasets():
        pm = measured[(dataset, "PM-LSH")]
        lscan = measured[(dataset, "LScan")]
        assert pm.recall >= lscan.recall, dataset
        assert pm.overall_ratio <= lscan.overall_ratio + 1e-9, dataset
        # PM-LSH quality leads (or ties) every competitor on ratio.
        for algo in ("SRS", "Multi-Probe"):
            competitor = measured[(dataset, algo)]
            assert pm.overall_ratio <= competitor.overall_ratio + 5e-3, (dataset, algo)
        # QALSH pays a query-time premium over PM-LSH.
        assert measured[(dataset, "QALSH")].query_time_ms > pm.query_time_ms, dataset


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
