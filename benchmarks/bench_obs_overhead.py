"""Observability overhead: the armed-but-unsampled obs stack vs the bare server.

The tentpole claim behind ``repro.obs``: with ``sample_rate=0`` the
tracing layer costs one ``None`` check per instrumentation site and the
metrics counters cost one attribute walk plus an integer add — so the
fully armed observability stack (registry + tracer + slow-query log)
must serve the ``bench_serving`` open-loop workload within a few percent
of a server with nothing but the mandatory registry.

The bench replays the same saturating open-loop Poisson stream (offered
at ~4x measured capacity, so QPS reflects service rate, not arrival
rate) against two servers over one shared index:

* **bare** — ``AsyncSearchServer(index)``: the registry alone, which is
  the floor (every serving number lives in it);
* **armed** — the same server plus ``Tracer(sample_rate=0)`` and a
  ``SlowQueryLog``: every trace guard and slow-log trigger evaluated on
  every request, zero spans allocated.

Open-loop runs this short are scheduler-noise-dominated, so the bench
pairs them: each round runs bare then armed back to back and takes the
round's QPS ratio; the reported regression is the median paired ratio
over several rounds, which cancels the slow drift (thermal, page cache,
CPU contention) that poisons unpaired medians.  Writes
``results/obs_overhead.txt`` with the measured regression.  Asserts the
armed stack stays within 10% of bare (the target is <3%; the assertion
is looser because shared CI boxes jitter single-digit percents).  Scale
with ``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from conftest import (  # noqa: I001 (script-mode sys.path bootstrap)
    bench_n,
    bench_queries,
    bench_seed,
    write_metrics,
)

from repro import Knn, MetricsRegistry, SlowQueryLog, Tracer, create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.tables import format_table
from repro.serving import AsyncSearchServer, open_loop_arrivals

K = 10
DIM = 64
ROUNDS = 5  # paired bare/armed repetitions


async def _play(index, queries, rate_per_s, *, metrics, tracer, slow_log):
    async with AsyncSearchServer(
        index,
        max_batch=32,
        max_delay_ms=2.0,
        metrics=metrics,
        tracer=tracer,
        slow_log=slow_log,
    ) as server:
        loop = asyncio.get_running_loop()
        start = loop.time()
        results = await open_loop_arrivals(
            server, list(queries), Knn(k=K), rate_per_s, seed=bench_seed(3)
        )
        wall_s = loop.time() - start
        stats = server.stats()
    return len(results) / wall_s, stats


def test_bench_obs_overhead(write_result, write_json, benchmark):
    n = max(bench_n(), 400)
    requests = min(max(20 * bench_queries(), 240), 600)
    data = gaussian_mixture(n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5))
    index = create_index("pm-lsh", seed=bench_seed(7)).fit(data)
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=requests)]
        + rng.normal(size=(requests, DIM)) * 0.05
    )
    index.search(queries[:8], K)  # warm the flat traversal buffers
    samples = []
    for i in range(min(15, requests)):
        start = time.perf_counter()
        index.run(queries[i : i + 1], Knn(k=K))
        samples.append(time.perf_counter() - start)
    rate = 4.0 / float(np.median(samples))  # ~4x capacity: saturating

    registry = MetricsRegistry()

    def bare():
        qps, stats = asyncio.run(
            _play(index, queries, rate, metrics=registry, tracer=None, slow_log=None)
        )
        return qps, stats

    def armed():
        qps, stats = asyncio.run(
            _play(
                index,
                queries,
                rate,
                metrics=registry,
                tracer=Tracer(sample_rate=0.0, seed=bench_seed(11)),
                slow_log=SlowQueryLog(capacity=64, p99_multiple=3.0),
            )
        )
        return qps, stats

    bare(), armed()  # one throwaway round to warm executors and caches
    runs = {"bare": [], "armed": []}
    ratios = []
    last_stats = {}
    for _ in range(ROUNDS):
        qps_b, last_stats["bare"] = bare()
        qps_a, last_stats["armed"] = armed()
        runs["bare"].append(qps_b)
        runs["armed"].append(qps_a)
        ratios.append(qps_a / qps_b)

    qps_bare = float(np.median(runs["bare"]))
    qps_armed = float(np.median(runs["armed"]))
    overhead_pct = (1.0 - float(np.median(ratios))) * 100.0

    rows = [
        [
            label,
            float(np.median(runs[label])),
            last_stats[label].latency_p50_ms,
            last_stats[label].latency_p99_ms,
            last_stats[label].mean_occupancy,
        ]
        for label in ("bare", "armed")
    ]
    note = (
        f"pm-lsh, n={n}, d={DIM}, k={K}, {requests} open-loop requests per run, "
        f"{ROUNDS} paired rounds, median of per-round QPS ratios; offered ~4x capacity. "
        f"Armed = registry + Tracer(sample_rate=0) + SlowQueryLog on every request. "
        f"Measured regression: {overhead_pct:+.2f}% (target < 3%)."
    )
    table = format_table(
        "Observability overhead: armed (sampling off) vs bare serving",
        ["Config", "QPS (median)", "p50 (ms)", "p99 (ms)", "Occupancy"],
        rows,
        note=note,
    )
    write_result("obs_overhead", table)
    write_json(
        "obs_overhead",
        {
            "n": n,
            "dim": DIM,
            "k": K,
            "requests_per_run": requests,
            "rounds": ROUNDS,
            "qps_bare_median": qps_bare,
            "qps_armed_median": qps_armed,
            "overhead_pct": overhead_pct,
        },
    )
    write_metrics(registry)

    benchmark.pedantic(armed, rounds=1, iterations=1)

    # Target is <3%; assert a looser bound so scheduler jitter on shared
    # CI boxes cannot flake the suite while a real hot-path regression
    # (per-request allocation, span construction when off) still fails.
    assert overhead_pct < 10.0, (
        f"armed observability stack regressed serving QPS by {overhead_pct:.2f}% "
        f"({qps_armed:.0f} vs {qps_bare:.0f} bare) — sampling-off must be ~free"
    )


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
