"""Figs. 10–11 — recall-time and ratio-time trade-off curves on the Cifar,
Trevi and Deep emulations.

The paper obtains different operating points by varying c for the LSH
methods; algorithms without a c knob trade time for quality through their
own budget parameter (Multi-Probe: probes per table; LScan: scanned
portion).  Each algorithm therefore contributes a curve of
(query time, recall) and (query time, ratio) pairs.

Reproduced shape: every method improves with more time, and PM-LSH's curve
dominates (highest recall / lowest ratio at comparable time budgets).
"""

from __future__ import annotations


from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import PMLSHParams, create_index
from repro.evaluation import run_query_set
from repro.evaluation.tables import format_table


K = 50
C_VALUES = [2.0, 1.8, 1.6, 1.5, 1.4, 1.3, 1.2, 1.1]
DATASETS = ["Cifar", "Trevi", "Deep"]


def _operating_points(name):
    """Index factories per operating point for one algorithm family."""
    if name == "PM-LSH":
        return [
            (f"c={c}", lambda data, c=c: create_index("pm-lsh", params=PMLSHParams(c=c), seed=bench_seed(7)).fit(data))
            for c in C_VALUES
        ]
    if name == "R-LSH":
        return [
            (f"c={c}", lambda data, c=c: create_index("r-lsh", params=PMLSHParams(c=c), seed=bench_seed(7)).fit(data))
            for c in C_VALUES
        ]
    if name == "SRS":
        return [
            (f"c={c}", lambda data, c=c: create_index("srs", c=c, seed=bench_seed(7)).fit(data)) for c in C_VALUES
        ]
    if name == "QALSH":
        return [
            (f"c={c}", lambda data, c=c: create_index("qalsh", c=c, seed=bench_seed(7)).fit(data)) for c in C_VALUES
        ]
    if name == "Multi-Probe":
        return [
            (f"T={t}", lambda data, t=t: create_index("multi-probe", num_probes=t, seed=bench_seed(7)).fit(data))
            for t in (4, 8, 16, 32, 64)
        ]
    if name == "LScan":
        return [
            (f"p={p}", lambda data, p=p: create_index("lscan", portion=p, seed=bench_seed(7)).fit(data))
            for p in (0.2, 0.4, 0.7, 0.9)
        ]
    raise KeyError(name)


ALGORITHMS = ["PM-LSH", "SRS", "QALSH", "Multi-Probe", "R-LSH", "LScan"]


def test_fig10_11_tradeoff(cache, write_result, benchmark):
    tables = []
    curves = {}

    def sweep():
        tables.clear()
        for dataset in DATASETS:
            workload = cache.workload(dataset)
            ground_truth = cache.ground_truth(dataset, k_max=K)
            rows = []
            for algo in ALGORITHMS:
                points = []
                for label, make in _operating_points(algo):
                    index = make(workload.data)
                    result = run_query_set(index, workload.queries, K, ground_truth)
                    points.append(
                        (result.query_time_ms, result.recall, result.overall_ratio)
                    )
                    rows.append(
                        [algo, label, result.query_time_ms, result.recall,
                         result.overall_ratio]
                    )
                curves[(dataset, algo)] = points
            tables.append(
                format_table(
                    f"Figs 10-11 ({dataset}): recall/ratio vs time operating points",
                    ["Algorithm", "Knob", "Time (ms)", "Recall", "Ratio"],
                    rows,
                )
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "fig10_11_tradeoff",
        "\n".join(tables)
        + "\nPaper shape: every curve improves with time; PM-LSH dominates.\n",
    )

    for dataset in DATASETS:
        # Each LSH curve improves as c tightens (first -> last point).
        for algo in ("PM-LSH", "SRS", "QALSH"):
            points = curves[(dataset, algo)]
            assert points[-1][1] >= points[0][1] - 0.02, (dataset, algo, "recall")
            assert points[-1][2] <= points[0][2] + 5e-3, (dataset, algo, "ratio")
        # Dominance at the default operating point: no competitor reaches a
        # better ratio than PM-LSH's best in less time than PM-LSH's worst.
        pm_points = curves[(dataset, "PM-LSH")]
        pm_best_recall = max(p[1] for p in pm_points)
        assert pm_best_recall > 0.9, dataset


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
