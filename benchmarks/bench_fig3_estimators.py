"""Fig. 3 — recall and overall ratio of the four distance estimators
(L2, L1, QD, Rand) as the candidate budget T grows.

Protocol (§3.2): sample a Trevi-like dataset, take query points, compute
exact 100-NN; for each estimator rank all points by estimated distance to
the query in the m = 15 projected space, keep the top-T, and measure how
well the exact 100-NN are recovered (recall) and approximated (ratio) by
the best 100 of those T.

Reproduced shape: L2 (the paper's estimator, Lemma 2) dominates L1 and QD;
Rand is the floor.  All estimators improve with T.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro.core.estimation import DistanceEstimator, EstimatorKind
from repro.core.hashing import GaussianProjection
from repro.evaluation.metrics import overall_ratio, recall
from repro.evaluation.tables import format_series


K_EXACT = 100
T_VALUES = [100, 200, 400, 600, 800, 1000, 1400, 2000]
M = 15


def test_fig3_estimators(cache, write_result, benchmark):
    workload = cache.workload("Trevi", n=4000)
    ground_truth = cache.ground_truth("Trevi", k_max=K_EXACT, n=4000)
    projection = GaussianProjection(workload.d, M, seed=bench_seed(11))
    projected = projection.project(workload.data)
    projected_queries = projection.project(workload.queries)
    series_recall = {kind.value: [] for kind in EstimatorKind}
    series_ratio = {kind.value: [] for kind in EstimatorKind}

    def sweep():
        for kind in EstimatorKind:
            series_recall[kind.value].clear()
            series_ratio[kind.value].clear()
            estimator = DistanceEstimator(projected, kind=kind, seed=bench_seed(12))
            # Rank once per query with the largest T; prefixes give all Ts.
            per_query_rankings = [
                estimator.top(projected_queries[i], max(T_VALUES))
                for i in range(workload.queries.shape[0])
            ]
            for t in T_VALUES:
                recalls, ratios = [], []
                for i in range(workload.queries.shape[0]):
                    candidates = per_query_rankings[i][:t]
                    true_dists = np.linalg.norm(
                        workload.data[candidates] - workload.queries[i], axis=1
                    )
                    order = np.argsort(true_dists, kind="stable")[:K_EXACT]
                    result_ids = candidates[order]
                    result_dists = true_dists[order]
                    exact_ids, exact_dists = ground_truth.for_query(i, K_EXACT)
                    recalls.append(recall(result_ids, exact_ids))
                    ratios.append(overall_ratio(result_dists, exact_dists, k=K_EXACT))
                series_recall[kind.value].append(float(np.mean(recalls)))
                series_ratio[kind.value].append(float(np.mean(ratios)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series(
        "Fig 3(a): Recall of estimators vs T",
        "T", T_VALUES, series_recall,
    ) + "\n" + format_series(
        "Fig 3(b): Overall ratio of estimators vs T",
        "T", T_VALUES, series_ratio,
        note="Paper shape: L2 dominates on both metrics for every T.",
    )
    write_result("fig3_estimators", text)

    # Shape: L2 >= each competitor on recall, <= on ratio, at every T.
    for i, _ in enumerate(T_VALUES):
        for other in ("L1", "QD", "Rand"):
            assert series_recall["L2"][i] >= series_recall[other][i] - 0.02, other
            assert series_ratio["L2"][i] <= series_ratio[other][i] + 0.002, other
    # Everyone improves with T.
    for kind in ("L2", "L1", "QD"):
        assert series_recall[kind][-1] >= series_recall[kind][0]


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
