"""Index lifecycle (beyond the paper: deletes + compaction as a service) — QPS/recall before, during and after compaction.

The lifecycle claim behind ``repro.lifecycle``: tombstone deletes keep
answers exactly right (a dead id never surfaces; results match an index
that never held the point) at a measurable-but-bounded query cost, and
background compaction reclaims that cost without ever pausing the
server.

The bench walks one PM-LSH index through the whole arc:

1. **before** — the freshly fitted index: batch kNN QPS and recall
   against exact ground truth;
2. **tombstoned** — 30 % of the points deleted: same measurements, now
   against ground truth over the *live* points only (dead ids must
   never appear);
3. **during compaction** — the index behind ``AsyncSearchServer`` while
   ``server.compact()`` rebuilds on its background thread: served QPS
   of the concurrent request stream (reads never block on the rebuild)
   and a zero-dead-ids check over every answer;
4. **after** — the compacted (dense, tombstone-free) index: QPS and
   recall once more.

Writes ``results/lifecycle.txt``.  Asserts that no phase ever returns a
dead id, that requests are actually served while the rebuild is in
flight, and that post-compaction recall holds up.  Scale with
``REPRO_BENCH_N`` / ``REPRO_BENCH_QUERIES`` (see conftest).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from conftest import bench_n, bench_queries, bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro import CompactionPolicy, Knn, create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.tables import format_table
from repro.serving import AsyncSearchServer


K = 10
DIM = 64
DELETE_FRACTION = 0.3


def _recall(result_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """Mean |result ∩ truth| / k over the query batch."""
    hits = sum(
        np.intersect1d(row, truth).size
        for row, truth in zip(result_ids, truth_ids)
    )
    return hits / float(truth_ids.size)


def _exact_truth(data: np.ndarray, ids: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Top-k true neighbour ids (global numbering) over ``data[ids]``."""
    reference = create_index("exact").fit(data[ids])
    return ids[reference.search(queries, k=K).ids]


def _measure(index, queries, repeats: int = 3):
    """(QPS, BatchResult) of repeated batch kNN over *queries*."""
    index.search(queries[:4], K)  # warm buffers outside the timed region
    start = time.perf_counter()
    for _ in range(repeats):
        batch = index.search(queries, K)
    wall = time.perf_counter() - start
    return repeats * queries.shape[0] / wall, batch


async def _serve_through_compaction(index, queries, dead: np.ndarray):
    """Drive traffic while ``server.compact()`` rebuilds in the background.

    Returns (served QPS while the rebuild was in flight, requests served,
    dead ids leaked, CompactionResult, compacted index).
    """
    async with AsyncSearchServer(index, max_batch=16, max_delay_ms=1.0) as server:
        loop = asyncio.get_running_loop()
        compaction = asyncio.create_task(
            server.compact(CompactionPolicy(max_tombstone_ratio=DELETE_FRACTION))
        )
        served = 0
        leaked = 0
        start = loop.time()
        # Keep submitting until the rebuild lands (at least one round, so
        # the smoke run always measures something).
        while not compaction.done() or served == 0:
            answers = await server.submit_many(queries, Knn(k=K))
            served += len(answers)
            for answer in answers:
                leaked += int(np.isin(answer.ids, dead).sum())
            if served >= 50 * queries.shape[0]:  # bound the bench runtime
                break
        wall = loop.time() - start
        result = await compaction
        return served / wall, served, leaked, result, server.index


def test_bench_lifecycle(write_result, benchmark):
    n = max(bench_n(), 400)
    num_queries = max(bench_queries(), 8)
    data = gaussian_mixture(n, DIM, num_clusters=20, cluster_std=0.8, seed=bench_seed(5))
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=num_queries)]
        + rng.normal(size=(num_queries, DIM)) * 0.05
    )
    dead = np.sort(rng.choice(n, size=int(n * DELETE_FRACTION), replace=False))
    live = np.setdiff1d(np.arange(n), dead)
    truth_full = _exact_truth(data, np.arange(n), queries)
    truth_live = _exact_truth(data, live, queries)

    index = create_index("pm-lsh", seed=bench_seed(7)).fit(data)
    rows = []

    # 1. before any deletes
    qps, batch = _measure(index, queries)
    rows.append(["before", n, 0, qps, _recall(batch.ids, truth_full), batch.stats["candidates"]])

    # 2. tombstoned at 30 %
    index.delete(dead)
    qps, batch = _measure(index, queries)
    assert not np.isin(batch.ids, dead).any(), "tombstoned phase leaked dead ids"
    rows.append(
        ["tombstoned", index.nlive, dead.size, qps, _recall(batch.ids, truth_live), batch.stats["candidates"]]
    )

    # 3. during the background compaction
    served_qps, served, leaked, result, compacted = asyncio.run(
        _serve_through_compaction(index, queries, dead)
    )
    assert leaked == 0, f"{leaked} dead ids served during compaction"
    assert served > 0, "no requests served while the rebuild was in flight"
    assert result is not None and result.removed == dead.size
    rows.append(["during compaction", index.nlive, dead.size, served_qps, float("nan"), float("nan")])

    # 4. after: the compacted index answers in dense numbering
    truth_dense = _exact_truth(data[live], np.arange(live.size), queries)
    qps, batch = _measure(compacted, queries)
    recall_after = _recall(batch.ids, truth_dense)
    rows.append(["after", compacted.ntotal, 0, qps, recall_after, batch.stats["candidates"]])

    note = (
        f"pm-lsh, n={n}, d={DIM}, k={K}, {num_queries} queries; "
        f"{dead.size} points ({100 * DELETE_FRACTION:.0f}%) tombstoned, then "
        f"compacted behind AsyncSearchServer while {served} requests were "
        f"served with zero dead ids and no pause.  Recall is measured "
        f"against exact ground truth over the points alive in each phase."
    )
    table = format_table(
        "Lifecycle: QPS / recall across a 30%-tombstone compaction",
        ["Phase", "nlive", "Tombstones", "QPS", f"Recall@{K}", "Cand/query"],
        rows,
        note=note,
    )
    write_result("lifecycle", table)

    benchmark.pedantic(lambda: index.search(queries, K), rounds=1, iterations=1)

    assert recall_after >= 0.6, f"post-compaction recall collapsed: {recall_after:.3f}"


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
