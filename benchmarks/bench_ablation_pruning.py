"""Ablation (§4.1, the Eq. 5 pruning battery) — where the PM-tree's advantage comes from.

Not a paper table, but the design-choice study DESIGN.md calls out:

* hyper-rings on/off and parent-distance filter on/off (the two pruning
  tests that distinguish the PM-tree from a plain M-tree): results must be
  identical, distance computations must drop when each filter is enabled;
* bulk vs insert construction: same query answers, different build cost;
* pivot selection policies (maxsep vs random): ring tightness.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_seed  # noqa: I001 (script-mode sys.path bootstrap)

from repro.core.hashing import GaussianProjection
from repro.evaluation.tables import format_table
from repro.pmtree import PMTree


def _query_workload(projected, radius, trials=15, seed=bench_seed(4)):
    rng = np.random.default_rng(seed)
    return [projected[rng.integers(0, projected.shape[0])] + 0.01 for _ in range(trials)]


def test_ablation_pruning_filters(cache, write_result, benchmark):
    workload = cache.workload("Cifar")
    projection = GaussianProjection(workload.d, 15, seed=bench_seed(3))
    projected = projection.project(workload.data)
    radius = float(
        np.quantile(
            np.linalg.norm(projected - projected[0], axis=1), 0.1
        )
    )
    queries = _query_workload(projected, radius)
    rows = []
    costs = {}

    def run_ablation():
        rows.clear()
        baseline_results = None
        for rings in (True, False):
            for parent in (True, False):
                tree = PMTree.build(
                    projected, num_pivots=5, capacity=64,
                    use_rings=rings, use_parent_filter=parent, seed=bench_seed(5),
                )
                tree.reset_counters()
                answers = []
                start = time.perf_counter()
                for query in queries:
                    answers.append(sorted(pid for pid, _ in tree.range_query(query, radius)))
                elapsed_ms = (time.perf_counter() - start) * 1e3 / len(queries)
                if baseline_results is None:
                    baseline_results = answers
                assert answers == baseline_results, "pruning changed results"
                label = f"rings={'on' if rings else 'off'},parent={'on' if parent else 'off'}"
                costs[(rings, parent)] = tree.distance_computations / len(queries)
                rows.append(
                    [label, tree.distance_computations / len(queries), elapsed_ms]
                )

    benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        "Ablation: PM-tree pruning filters (Cifar, 10% selectivity)",
        ["Configuration", "Distance comps / query", "Time (ms) / query"],
        rows,
        note="Rings and the parent filter must not change results, only cost.",
    )
    write_result("ablation_pruning", table)

    # Rings must reduce distance computations (the PM-tree's raison d'etre).
    assert costs[(True, True)] <= costs[(False, True)]
    assert costs[(True, False)] <= costs[(False, False)]


def test_ablation_build_methods(cache, write_result, benchmark):
    workload = cache.workload("Audio")
    projection = GaussianProjection(workload.d, 15, seed=bench_seed(3))
    projected = projection.project(workload.data)
    radius = float(
        np.quantile(np.linalg.norm(projected - projected[0], axis=1), 0.1)
    )
    queries = _query_workload(projected, radius)
    rows = []

    def run_build_comparison():
        rows.clear()
        answers = {}
        for method in ("bulk", "insert"):
            start = time.perf_counter()
            tree = PMTree.build(
                projected, num_pivots=5, capacity=32, method=method, seed=bench_seed(6)
            )
            build_ms = (time.perf_counter() - start) * 1e3
            tree.reset_counters()
            start = time.perf_counter()
            results = [
                sorted(pid for pid, _ in tree.range_query(query, radius))
                for query in queries
            ]
            query_ms = (time.perf_counter() - start) * 1e3 / len(queries)
            answers[method] = results
            rows.append(
                [method, build_ms, query_ms, tree.distance_computations / len(queries)]
            )
        assert answers["bulk"] == answers["insert"], "build method changed results"

    benchmark.pedantic(run_build_comparison, rounds=1, iterations=1)
    table = format_table(
        "Ablation: bulk vs insert construction (Audio)",
        ["Build method", "Build time (ms)", "Query time (ms)", "Distance comps / query"],
        rows,
        note="Both builds answer identically; bulk loading is the default.",
    )
    write_result("ablation_build", table)


def test_ablation_pivot_selection(cache, write_result, benchmark):
    workload = cache.workload("Trevi")
    projection = GaussianProjection(workload.d, 15, seed=bench_seed(3))
    projected = projection.project(workload.data)
    radius = float(
        np.quantile(np.linalg.norm(projected - projected[0], axis=1), 0.1)
    )
    queries = _query_workload(projected, radius)
    rows = []
    costs = {}

    def run_pivot_comparison():
        rows.clear()
        for method in ("maxsep", "random", "variance"):
            tree = PMTree.build(
                projected, num_pivots=5, capacity=64, pivot_method=method, seed=bench_seed(7)
            )
            tree.reset_counters()
            for query in queries:
                tree.range_query(query, radius)
            costs[method] = tree.distance_computations / len(queries)
            rows.append([method, costs[method]])

    benchmark.pedantic(run_pivot_comparison, rounds=1, iterations=1)
    table = format_table(
        "Ablation: pivot selection policy (Trevi)",
        ["Pivot policy", "Distance comps / query"],
        rows,
        note="Well-separated pivots give tighter rings, hence better pruning.",
    )
    write_result("ablation_pivots", table)


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
