"""Async serving (beyond the paper: §6's index under open-loop traffic) — throughput/latency vs batch window and arrival rate.

The serving claim behind ``repro.serving``: many small independent
requests — the realistic traffic shape — coalesced by the deadline-based
micro-batcher into the large batches PM-LSH's flat-tree hot path was
built for, serve at strictly higher throughput than the same requests
dispatched one ``run()`` call each.

The bench stands one PM-LSH index behind ``AsyncSearchServer`` and plays
the same open-loop Poisson request stream (arrivals do not wait for
earlier answers) against a grid of batching configs — no batching
(``max_batch=1``, the window-of-1 baseline) vs micro-batching at several
size/deadline windows — at two offered loads calibrated against the
measured single-request service time (≈ capacity, and ≈ 4× capacity,
where queueing discipline decides throughput).  A second table replays a
hot/repeated request mix with the projected-locality cache on and off.
A third table re-runs the 4x-overload cell against the sharded engine
with both fan-out pools — in-process threads vs the shared-memory worker
pool (``pool_backend="process"``) — asserting the two serve identical
results.

Writes ``results/serving.txt``.  Asserts that the micro-batcher
(a) coalesces at all — mean batch occupancy > 1, measured on an
**injected virtual clock** so the check cannot flake on a loaded
runner — and (b) out-serves the window-of-1 baseline under overload.  Scale with ``REPRO_BENCH_N`` /
``REPRO_BENCH_QUERIES`` (see conftest).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from conftest import (  # noqa: I001 (script-mode sys.path bootstrap)
    bench_n,
    bench_queries,
    bench_seed,
    bench_trace_sample,
    write_metrics,
)

from repro import Knn, MetricsRegistry, Tracer, create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.tables import format_table
from repro.serving import AsyncSearchServer, VirtualClock, open_loop_arrivals


K = 10
DIM = 64
#: (label, max_batch, max_delay_ms); max_batch=1 is the no-batching baseline.
CONFIGS = [
    ("window=1 (no batching)", 1, 0.0),
    ("batch 8 / 2 ms", 8, 2.0),
    ("batch 32 / 2 ms", 32, 2.0),
    ("batch 32 / 8 ms", 32, 8.0),
]
#: offered load as a multiple of the measured single-request capacity.
LOAD_FACTORS = [1.0, 4.0]


def _single_request_seconds(index, queries) -> float:
    """Median wall time of one single-query ``run()`` — the capacity unit."""
    samples = []
    for i in range(min(15, queries.shape[0])):
        start = time.perf_counter()
        index.run(queries[i : i + 1], Knn(k=K))
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


async def _coalesced_occupancy(index, queries, *, max_batch=32, max_delay_ms=2.0):
    """Mean batch occupancy of one burst on a **virtual** clock.

    The table's occupancy column stays a real-time measurement, but the
    CI smoke assertion rides on this instead: the burst is submitted in
    one event-loop tick and the deadline timer fires on an injected
    :class:`VirtualClock`, so the batch forms identically whether the
    host is idle or thrashing — the old wall-clock cell flaked whenever
    a loaded runner let arrivals trickle into singleton batches.
    """
    clock = VirtualClock()
    async with AsyncSearchServer(
        index,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        metrics=MetricsRegistry(),
        clock=clock,
    ) as server:
        burst = queries[: max(2, max_batch // 2)]
        tasks = [
            asyncio.ensure_future(server.submit(query, Knn(k=K))) for query in burst
        ]
        for _ in range(10):  # let every submit coroutine reach its queue
            await asyncio.sleep(0)
        clock.advance(max_delay_ms / 1e3)  # the deadline flush, exactly once
        await asyncio.gather(*tasks)
        stats = server.stats()
    return stats.mean_occupancy


async def _play(
    index,
    queries,
    *,
    max_batch,
    max_delay_ms,
    rate_per_s,
    cache=None,
    metrics=None,
    tracer=None,
):
    """One open-loop run; returns (served QPS, ServingStats, results)."""
    async with AsyncSearchServer(
        index,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        cache=cache,
        metrics=metrics,
        tracer=tracer,
    ) as server:
        loop = asyncio.get_running_loop()
        start = loop.time()
        results = await open_loop_arrivals(
            server, list(queries), Knn(k=K), rate_per_s, seed=bench_seed(3)
        )
        wall_s = loop.time() - start
        stats = server.stats()
    return len(results) / wall_s, stats, results


def test_bench_serving_microbatch(write_result, write_json, benchmark):
    n = max(bench_n(), 400)
    requests = min(max(10 * bench_queries(), 60), 300)
    data = gaussian_mixture(n, DIM, num_clusters=25, cluster_std=0.8, seed=bench_seed(5))
    index = create_index("pm-lsh", seed=bench_seed(7)).fit(data)
    rng = np.random.default_rng(bench_seed(0))
    queries = (
        data[rng.integers(0, n, size=requests)]
        + rng.normal(size=(requests, DIM)) * 0.05
    )
    index.search(queries[:8], K)  # warm the flat traversal buffers
    t_single = _single_request_seconds(index, queries)
    capacity = 1.0 / t_single

    # One registry + tracer across every cell: the servers and the index
    # publish into it, and --metrics-out / --trace-sample expose it.
    registry = MetricsRegistry()
    sample_rate = bench_trace_sample()
    tracer = Tracer(sample_rate=sample_rate, seed=bench_seed(11)) if sample_rate > 0 else None

    rows = []
    qps_by_cell = {}
    occupancy_by_cell = {}
    for factor in LOAD_FACTORS:
        rate = capacity * factor
        for label, max_batch, max_delay_ms in CONFIGS:
            qps, stats, _ = asyncio.run(
                _play(
                    index,
                    queries,
                    max_batch=max_batch,
                    max_delay_ms=max_delay_ms,
                    rate_per_s=rate,
                    metrics=registry,
                    tracer=tracer,
                )
            )
            qps_by_cell[(label, factor)] = qps
            occupancy_by_cell[(label, factor)] = stats.mean_occupancy
            rows.append(
                [
                    label,
                    factor,
                    rate,
                    qps,
                    stats.latency_p50_ms,
                    stats.latency_p99_ms,
                    stats.mean_occupancy,
                    stats.batches_served,
                ]
            )

    overload = LOAD_FACTORS[-1]
    baseline = qps_by_cell[(CONFIGS[0][0], overload)]
    best_label = max(
        (label for label, _, _ in CONFIGS[1:]),
        key=lambda label: qps_by_cell[(label, overload)],
    )
    best = qps_by_cell[(best_label, overload)]
    note = (
        f"pm-lsh, n={n}, d={DIM}, k={K}, {requests} open-loop requests per cell; "
        f"measured single-request capacity {capacity:.0f} req/s. "
        f"At {overload:.0f}x capacity, micro-batching ({best_label}) serves "
        f"{best:.0f} QPS vs {baseline:.0f} QPS with a batch window of 1 "
        f"({best / baseline:.2f}x)."
    )
    table = format_table(
        "Async serving: micro-batching vs batch window of 1",
        ["Config", "Load", "Offered (req/s)", "QPS", "p50 (ms)", "p99 (ms)", "Occupancy", "Batches"],
        rows,
        note=note,
    )

    # ---- cache table: a hot/repeated request mix, cache on vs off ----
    hot = queries[: max(8, requests // 10)]
    mix = hot[rng.integers(0, hot.shape[0], size=requests)]
    cache_rows = []
    cache_qps = {}
    for cached, capacity_arg in [("off", None), ("on", 1024)]:
        qps, stats, results = asyncio.run(
            _play(
                index,
                mix,
                max_batch=32,
                max_delay_ms=2.0,
                rate_per_s=capacity * overload,
                cache=capacity_arg,
                metrics=registry,
                tracer=tracer,
            )
        )
        cache_qps[cached] = qps
        hit_rate = stats.cache_hit_rate if cached == "on" else float("nan")
        cache_rows.append(
            [cached, qps, stats.latency_p50_ms, stats.latency_p99_ms, hit_rate]
        )
    cache_note = (
        f"same server (batch 32 / 2 ms) on a {hot.shape[0]}-hot-item repeat mix; "
        f"cache speedup {cache_qps['on'] / cache_qps['off']:.2f}x."
    )
    cache_table = format_table(
        "Async serving: projected-locality cache on a repeated-query mix",
        ["Cache", "QPS", "p50 (ms)", "p99 (ms)", "Hit rate"],
        cache_rows,
        note=cache_note,
    )
    # ---- engine table: 4x overload against the sharded engine, thread
    # vs process fan-out (PR 8's shared-memory worker pool) ----
    engine_rows = []
    engine_qps = {}
    engine_reference = None
    for pool in ("thread", "process"):
        engine = create_index(
            "sharded",
            backend="pm-lsh",
            pool_backend=pool,
            num_shards=2,
            num_workers=2,
            seed=bench_seed(7),
        ).fit(data)
        engine.search(queries[:8], K)  # warm shards (and the worker pool)
        qps, stats, results = asyncio.run(
            _play(
                engine,
                queries,
                max_batch=32,
                max_delay_ms=2.0,
                rate_per_s=capacity * overload,
                metrics=registry,
                tracer=tracer,
            )
        )
        served_ids = np.stack([r.ids for r in results])
        if engine_reference is None:
            engine_reference = served_ids
        else:
            # The worker pool must serve exactly what the thread pool serves.
            np.testing.assert_array_equal(served_ids, engine_reference)
        engine_qps[pool] = qps
        engine_rows.append(
            [pool, qps, stats.latency_p50_ms, stats.latency_p99_ms, stats.mean_occupancy]
        )
        engine.close()
    engine_note = (
        f"sharded engine (2 shards / 2 workers, batch 32 / 2 ms) at "
        f"{overload:.0f}x capacity; process/thread served identical results; "
        f"process/thread QPS ratio {engine_qps['process'] / engine_qps['thread']:.2f}."
    )
    engine_table = format_table(
        "Async serving: sharded engine under 4x overload, thread vs process pool",
        ["Engine pool", "QPS", "p50 (ms)", "p99 (ms)", "Occupancy"],
        engine_rows,
        note=engine_note,
    )
    write_result("serving", table + "\n" + cache_table + "\n" + engine_table)
    write_json(
        "serving",
        {
            "n": n,
            "dim": DIM,
            "k": K,
            "requests_per_cell": requests,
            "capacity_req_per_s": capacity,
            "trace_sample_rate": sample_rate,
            "cells": [
                {
                    "config": label,
                    "load_factor": factor,
                    "qps": qps_by_cell[(label, factor)],
                    "occupancy": occupancy_by_cell[(label, factor)],
                }
                for factor in LOAD_FACTORS
                for label, _, _ in CONFIGS
            ],
            "overload_best_config": best_label,
            "overload_speedup": best / baseline,
            "cache_speedup": cache_qps["on"] / cache_qps["off"],
            "engine_overload_qps": engine_qps,
            "requests_served": int(registry.total("requests_served")),
            "tree_nodes_visited": int(registry.total("tree_nodes_visited")),
            "candidates_verified": int(registry.total("candidates_verified")),
        },
    )
    write_metrics(registry)

    benchmark.pedantic(
        lambda: asyncio.run(
            _play(
                index,
                queries,
                max_batch=32,
                max_delay_ms=2.0,
                rate_per_s=capacity * overload,
            )
        ),
        rounds=1,
        iterations=1,
    )

    # The batcher must actually coalesce concurrent requests — checked on
    # a virtual-clock burst so the assertion is deterministic (the
    # real-time occupancy cells above are reporting, not acceptance).
    occupancy = asyncio.run(_coalesced_occupancy(index, queries))
    assert occupancy > 1.0, (
        f"micro-batcher never coalesced a same-tick burst (occupancy {occupancy:.2f})"
    )
    # … and out-serve the window-of-1 baseline (the acceptance criterion).
    assert best > baseline, (
        f"micro-batching ({best:.0f} QPS) should beat the batch-window-of-1 "
        f"baseline ({baseline:.0f} QPS) at {overload:.0f}x offered load"
    )
    # The hot-item cache must not slow the repeat mix down.
    assert cache_qps["on"] >= 0.9 * cache_qps["off"]


if __name__ == "__main__":
    import sys

    from _cli import bench_main

    sys.exit(bench_main(__file__, __doc__))
