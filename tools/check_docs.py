"""Documentation checks: execute fenced examples, validate cross-links.

Two guarantees, enforced in CI and by ``tests/docs/test_docs.py``:

* every fenced ```` ```python ```` block in ``README.md`` and
  ``docs/*.md`` actually executes (blocks of one file share a namespace,
  top to bottom, like a doctest session);
* every relative markdown link resolves to an existing file, and anchor
  fragments (``file.md#section``) match a real heading in the target.

Run it directly::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

FENCE = re.compile(r"^```(\w*)\s*$")
LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)\)")


def doc_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def python_blocks(text: str) -> list[tuple[int, str]]:
    """``(first_line, source)`` for every ```` ```python ```` fence."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE.match(lines[i])
        if match and match.group(1) == "python":
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not FENCE.match(lines[i]):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, "\n".join(body)))
        i += 1
    return blocks


def heading_slugs(text: str) -> set[str]:
    """GitHub-style anchor slugs of every markdown heading."""
    slugs = set()
    for line in text.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if match:
            heading = re.sub(r"[`*_]", "", match.group(1)).strip().lower()
            slug = re.sub(r"[^\w\- ]", "", heading).replace(" ", "-")
            slugs.add(slug)
    return slugs


def check_examples(path: Path) -> list[str]:
    failures = []
    namespace: dict = {"__name__": f"__docs_{path.stem}__"}
    for line, source in python_blocks(path.read_text()):
        try:
            exec(compile(source, f"{path.name}:{line}", "exec"), namespace)
        except Exception:
            failures.append(
                f"{path.relative_to(ROOT)}:{line}: example failed\n"
                + textwrap_indent(traceback.format_exc(limit=3))
            )
    return failures


def textwrap_indent(text: str) -> str:
    return "\n".join("    " + line for line in text.rstrip().splitlines())


def check_links(path: Path) -> list[str]:
    failures = []
    text = path.read_text()
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        resolved = path.parent / target if target else path
        if not resolved.exists():
            failures.append(
                f"{path.relative_to(ROOT)}: broken link -> {target or '#' + anchor}"
            )
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved.read_text()):
                failures.append(
                    f"{path.relative_to(ROOT)}: broken anchor -> {target}#{anchor}"
                )
    return failures


def main() -> int:
    failures: list[str] = []
    for path in doc_files():
        if not path.exists():
            failures.append(f"missing documentation file: {path.relative_to(ROOT)}")
            continue
        failures.extend(check_links(path))
        failures.extend(check_examples(path))
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\n{len(failures)} documentation check(s) failed", file=sys.stderr)
        return 1
    print(f"docs OK: {len(doc_files())} files, examples executed, links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
