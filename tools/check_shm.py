"""Fail if the process pool left shared-memory segments behind.

CI's process-backend smoke step runs after every bench/test step that
spins up a shared-memory worker pool (:mod:`repro.parallel`)::

    python tools/check_shm.py

Every segment the pool publishes carries the ``repro-shm`` name prefix,
so a clean run leaves ``/dev/shm`` with no matching entries.  Exit 1
(listing the offenders) when any survive — a leak means a
``WorkerPool.close()`` / ``PublishedSegment.close()`` path regressed.

``--quick-smoke`` additionally runs a tiny 2-worker process-backend
round first — publish, query, byte-identity against the serial engine,
shutdown — so the gate exercises the pool even when the preceding steps
were skipped.
"""

from __future__ import annotations

import argparse
import sys


def _quick_smoke() -> None:
    import numpy as np

    from repro import create_index
    from repro.datasets.synthetic import gaussian_mixture

    data = gaussian_mixture(400, 16, num_clusters=8, cluster_std=0.8, seed=0)
    queries = data[:6] * 1.01
    serial = create_index("sharded", backend="pm-lsh", num_shards=2, num_workers=1, seed=1).fit(data)
    process = create_index("process-sharded", num_shards=2, num_workers=2, seed=1).fit(data)
    try:
        expected = serial.search(queries, 5)
        got = process.search(queries, 5)
        if not (
            np.array_equal(got.ids, expected.ids)
            and np.array_equal(got.distances, expected.distances)
        ):
            raise SystemExit("process backend diverged from the serial engine")
    finally:
        process.close()
        serial.close()
    print("quick smoke: process backend == serial engine on 2 shards / 2 workers")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.strip().splitlines()[0])
    parser.add_argument(
        "--quick-smoke",
        action="store_true",
        help="run a tiny 2-worker process-backend round before the leak scan",
    )
    args = parser.parse_args(argv)

    if args.quick_smoke:
        _quick_smoke()

    from repro.parallel.shm import leaked_segments

    leaked = leaked_segments()
    if leaked:
        print(
            f"leaked shared-memory segments ({len(leaked)}):", file=sys.stderr
        )
        for name in leaked:
            print(f"  /dev/shm/{name}", file=sys.stderr)
        return 1
    print("no leaked repro-shm segments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
