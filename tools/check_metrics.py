"""Validate a Prometheus metrics dump: grammar plus non-zero core counters.

CI's observability smoke step runs ``bench_serving`` with full trace
sampling and ``--metrics-out``, then feeds the dump through this script::

    python tools/check_metrics.py results/metrics_smoke.prom \
        --nonzero requests_served tree_nodes_visited candidates_verified

Exit 1 (with a message naming the offender) when the file violates the
text exposition grammar or any ``--nonzero`` counter sums to zero across
its label sets — either means a layer stopped publishing.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.strip().splitlines()[0])
    parser.add_argument("metrics_file", help="Prometheus text-format dump to validate")
    parser.add_argument(
        "--nonzero",
        nargs="*",
        default=[],
        metavar="NAME",
        help="metric names whose summed value must be > 0",
    )
    args = parser.parse_args(argv)

    from repro.obs.export import parse_prometheus

    path = Path(args.metrics_file)
    if not path.exists():
        print(f"{path}: no such file", file=sys.stderr)
        return 1
    try:
        samples = parse_prometheus(path.read_text())
    except ValueError as exc:
        print(f"{path}: invalid Prometheus exposition: {exc}", file=sys.stderr)
        return 1

    totals: dict[str, float] = defaultdict(float)
    for sample in samples:
        totals[sample.name] += sample.value

    failures = []
    for name in args.nonzero:
        if totals.get(name, 0.0) <= 0.0:
            failures.append(
                f"{path}: counter {name!r} is "
                f"{'absent' if name not in totals else 'zero'} "
                f"— a layer stopped publishing"
            )
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1

    print(
        f"{path}: OK — {len(samples)} samples, "
        + ", ".join(f"{name}={totals[name]:.0f}" for name in args.nonzero)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
