"""Head-to-head comparison of all six algorithms on one emulated dataset —
a miniature, self-contained version of the paper's Table 4.

Run with:  python examples/algorithm_comparison.py [dataset] [n]
           (dataset defaults to Cifar, n to 4000)
"""

from __future__ import annotations

import sys
import time

from repro import PMLSHParams, create_index
from repro.datasets import load_dataset
from repro.evaluation import compute_ground_truth, run_query_set
from repro.evaluation.tables import format_table


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "Cifar"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    k = 50

    workload = load_dataset(dataset, n=n, num_queries=20, seed=5)
    print(f"workload: {dataset} emulation, {workload.n} x {workload.d}, k={k}")
    ground_truth = compute_ground_truth(workload.data, workload.queries, k_max=k)

    # Every contender is constructed through the registry factory; adding
    # one is a single (registry name, constructor kwargs) entry.
    algorithms = {
        "PM-LSH": ("pm-lsh", {"params": PMLSHParams(), "seed": 7}),
        "SRS": ("srs", {"seed": 7}),
        "QALSH": ("qalsh", {"seed": 7}),
        "Multi-Probe": ("multi-probe", {"seed": 7}),
        "R-LSH": ("r-lsh", {"params": PMLSHParams(), "seed": 7}),
        "LScan": ("lscan", {"portion": 0.7, "seed": 7}),
    }

    rows = []
    for name, (registry_name, kwargs) in algorithms.items():
        index = create_index(registry_name, **kwargs)
        start = time.perf_counter()
        index.fit(workload.data)
        build_s = time.perf_counter() - start
        result = run_query_set(index, workload.queries, k, ground_truth)
        rows.append(
            [name, build_s, result.query_time_ms, result.overall_ratio, result.recall]
        )

    print()
    print(
        format_table(
            f"Mini Table 4 on {dataset} (n={workload.n}, k={k}, c=1.5)",
            ["Algorithm", "Build (s)", "Query (ms)", "Overall ratio", "Recall"],
            rows,
            note="Shapes to look for: PM-LSH pairs top recall/ratio with low "
            "query time; QALSH is accurate but slow; LScan recall ~ 0.7.",
        )
    )


if __name__ == "__main__":
    main()
