"""Streaming index maintenance: querying while new items keep arriving.

§7.2 of the paper highlights similarity search over high-throughput
streams (first-story detection on Twitter, billion-tweet LSH systems).
The key operational requirement is *dynamic updates*: the index must
absorb new items without a rebuild and make them immediately queryable.

This example starts from a seed corpus, then alternates between ingesting
batches with ``index.add`` and answering (c, k)-ANN queries, verifying
after each batch that (a) freshly ingested items are findable and (b)
quality over the whole collection stays high.

Run with:  python examples/streaming_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.metrics import recall


def main() -> None:
    rng = np.random.default_rng(13)

    # Seed corpus plus a stream of later batches from the same source.
    full = gaussian_mixture(6000, 64, num_clusters=30, cluster_std=0.8, seed=5)
    seed_corpus, stream = full[:3000], full[3000:]
    batches = np.array_split(stream, 6)

    index = create_index("pm-lsh", seed=1).fit(seed_corpus)
    print(f"seed index: {index.n} items")

    for batch_number, batch in enumerate(batches, start=1):
        start = time.perf_counter()
        new_ids = index.add(batch)
        ingest_ms = (time.perf_counter() - start) * 1e3
        # (a) fresh items answer immediately.
        probe = batch[0]
        hit = index.query(probe, k=1)
        fresh_found = int(hit.ids[0]) == int(new_ids[0])
        # (b) quality over everything indexed so far.
        exact = create_index("exact").fit(index.data)
        sample = rng.integers(0, index.n, size=10)
        recalls = []
        for row in sample:
            q = index.data[row] + rng.normal(size=64) * 0.05
            got = index.query(q, k=10)
            truth = exact.query(q, k=10)
            recalls.append(recall(got.ids, truth.ids))
        print(
            f"batch {batch_number}: +{batch.shape[0]} items in {ingest_ms:7.1f} ms "
            f"(total {index.n})  fresh-item findable: {fresh_found}  "
            f"recall@10 over collection: {np.mean(recalls):.3f}"
        )


if __name__ == "__main__":
    main()
