"""Similar-image retrieval over GIST-like descriptors.

The paper motivates c-ANN search with similar-item retrieval (§1).  This
example emulates a small image-descriptor collection (the GIST workload of
Table 3: 960-dimensional global descriptors with manifold structure), then
compares PM-LSH against the exact scan and SRS on a retrieval task:
"given a photo, find the 20 most similar items in the catalogue".

Run with:  python examples/image_retrieval.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import create_index
from repro.datasets import load_dataset
from repro.evaluation.metrics import overall_ratio, recall


def main() -> None:
    # Emulated GIST: 960-d descriptors with the hardness profile of Table 3.
    workload = load_dataset("GIST", n=6000, num_queries=25, seed=3)
    data, queries = workload.data, workload.queries
    print(f"catalogue: {data.shape[0]} images x {data.shape[1]}-d descriptors")

    exact = create_index("exact").fit(data)
    print("\nbuilding indexes ...")
    start = time.perf_counter()
    pmlsh = create_index("pm-lsh", seed=9).fit(data)
    print(f"  PM-LSH build: {time.perf_counter() - start:6.2f}s")
    start = time.perf_counter()
    srs = create_index("srs", seed=9).fit(data)
    print(f"  SRS build:    {time.perf_counter() - start:6.2f}s")

    k = 20
    print(f"\nretrieving top-{k} similar images for {len(queries)} queries:")
    for name, index in (("Exact", exact), ("PM-LSH", pmlsh), ("SRS", srs)):
        start = time.perf_counter()
        recalls, ratios = [], []
        for i, query in enumerate(queries):
            result = index.query(query, k)
            truth = exact.query(query, k)
            recalls.append(recall(result.ids, truth.ids))
            ratios.append(overall_ratio(result.distances, truth.distances))
        elapsed = (time.perf_counter() - start) * 1e3 / len(queries)
        print(
            f"  {name:<8} {elapsed:7.2f} ms/query   "
            f"recall {np.mean(recalls):.3f}   ratio {np.mean(ratios):.4f}"
        )

    # Show one concrete retrieval.
    query = queries[0]
    result = pmlsh.query(query, 5)
    print("\nsample retrieval (query image #0), top-5 catalogue items:")
    for rank, (pid, dist) in enumerate(zip(result.ids, result.distances), start=1):
        print(f"  #{rank}: item {pid:>5}  descriptor distance {dist:8.3f}")


if __name__ == "__main__":
    main()
