"""Near-duplicate detection with range and closest-pair queries.

De-duplication is one of the paper's motivating applications (§1).  Two
of the query types map onto it directly:

* **range search** — "which items sit within distance r of this one?"
  answered for a whole batch of probes with the (r, c)-ball guarantee;
* **closest-pair search** — "which pairs of the corpus are suspiciously
  close?" — duplicate discovery with no probe set at all.

This example plants near-duplicates inside a document-embedding-like
dataset and finds them both ways, reporting precision/recall of each
detector against the planted truth.

Run with:  python examples/deduplication.py
"""

from __future__ import annotations

import numpy as np

from repro import PMLSHParams, create_index
from repro.datasets.synthetic import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(7)

    # A corpus of 4,000 embeddings; 200 of them get a planted near-duplicate.
    corpus = gaussian_mixture(4000, 96, num_clusters=25, cluster_std=1.0, seed=1)
    duplicate_of = rng.choice(4000, size=200, replace=False)
    duplicates = corpus[duplicate_of] + rng.normal(size=(200, 96)) * 0.01
    data = np.vstack([corpus, duplicates])
    print(f"corpus: {corpus.shape[0]} items + {duplicates.shape[0]} planted near-duplicates")

    index = create_index("pm-lsh", params=PMLSHParams(c=1.5), seed=11).fit(data)

    # Distance threshold separating "duplicate" from "merely similar":
    # planted noise has norm ~0.01*sqrt(96) ~ 0.1; within-cluster distances
    # are ~ sqrt(2*96) ~ 14, so r = 0.5 splits them decisively.
    r = 0.5

    # Detector 1 — batch range search over the duplicate block: each probe
    # should find its original inside B(q, r).  One call answers all 200
    # probes as a ragged RangeResult; a hit is any in-ball neighbour other
    # than the probe itself.
    probe_ids = corpus.shape[0] + np.arange(duplicates.shape[0])
    ragged = index.range_search(data[probe_ids], r)
    true_positive = sum(
        1
        for offset, probe_id in enumerate(probe_ids)
        if np.any(ragged[offset].ids != probe_id)
    )
    print(f"\nrange-search detector at r={r}:")
    print(f"  planted duplicates found: {true_positive}/{duplicates.shape[0]} "
          f"({true_positive / duplicates.shape[0]:.1%})")
    print(f"  candidates per probe: {ragged.stats['candidates']:.0f} "
          f"(vs {index.n} for a full scan)")

    # Control group: clean corpus items should NOT report a duplicate
    # (their nearest neighbour is a cluster mate far beyond c*r).
    clean_ids = np.asarray(
        [i for i in range(corpus.shape[0]) if i not in set(duplicate_of)]
    )
    control = rng.choice(clean_ids, size=300, replace=False)
    control_hits = index.range_search(data[control], r)
    false_positive = sum(
        1
        for offset, probe_id in enumerate(control)
        if np.any(control_hits[offset].ids != probe_id)
    )
    print(f"  false alarms on clean items: {false_positive}/{len(control)} "
          f"({false_positive / len(control):.1%})")

    # Detector 2 — closest-pair search: no probe set at all.  The planted
    # pairs are by construction the tightest pairs of the corpus, so the
    # top-200 closest pairs should recover them.
    pairs = index.closest_pairs(duplicates.shape[0])
    planted = {
        (int(min(orig, corpus.shape[0] + k)), int(max(orig, corpus.shape[0] + k)))
        for k, orig in enumerate(duplicate_of)
    }
    recovered = sum(
        1 for i, j, _ in pairs if (int(i), int(j)) in planted
    )
    print(f"\nclosest-pair detector (m={duplicates.shape[0]}):")
    print(f"  planted pairs recovered: {recovered}/{len(planted)} "
          f"({recovered / len(planted):.1%}); "
          f"verified {pairs.stats['verified']:.0f} of "
          f"{index.n * (index.n - 1) // 2} possible pairs")

    # The single-witness primitive behind detector 1 is also exposed
    # directly: Algorithm 1's (r, c)-ball-cover query.
    hit = index.ball_cover_query(data[probe_ids[0]], r=r, exclude={int(probe_ids[0])})
    print(f"\n(r, c)-BC spot check on probe {int(probe_ids[0])}: "
          + (f"found id {hit[0]} at {hit[1]:.4f}" if hit else "no witness"))


if __name__ == "__main__":
    main()
