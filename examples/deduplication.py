"""Near-duplicate detection with (r, c)-ball-cover queries.

De-duplication is one of the paper's motivating applications (§1).  The
(r, c)-BC query (Definition 3, Algorithm 1) is exactly the right primitive:
"is there an item within distance r of this one?" answered in sublinear
time with a constant-probability guarantee.

This example plants near-duplicates inside a document-embedding-like
dataset and uses PM-LSH's ball-cover query to find them, reporting
precision/recall of the detector against the planted truth.

Run with:  python examples/deduplication.py
"""

from __future__ import annotations

import numpy as np

from repro import PMLSHParams, create_index
from repro.datasets.synthetic import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(7)

    # A corpus of 4,000 embeddings; 200 of them get a planted near-duplicate.
    corpus = gaussian_mixture(4000, 96, num_clusters=25, cluster_std=1.0, seed=1)
    duplicate_of = rng.choice(4000, size=200, replace=False)
    duplicates = corpus[duplicate_of] + rng.normal(size=(200, 96)) * 0.01
    data = np.vstack([corpus, duplicates])
    print(f"corpus: {corpus.shape[0]} items + {duplicates.shape[0]} planted near-duplicates")

    index = create_index("pm-lsh", params=PMLSHParams(c=1.5), seed=11).fit(data)

    # Distance threshold separating "duplicate" from "merely similar":
    # planted noise has norm ~0.01*sqrt(96) ~ 0.1; within-cluster distances
    # are ~ sqrt(2*96) ~ 14, so r = 0.5 splits them decisively.
    r = 0.5

    # Scan the duplicate block: each entry should find its original.  The
    # probe itself is indexed, so it is excluded from its own ball.
    true_positive = 0
    for offset in range(duplicates.shape[0]):
        probe_id = corpus.shape[0] + offset
        hit = index.ball_cover_query(data[probe_id], r=r, exclude={probe_id})
        if hit is not None and hit[1] <= index.params.c * r:
            true_positive += 1
    print(f"\nduplicate detection at r={r}:")
    print(f"  planted duplicates found: {true_positive}/{duplicates.shape[0]} "
          f"({true_positive / duplicates.shape[0]:.1%})")

    # Control group: clean corpus items should NOT report a duplicate
    # (their nearest neighbour is a cluster mate far beyond c*r).
    clean_ids = [i for i in range(corpus.shape[0]) if i not in set(duplicate_of)]
    false_positive = 0
    control = rng.choice(clean_ids, size=300, replace=False)
    for probe_id in control:
        hit = index.ball_cover_query(data[probe_id], r=r, exclude={int(probe_id)})
        if hit is not None:
            false_positive += 1
    print(f"  false alarms on clean items: {false_positive}/{len(control)} "
          f"({false_positive / len(control):.1%})")

    # The guarantee behind this: Lemma 5 — Algorithm 1 answers the
    # (r, c)-BC query correctly with at least constant probability, and the
    # planted pairs sit far inside B(q, r) while clean NNs sit far outside
    # B(q, c*r), which is the easy regime.


if __name__ == "__main__":
    main()
