"""Quickstart: construct an index by name, fit it, and run batch queries.

Every algorithm in the library follows the same lifecycle:

    index = repro.create_index("pm-lsh", seed=42)   # registry factory
    index.fit(data)                                 # build over (n, d)
    batch = index.search(queries, k)                # (Q, d) -> BatchResult
    index.add(new_points)                           # dynamic growth

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.evaluation.metrics import overall_ratio, recall


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A dataset: 5,000 points in 128 dimensions with cluster structure
    #    (descriptor-like data; pure noise would make any ANN method sweat).
    centers = rng.uniform(-10, 10, size=(20, 128))
    data = centers[rng.integers(0, 20, size=5000)] + rng.normal(size=(5000, 128))

    # 2. Construct by registry name and fit.  Defaults follow the paper's
    #    §6.1: m = 15 projections, s = 5 pivots, c = 1.5, alpha1 = 1/e.
    print(f"registered algorithms: {', '.join(repro.available_indexes())}")
    index = repro.create_index("pm-lsh", seed=42).fit(data)
    print(f"indexed {index.n} points in {index.d} dimensions")
    print(
        f"solved parameters: t={index.solved.t:.3f} "
        f"alpha2={index.solved.alpha2:.4f} beta={index.solved.beta:.4f}"
    )

    # 3. Batch query: the approximate 10 NN of 25 perturbed points at once.
    #    search() projects the whole matrix in one GEMM and returns padded
    #    (Q, k) id/distance matrices plus aggregated per-query stats.
    queries = data[rng.integers(0, 5000, size=25)] + rng.normal(size=(25, 128)) * 0.1
    batch = index.search(queries, k=10)
    print(f"\nbatch search: ids {batch.ids.shape}, distances {batch.distances.shape}")
    print(
        f"aggregated stats: {batch.stats['candidates']:.0f} candidates and "
        f"{batch.stats['rounds']:.1f} range-query round(s) per query on average"
    )

    # 4. Single-query form, compared against the exact answer.
    query = queries[0]
    result = index.query(query, k=10)
    exact = repro.create_index("exact").fit(data).query(query, k=10)
    print("\n(c, k)-ANN result (k=10):")
    for pid, dist in zip(result.ids, result.distances):
        print(f"  point {pid:>5}  distance {dist:8.4f}")
    print(f"recall:        {recall(result.ids, exact.ids):.3f}")
    print(f"overall ratio: {overall_ratio(result.distances, exact.distances):.4f}")

    # 5. Dynamic growth: add() makes new points immediately queryable.
    new_points = centers[rng.integers(0, 20, size=50)] + rng.normal(size=(50, 128))
    new_ids = index.add(new_points)
    hit = index.query(new_points[0], k=1)
    print(f"\nadded {len(new_ids)} points; nearest to the first new point: "
          f"id {int(hit.ids[0])} (expected {int(new_ids[0])})")

    # 6. The (r, c)-ball-cover primitive (Algorithm 1) is also exposed.
    radius = float(exact.distances[0]) * 1.2
    hit = index.ball_cover_query(query, r=radius)
    print(f"\n(r, c)-BC query at r={radius:.3f}: "
          + (f"point {hit[0]} at {hit[1]:.4f}" if hit else "empty"))

    # 7. Range queries: everything within r of each query, as a ragged
    #    CSR RangeResult.  The native PM-LSH path holds the (r, c)-ball
    #    contract on a budgeted candidate set instead of a full scan.
    ragged = index.range_search(queries[:5], r=radius * 4)
    print(f"\nrange search at r={radius * 4:.2f}: "
          f"per-query match counts {ragged.counts.tolist()} "
          f"({ragged.stats['candidates']:.0f} candidates/query vs n={index.n})")

    # 8. Per-query runtime knobs ride on the spec layer: cap this call's
    #    candidate budget without touching the index configuration.
    knobbed = index.run(queries[:5], repro.Knn(k=10, budget=200))
    print(f"budget-capped search: {knobbed.stats['candidates']:.0f} "
          f"candidates/query (default {batch.stats['candidates']:.0f})")

    # 9. Closest-pair search: the m tightest pairs of the indexed set via
    #    PM-LSH's projected-space self-join.
    pairs = index.closest_pairs(3)
    print("closest pairs:", [(i, j, round(d, 4)) for i, j, d in pairs])


if __name__ == "__main__":
    main()
