"""Quickstart: build a PM-LSH index and answer (c, k)-ANN queries.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactKNN, PMLSH, PMLSHParams
from repro.evaluation.metrics import overall_ratio, recall


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A dataset: 5,000 points in 128 dimensions with cluster structure
    #    (descriptor-like data; pure noise would make any ANN method sweat).
    centers = rng.uniform(-10, 10, size=(20, 128))
    data = centers[rng.integers(0, 20, size=5000)] + rng.normal(size=(5000, 128))

    # 2. Build the index.  Defaults follow the paper's §6.1:
    #    m = 15 projections, s = 5 pivots, c = 1.5, alpha1 = 1/e.
    index = PMLSH(data, params=PMLSHParams(), seed=42).build()
    print(f"indexed {index.n} points in {index.d} dimensions")
    print(
        f"solved parameters: t={index.solved.t:.3f} "
        f"alpha2={index.solved.alpha2:.4f} beta={index.solved.beta:.4f}"
    )

    # 3. Query: the approximate 10 nearest neighbours of a perturbed point.
    query = data[123] + rng.normal(size=128) * 0.1
    result = index.query(query, k=10)
    print("\n(c, k)-ANN result (k=10):")
    for pid, dist in zip(result.ids, result.distances):
        print(f"  point {pid:>5}  distance {dist:8.4f}")
    print(f"candidates verified: {result.stats['candidates']:.0f} "
          f"({result.stats['rounds']:.0f} range-query round(s))")

    # 4. Compare against the exact answer.
    exact = ExactKNN(data).build().query(query, k=10)
    print(f"\nrecall:        {recall(result.ids, exact.ids):.3f}")
    print(f"overall ratio: {overall_ratio(result.distances, exact.distances):.4f}")

    # 5. The (r, c)-ball-cover primitive (Algorithm 1) is also exposed.
    radius = float(exact.distances[0]) * 1.2
    hit = index.ball_cover_query(query, r=radius)
    print(f"\n(r, c)-BC query at r={radius:.3f}: "
          + (f"point {hit[0]} at {hit[1]:.4f}" if hit else "empty"))


if __name__ == "__main__":
    main()
