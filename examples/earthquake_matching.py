"""Matching reoccurring waveform segments (earthquake-detection style).

§7.2 of the paper cites LSH-based earthquake detection: reoccurring
earthquakes produce highly similar waveform segments, so finding past
segments similar to a new one is a (c, k)-ANN query over windowed
time-series features.

This example synthesises a continuous seismic-like signal with planted
repeating events, slices it into overlapping windows, embeds each window
as a vector, and uses PM-LSH to match fresh event windows back to their
historical occurrences.

Run with:  python examples/earthquake_matching.py
"""

from __future__ import annotations

import numpy as np

from repro import PMLSHParams, create_index


WINDOW = 128
STEP = 16


def synthesize_signal(rng: np.random.Generator, length: int, templates: np.ndarray,
                      occurrences: list[tuple[int, int]]) -> np.ndarray:
    """Background noise plus scaled template waveforms at given offsets."""
    signal = rng.normal(0.0, 0.3, size=length)
    for template_id, offset in occurrences:
        template = templates[template_id]
        scale = rng.uniform(0.8, 1.2)
        signal[offset : offset + template.size] += scale * template
    return signal


def window_features(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Slice into normalised overlapping windows (ids are window offsets)."""
    starts = np.arange(0, signal.size - WINDOW, STEP)
    windows = np.stack([signal[s : s + WINDOW] for s in starts])
    # Normalise each window so matching is amplitude-invariant.
    windows = windows - windows.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(windows, axis=1, keepdims=True)
    windows = windows / np.maximum(norms, 1e-9)
    return windows, starts


def main() -> None:
    rng = np.random.default_rng(21)

    # Five characteristic event waveforms (damped oscillations).
    t = np.linspace(0, 6 * np.pi, WINDOW)
    templates = np.stack([
        np.exp(-t / rng.uniform(4, 9)) * np.sin(rng.uniform(1.5, 5.0) * t)
        for _ in range(5)
    ]) * 3.0

    # Historical archive: 60 occurrences of the 5 events in a long signal.
    archive_events = [
        (int(rng.integers(0, 5)), int(offset))
        for offset in rng.choice(np.arange(0, 95_000, 640), size=60, replace=False)
    ]
    archive = synthesize_signal(rng, 100_000, templates, archive_events)
    features, starts = window_features(archive)
    print(f"archive: {archive.size} samples -> {features.shape[0]} windows of {WINDOW}")

    index = create_index("pm-lsh", params=PMLSHParams(c=1.5), seed=2).fit(features)

    # Fresh recordings of each event, with new noise and scaling.
    print("\nmatching fresh event recordings against the archive:")
    hits = 0
    for template_id in range(5):
        fresh = synthesize_signal(rng, WINDOW + 64, templates, [(template_id, 32)])
        probe = fresh[32 : 32 + WINDOW]
        probe = probe - probe.mean()
        probe = probe / max(np.linalg.norm(probe), 1e-9)
        result = index.query(probe, k=5)
        # A match is correct if the window overlaps a planted occurrence of
        # the same template.
        occurrences = [off for tid, off in archive_events if tid == template_id]
        matched = []
        for pid in result.ids:
            window_start = int(starts[pid])
            if any(abs(window_start - off) < WINDOW for off in occurrences):
                matched.append(window_start)
        hits += bool(matched)
        print(
            f"  event {template_id}: top-5 windows at offsets "
            f"{[int(starts[p]) for p in result.ids]} -> "
            f"{len(matched)}/5 overlap a true occurrence"
        )
    print(f"\nevents re-identified: {hits}/5")


if __name__ == "__main__":
    main()
