"""Serving simulation: a sharded engine under mixed query/ingest traffic.

The ROADMAP's target scenario — a production service answering query
batches while new items keep arriving.  This example stands up a 4-shard
PM-LSH engine through the registry factory, then plays a stream of ticks:
every tick a batch of queries is answered (fanned out across the shards
and merged), and every other tick a batch of fresh points is ingested
with ``add()``, routed round-robin so the shards stay balanced.

After each tick it prints the batch latency, throughput and engine size;
at the end it dumps the per-shard stats table, showing ntotal, backend
repr and the last batch's per-shard timings.

Run with:  python examples/serving.py [seed_corpus_size] [ticks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import create_index
from repro.datasets.synthetic import gaussian_mixture


def main(seed_size: int = 4000, ticks: int = 6) -> None:
    rng = np.random.default_rng(42)
    dim, k, batch_queries, ingest_size = 64, 10, 48, 120

    # One pool of clustered vectors: the head seeds the index, the tail
    # arrives over time as ingest traffic.
    total = seed_size + ticks * ingest_size
    pool = gaussian_mixture(total, dim, num_clusters=30, cluster_std=0.8, seed=5)
    corpus, stream = pool[:seed_size], pool[seed_size:]

    engine = create_index(
        "sharded",
        backend="pm-lsh",
        num_shards=4,
        router="round-robin",
        seed=1,
    ).fit(corpus)
    print(f"engine up: {engine!r}")

    ingested = 0
    for tick in range(1, ticks + 1):
        # Query traffic: perturbed copies of indexed points.
        base = engine.data[rng.integers(0, engine.ntotal, size=batch_queries)]
        queries = base + rng.normal(size=(batch_queries, dim)) * 0.05
        batch = engine.search(queries, k)
        line = (
            f"tick {tick}: {batch_queries} queries in "
            f"{batch.stats['batch_time_ms']:7.1f} ms "
            f"({batch.stats['batch_qps']:7.1f} QPS), "
            f"slowest shard {batch.stats['shard_time_ms_max']:6.1f} ms"
        )

        if tick % 2 == 1:  # interleaved ingest traffic
            fresh = stream[ingested : ingested + ingest_size]
            new_ids = engine.add(fresh)
            ingested += fresh.shape[0]
            probe = engine.query(fresh[0], k=1)
            found = int(probe.ids[0]) == int(new_ids[0])
            line += f" | +{fresh.shape[0]} items (fresh findable: {found})"
        print(line + f" | ntotal={engine.ntotal}")

    print()
    print(engine.stats().as_table())


if __name__ == "__main__":
    main(
        seed_size=int(sys.argv[1]) if len(sys.argv) > 1 else 4000,
        ticks=int(sys.argv[2]) if len(sys.argv) > 2 else 6,
    )
