"""Async serving demo: open-loop traffic through the micro-batcher.

The ROADMAP's target scenario — a production service answering many
small independent requests while new items keep arriving — served the
way ``docs/serving.md`` describes.  A 4-shard PM-LSH engine sits behind
an :class:`~repro.serving.AsyncSearchServer`: requests arrive open-loop
(Poisson arrivals that do not wait for earlier answers, like real
clients), the deadline-based micro-batcher coalesces them into the large
batches the flat PM-tree hot path was built for, and a
projected-locality cache short-circuits repeated lookups.  Mid-stream,
ingest batches run through the epoch-interleaved write path — never in
the middle of an in-flight batch — and the demo verifies fresh points
are immediately findable.

At the end it prints both stats layers: the serving snapshot (batch
occupancy, p50/p99 latency, cache hit rate, flush breakdown) and the
engine's per-shard table.

Run with:  python examples/serving.py [seed_corpus_size] [requests]
"""

from __future__ import annotations

import asyncio
import sys

import numpy as np

from repro import Knn, create_index
from repro.datasets.synthetic import gaussian_mixture
from repro.serving import AsyncSearchServer, open_loop_arrivals


async def serve(seed_size: int, requests: int) -> None:
    rng = np.random.default_rng(42)
    dim, k, ingest_batches, ingest_size = 64, 10, 3, 120

    # One pool of clustered vectors: the head seeds the index, the tail
    # arrives over time as ingest traffic.
    total = seed_size + ingest_batches * ingest_size
    pool = gaussian_mixture(total, dim, num_clusters=30, cluster_std=0.8, seed=5)
    corpus, stream = pool[:seed_size], pool[seed_size:]

    engine = create_index(
        "sharded", backend="pm-lsh", num_shards=4, router="round-robin", seed=1
    ).fit(corpus)
    print(f"engine up: {engine!r}")

    # Query traffic: perturbed copies of indexed points, ~10% of them
    # exact repeats of earlier requests (hot items getting looked up
    # again) so the projected-locality cache has something to do.  The
    # repeats live inside the final, ingest-free stretch of the stream —
    # every add() deliberately clears the cache, so only repeats with no
    # write between source and repeat can hit.
    base = corpus[rng.integers(0, seed_size, size=requests)]
    queries = base + rng.normal(size=(requests, dim)) * 0.05
    tail = 3 * requests // 4  # after the last ingest point
    sources = rng.integers(tail, (tail + requests) // 2, size=requests // 10)
    targets = rng.integers((tail + requests) // 2, requests, size=requests // 10)
    queries[targets] = queries[sources]

    async with AsyncSearchServer(
        engine, max_batch=32, max_delay_ms=2.0, cache=256
    ) as server:
        loop = asyncio.get_running_loop()
        start = loop.time()
        # Open-loop arrivals (the shared Poisson driver: every request
        # fires at its own scheduled time, whether or not earlier answers
        # are back yet), played as segments with an ingest batch landing
        # between consecutive segments.
        segments = np.array_split(queries, ingest_batches + 1)
        results = []
        ingested = 0
        for segment_index, segment in enumerate(segments):
            if segment_index > 0 and ingested < stream.shape[0]:
                fresh = stream[ingested : ingested + ingest_size]
                new_ids = await server.add(fresh)
                ingested += fresh.shape[0]
                probe = await server.submit(fresh[0], Knn(k=1))
                found = int(probe.ids[0]) == int(new_ids[0])
                print(
                    f"request {len(results)}: +{fresh.shape[0]} items ingested "
                    f"(fresh findable: {found}) | ntotal={engine.ntotal}"
                )
            results.extend(
                await open_loop_arrivals(
                    server,
                    list(segment),
                    Knn(k=k),
                    rate_per_s=2000.0,  # offered load, ~2000 req/s
                    seed=segment_index,
                )
            )
        wall_s = loop.time() - start

        stats = server.stats()
        print(
            f"\n{requests} requests in {wall_s * 1e3:.0f} ms "
            f"({requests / wall_s:.0f} QPS served), "
            f"batch occupancy {stats.mean_occupancy:.1f}, "
            f"p50 {stats.latency_p50_ms:.2f} ms / p99 {stats.latency_p99_ms:.2f} ms"
        )
        served_from_cache = sum(
            1 for result in results if result.stats.get("served_from_cache")
        )
        print(f"cache short-circuited {served_from_cache} requests")
        print()
        print(stats.as_table())
    print(engine.stats().as_table())
    engine.close()


def main(seed_size: int = 4000, requests: int = 400) -> None:
    asyncio.run(serve(seed_size, requests))


if __name__ == "__main__":
    main(
        seed_size=int(sys.argv[1]) if len(sys.argv) > 1 else 4000,
        requests=int(sys.argv[2]) if len(sys.argv) > 2 else 400,
    )
