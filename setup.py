"""Setup shim for environments without the `wheel` package.

Lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
editable path (PEP 660 editable builds require `wheel`, which may be
unavailable offline).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
