"""Generate ``docs/api.md`` from the library's live docstrings.

The reference is *generated, not written*: every section below is the
``__doc__`` of the public object it documents, so the page can never
drift from the code.  CI regenerates it with ``--check`` and fails when
the committed file is stale::

    PYTHONPATH=src python docs/generate_api.py          # rewrite docs/api.md
    PYTHONPATH=src python docs/generate_api.py --check  # verify freshness
"""

from __future__ import annotations

import inspect
import sys
import textwrap
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

HEADER = """\
# API reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: PYTHONPATH=src python docs/generate_api.py -->

Generated from the library's docstrings by [`docs/generate_api.py`](generate_api.py);
CI fails when this file goes stale.  Start with the
[architecture overview](architecture.md) for how the pieces fit together,
the [tuning guide](tuning.md) for the knobs, and the
[lifecycle guide](lifecycle.md) for deletes, compaction and replica
snapshots.

A minimal end-to-end session:

```python
import numpy as np
import repro

data = np.random.default_rng(0).normal(size=(2000, 32))
index = repro.create_index("pm-lsh", seed=42).fit(data)
batch = index.search(data[:8] + 0.01, k=5)      # -> BatchResult
ragged = index.range_search(data[:4], r=5.0)    # -> RangeResult
pairs = index.closest_pairs(3)                  # -> ClosestPairResult
assert batch.ids.shape == (8, 5)
```
"""


def _doc(obj) -> str:
    doc = inspect.getdoc(obj) or "*(undocumented)*"
    return doc.rstrip()


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _method_section(cls, name: str) -> str:
    member = inspect.getattr_static(cls, name)
    raw = member
    if isinstance(member, (classmethod, staticmethod)):
        raw = member.__func__
    if isinstance(member, property):
        title = f"`{cls.__name__}.{name}` *(property)*"
        doc = _doc(member.fget)
    else:
        title = f"`{cls.__name__}.{name}{_signature(raw)}`"
        doc = _doc(raw)
    return f"#### {title}\n\n```text\n{doc}\n```\n"


def _class_section(cls, members) -> str:
    parts = [f"### `{cls.__module__.split('.')[0]}.{cls.__name__}`\n"]
    parts.append(f"```text\n{_doc(cls)}\n```\n")
    for name in members:
        parts.append(_method_section(cls, name))
    return "\n".join(parts)


def _function_section(fn) -> str:
    return (
        f"### `{fn.__module__.split('.')[0]}.{fn.__name__}{_signature(fn)}`\n\n"
        f"```text\n{_doc(fn)}\n```\n"
    )


def build() -> str:
    import repro
    from repro import kernels
    from repro.baselines.base import ANNIndex, BatchResult, QueryResult
    from repro.core.hashing import GaussianProjection, SampledProjection
    from repro.core.params import PMLSHParams
    from repro.core.pmlsh import PMLSH
    from repro.engine.sharded import ShardedIndex
    from repro.engine.stats import EngineStats, LatencyWindow
    from repro.lifecycle.compaction import (
        CompactionPolicy,
        CompactionResult,
        compact_index,
    )
    from repro.lifecycle.replica import Replica
    from repro.lifecycle.tombstones import TombstoneSet
    from repro.obs.export import parse_prometheus, render_prometheus
    from repro.obs.metrics import (
        Counter,
        Gauge,
        Histogram,
        MetricsRegistry,
        default_registry,
    )
    from repro.obs.slowlog import SlowQueryLog
    from repro.parallel.pool import WorkerPool
    from repro.parallel.shm import (
        SegmentHandle,
        attach_segment,
        leaked_segments,
        publish_arrays,
    )
    from repro.obs.tracing import Trace, Tracer, current_trace, use_trace
    from repro.persistence import snapshot_epoch
    from repro.pmtree.flat import FlatPMTree
    from repro.queries import ClosestPairResult, Knn, Range, RangeResult
    from repro.serving.admission import (
        AdmissionControl,
        DeadlineExceeded,
        QueueFull,
        ShedRecord,
    )
    from repro.serving.cache import ProjectedQueryCache, TieredQueryCache
    from repro.serving.clock import Clock, LoopClock, VirtualClock
    from repro.serving.controller import AdaptiveBatchController, ControllerConfig
    from repro.serving.server import AsyncSearchServer
    from repro.serving.stats import ServingStats

    sections = [
        HEADER,
        "## Factory and persistence\n",
        _function_section(repro.create_index),
        _function_section(repro.available_indexes),
        _function_section(repro.load_index),
        "## The index interface\n",
        _class_section(
            ANNIndex,
            [
                "fit",
                "add",
                "delete",
                "compact",
                "search",
                "run",
                "range_search",
                "closest_pairs",
                "query",
                "ntotal",
                "nlive",
                "epoch",
            ],
        ),
        "## Query specs\n",
        _class_section(Knn, []),
        _class_section(Range, []),
        "## Result containers\n",
        _class_section(QueryResult, []),
        _class_section(BatchResult, []),
        _class_section(RangeResult, ["counts"]),
        _class_section(ClosestPairResult, []),
        "## PM-LSH\n",
        _class_section(PMLSH, ["flat_tree", "save", "load"]),
        _class_section(PMLSHParams, []),
        _class_section(FlatPMTree, ["batch_range", "batch_knn"]),
        "## Kernel dispatch\n",
        _function_section(kernels.active),
        _function_section(kernels.set_backend),
        _function_section(kernels.use_backend),
        _function_section(kernels.available_backends),
        _function_section(kernels.numba_available),
        _function_section(kernels.kernel_calls),
        _function_section(kernels.reset_kernel_calls),
        _class_section(kernels.KernelBackend, []),
        "## Hash families\n",
        _class_section(GaussianProjection, ["project"]),
        _class_section(SampledProjection, ["project", "from_arrays"]),
        "## The sharded serving engine\n",
        _class_section(ShardedIndex, ["stats", "locate", "close"]),
        _class_section(EngineStats, ["qps", "as_table"]),
        "## The process-parallel worker pool\n",
        _class_section(
            WorkerPool,
            ["start", "publish", "run", "ping", "owner", "close", "terminate"],
        ),
        _function_section(publish_arrays),
        _function_section(attach_segment),
        _function_section(leaked_segments),
        _class_section(SegmentHandle, []),
        "## Index lifecycle: deletes, compaction, replicas\n",
        _class_section(TombstoneSet, ["mark", "contains", "alive_mask", "live_ids"]),
        _class_section(CompactionPolicy, ["reason", "should_compact"]),
        _class_section(CompactionResult, []),
        _function_section(compact_index),
        _class_section(Replica, ["refresh"]),
        _function_section(snapshot_epoch),
        "## The async serving front-end\n",
        _class_section(
            AsyncSearchServer,
            [
                "submit",
                "submit_many",
                "add",
                "delete",
                "compact",
                "swap_index",
                "flush",
                "close",
                "stats",
                "queue_depth",
            ],
        ),
        _class_section(ProjectedQueryCache, ["get", "put", "invalidate", "key_for"]),
        _class_section(TieredQueryCache, ["get", "put", "invalidate"]),
        _class_section(ServingStats, ["cache_hit_rate", "as_dict", "as_table"]),
        _class_section(LatencyWindow, ["record", "percentile", "snapshot", "reset"]),
        "## Self-tuning and admission control\n",
        _class_section(AdaptiveBatchController, ["tick", "bind", "decision_log", "window", "delay_ms", "adjustments"]),
        _class_section(ControllerConfig, []),
        _class_section(AdmissionControl, ["expired", "overflowing", "record_shed"]),
        _class_section(DeadlineExceeded, []),
        _class_section(QueueFull, []),
        _class_section(ShedRecord, []),
        "## Clocks: virtual time for serving tests\n",
        _class_section(Clock, ["now", "call_later"]),
        _class_section(LoopClock, []),
        _class_section(VirtualClock, ["advance", "advance_to", "pending", "next_deadline"]),
        "## Observability\n",
        _class_section(
            MetricsRegistry,
            ["counter", "gauge", "histogram", "scope", "collect", "to_prometheus", "to_json"],
        ),
        _function_section(default_registry),
        _class_section(Counter, []),
        _class_section(Gauge, []),
        _class_section(Histogram, ["observe", "cumulative_buckets"]),
        _class_section(Tracer, ["start", "finish", "drain"]),
        _class_section(Trace, ["span", "anchored", "add_span", "span_names", "as_dict"]),
        _function_section(current_trace),
        _function_section(use_trace),
        _class_section(SlowQueryLog, ["observe", "bind_window", "records", "to_json"]),
        _function_section(render_prometheus),
        _function_section(parse_prometheus),
    ]
    body = "\n".join(section.rstrip() + "\n" for section in sections)
    return textwrap.dedent(body).rstrip() + "\n"


def main(argv: list[str]) -> int:
    target = ROOT / "docs" / "api.md"
    content = build()
    if "--check" in argv:
        current = target.read_text() if target.exists() else ""
        if current != content:
            print(
                "docs/api.md is stale — regenerate with "
                "`PYTHONPATH=src python docs/generate_api.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/api.md is up to date")
        return 0
    target.write_text(content)
    print(f"wrote {target} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
