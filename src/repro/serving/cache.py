"""Projected-locality query-result cache for the serving front-end.

Repeated — and, at coarser resolutions, *near-duplicate* — queries are
the realistic serving shape (the same hot items get looked up again and
again), and a verified PM-LSH answer is expensive relative to a
dictionary probe.  The cache keys each request on

* the spec's :attr:`~repro.queries.QuerySpec.merge_key` (a ``Knn(10)``
  answer must never serve a ``Knn(5)`` or a ``Range(2.0)`` request), and
* the query's **quantized projected coordinates**: the vector is mapped
  through the index's existing hash layer (the projection bank PM-LSH
  already owns — the dense Gaussian family, or the sampled structured
  family under ``PMLSHParams(hash_family="sampled")``, whose ~√d-
  coordinate functions make the per-request key GEMM correspondingly
  cheaper) and snapped to a grid of edge ``resolution`` in
  projected space.  Lemma 2 makes projected distance track original
  distance, so two queries landing in the same cell are close in the
  original space too — at the default (tiny) resolution the cache only
  collapses byte-duplicate queries; widening it trades exactness for hit
  rate, which is the ROADMAP's "near-duplicate reuse" knob.

Writes invalidate: :meth:`ProjectedQueryCache.invalidate` bumps the cache
epoch and clears every entry, and a ``put`` tagged with a pre-bump epoch
is dropped — so an answer computed against pre-``add()`` data can never
be served after the write, even if its batch was in flight while the
write landed.

:class:`TieredQueryCache` stacks an **exact-hit LRU** in front of the
projected cache: tier 1 keys on the raw query bytes (no projection GEMM,
no quantization — one dict probe), tier 2 is the projected cache above
with its near-duplicate semantics; a tier-2 hit is promoted into tier 1.
Both tiers share one epoch — ``invalidate()`` clears them together and a
stale ``put`` is dropped from both — so the write-safety story is
unchanged.  The server builds one when ``exact_cache=<capacity>`` is
passed next to ``cache=...``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

from repro.baselines.base import QueryResult
from repro.queries import QuerySpec


class ProjectedQueryCache:
    """LRU cache of per-request :class:`QueryResult`s keyed by projected locality.

    Parameters
    ----------
    capacity:
        Maximum retained entries; the least recently used entry is evicted
        first.
    resolution:
        Edge length of the quantization cell in projected space.  The
        default ``1e-9`` collapses only (numerically) identical queries;
        raise it to let near-duplicates share answers.
    projector:
        Maps a ``(d,)`` query vector into the space the key is quantized
        in.  The server passes the index's own projection when it has one
        (``index.projection.project``); ``None`` quantizes the raw vector,
        which keeps the cache exact-duplicate-correct for any backend.
    """

    def __init__(
        self,
        *,
        capacity: int = 1024,
        resolution: float = 1e-9,
        projector: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not resolution > 0.0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.capacity = int(capacity)
        self.resolution = float(resolution)
        self._projector = projector
        self._entries: "OrderedDict[Tuple, QueryResult]" = OrderedDict()
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self._c_evictions = None
        self._c_invalidations = None
        self._c_stale_puts = None

    def __len__(self) -> int:
        return len(self._entries)

    def bind_metrics(self, registry, labels=None) -> None:
        """Publish eviction/invalidation/stale-put counters into *registry*.

        Hit/miss totals stay plain attributes (the server exports them as
        gauges); the counters here are the events only the cache sees.
        """
        labels = labels or {}
        self._c_evictions = registry.counter(
            "cache_evictions", "Entries evicted by LRU capacity pressure", labels
        )
        self._c_invalidations = registry.counter(
            "cache_invalidations", "Epoch bumps that dropped every entry", labels
        )
        self._c_stale_puts = registry.counter(
            "cache_stale_puts", "Answers dropped for being computed pre-write", labels
        )

    def key_for(self, query: np.ndarray, spec: QuerySpec) -> Tuple:
        """The ``(merge key, quantized projected cell)`` key of one request."""
        vector = np.asarray(query, dtype=np.float64)
        if self._projector is not None:
            vector = np.asarray(self._projector(vector), dtype=np.float64)
        cell = np.round(vector / self.resolution).astype(np.int64)
        return (spec.merge_key, cell.tobytes())

    def get(self, query: np.ndarray, spec: QuerySpec) -> Optional[QueryResult]:
        """The cached answer for this request, or ``None`` (counted as hit/miss)."""
        key = self.key_for(query, spec)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self, query: np.ndarray, spec: QuerySpec, result: QueryResult, epoch: int
    ) -> bool:
        """Store *result* unless *epoch* is stale (pre-invalidation data).

        *epoch* is the cache epoch captured when the answering batch was
        dispatched; a mismatch means a write landed while the batch was in
        flight, so the answer reflects pre-write data and is dropped.
        Returns whether the entry was stored.
        """
        if epoch != self.epoch:
            if self._c_stale_puts is not None:
                self._c_stale_puts.inc()
            return False
        key = self.key_for(query, spec)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            if self._c_evictions is not None:
                self._c_evictions.inc()
        return True

    def invalidate(self) -> None:
        """Drop every entry and bump the epoch (called on every ``add()``)."""
        self._entries.clear()
        self.epoch += 1
        if self._c_invalidations is not None:
            self._c_invalidations.inc()


class TieredQueryCache:
    """Two-tier result cache: exact-hit LRU over a projected-locality tier.

    Tier 1 answers byte-identical repeat queries with a single dict
    probe — no projection, no quantization — which is the dominant case
    on hot-item traffic.  Tier 2 is an ordinary
    :class:`ProjectedQueryCache` (optional): near-duplicate queries that
    miss tier 1 can still share an answer through projected-cell
    quantization, and its hit is *promoted* into tier 1 so the next
    identical repeat stays on the fast path.

    The tiers share one epoch (the projected tier's, when present):
    :meth:`invalidate` clears both together, and :meth:`put` drops
    stale answers from both — the server's write-safety contract is a
    single decision, not two.

    ``hits`` / ``misses`` aggregate across tiers (an exact hit never
    double-counts in tier 2; a total miss counts once), so the serving
    gauges and hit-rate math work unchanged.
    """

    def __init__(
        self,
        *,
        exact_capacity: int = 1024,
        projected: Optional[ProjectedQueryCache] = None,
    ) -> None:
        if exact_capacity < 1:
            raise ValueError(f"exact_capacity must be >= 1, got {exact_capacity}")
        self.exact_capacity = int(exact_capacity)
        self.projected = projected
        self._exact: "OrderedDict[Tuple, QueryResult]" = OrderedDict()
        self._own_epoch = 0  # used only when there is no projected tier
        self.exact_hits = 0
        self._exact_only_misses = 0  # misses counted when projected is None
        self._c_stale_puts = None
        self._c_evictions = None

    def __len__(self) -> int:
        # NB: "is not None" everywhere — an *empty* projected tier is
        # falsy (it defines __len__), so plain truthiness would skip it.
        return len(self._exact) + (
            len(self.projected) if self.projected is not None else 0
        )

    @property
    def capacity(self) -> int:
        """Total retained entries across both tiers (repr/diagnostics)."""
        return self.exact_capacity + (
            self.projected.capacity if self.projected is not None else 0
        )

    @property
    def epoch(self) -> int:
        """The shared write epoch (the projected tier's when present)."""
        return self.projected.epoch if self.projected is not None else self._own_epoch

    @property
    def hits(self) -> int:
        """Aggregate hits: exact-tier plus projected-tier."""
        return self.exact_hits + (
            self.projected.hits if self.projected is not None else 0
        )

    @property
    def misses(self) -> int:
        """Aggregate misses (a request missing both tiers counts once)."""
        if self.projected is not None:
            # Every exact miss falls through to the projected tier, whose
            # miss count is therefore the both-tiers miss total.
            return self.projected.misses
        return self._exact_only_misses

    def bind_metrics(self, registry, labels=None) -> None:
        """Publish tier counters; forwards to the projected tier too."""
        labels = labels or {}
        self._c_evictions = registry.counter(
            "cache_exact_evictions", "Exact-tier entries evicted by LRU pressure", labels
        )
        self._c_stale_puts = registry.counter(
            "cache_stale_puts", "Answers dropped for being computed pre-write", labels
        )
        if self.projected is not None:
            self.projected.bind_metrics(registry, labels)

    def _exact_key(self, query: np.ndarray, spec: QuerySpec) -> Tuple:
        vector = np.ascontiguousarray(np.asarray(query, dtype=np.float64))
        return (spec.merge_key, vector.tobytes())

    def get(self, query: np.ndarray, spec: QuerySpec) -> Optional[QueryResult]:
        """Tier-1 probe, then tier-2; a tier-2 hit is promoted to tier 1."""
        key = self._exact_key(query, spec)
        entry = self._exact.get(key)
        if entry is not None:
            self._exact.move_to_end(key)
            self.exact_hits += 1
            return entry
        if self.projected is None:
            self._exact_only_misses += 1
            return None
        entry = self.projected.get(query, spec)
        if entry is not None:
            self._store_exact(key, entry)
        return entry

    def put(
        self, query: np.ndarray, spec: QuerySpec, result: QueryResult, epoch: int
    ) -> bool:
        """Store in both tiers unless *epoch* is stale (then drop from both)."""
        if epoch != self.epoch:
            if self.projected is not None:
                self.projected.put(query, spec, result, epoch)  # counts the stale put
            elif self._c_stale_puts is not None:
                self._c_stale_puts.inc()
            return False
        self._store_exact(self._exact_key(query, spec), result)
        if self.projected is not None:
            self.projected.put(query, spec, result, epoch)
        return True

    def _store_exact(self, key: Tuple, result: QueryResult) -> None:
        self._exact[key] = result
        self._exact.move_to_end(key)
        while len(self._exact) > self.exact_capacity:
            self._exact.popitem(last=False)
            if self._c_evictions is not None:
                self._c_evictions.inc()

    def invalidate(self) -> None:
        """Drop both tiers and bump the shared epoch (every write does)."""
        self._exact.clear()
        if self.projected is not None:
            self.projected.invalidate()
        else:
            self._own_epoch += 1
