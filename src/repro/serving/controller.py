"""The adaptive batch controller: AIMD over the micro-batching knobs.

``results/serving.txt`` shows the best static ``(max_batch,
max_delay_ms)`` pair *flips with load* — a narrow window wins at 1x
capacity (nothing queues, waiting only adds latency) while a wide window
wins at 4x (amortization is everything).  Static knobs therefore cannot
serve a diurnal or bursty trace well at both ends;
:class:`AdaptiveBatchController` closes the loop instead, reading the
serving instruments the observability layer already publishes and
steering the effective window between configured clamps.

The loop is AIMD-style with hysteresis:

* **Widen (additive)** under pressure — either the queue is at least one
  full batch deep (work is waiting), or batches are dispatching *full*
  on the size trigger (``size_flushes`` dominate and occupancy is at
  ``full_occupancy`` of the window, so the window itself is the binding
  constraint).  Either way a bigger window converts queueing delay into
  amortization: ``window += increase_step`` (clamped to ``max_batch``),
  and the deadline stretches multiplicatively toward ``max_delay_ms``.
* **Narrow (multiplicative)** when the server is demonstrably idle —
  the queue is empty and batches are dispatching on *deadline* with low
  occupancy, i.e. the window is mostly waiting for peers that never
  arrive: ``window = ceil(window * decrease_factor)`` (clamped to
  ``min_batch``) and the deadline shrinks by the same factor.  A p99
  SLO bound (``slo_ms``), when set, also votes to narrow whenever the
  rolling p99 exceeds it while the queue is shallow — waiting is then
  hurting the tail for nothing.
* **Hysteresis**: a direction must persist for ``hysteresis``
  consecutive ticks before it is applied, so one odd tick never flaps
  the knobs; ticks are rate-limited to one per ``interval_ms`` of the
  serving clock (virtual in tests — decisions are fully deterministic).

Inputs are read straight from the PR 7 metrics registry — the
``queue_depth`` gauge, the ``size_flushes`` / ``deadline_flushes``
counters, batch occupancy from ``requests_batched`` / ``batches_served``
and the rolling p99 of the server's
:class:`~repro.obs.metrics.LatencyWindow` — and every applied decision
is published back as gauges (``controller_window``,
``controller_delay_ms``) and counters (``controller_widens``,
``controller_narrows``, ``controller_ticks``), appended to
:attr:`AdaptiveBatchController.decisions` (the decision log two
identical traces reproduce byte-for-byte), and surfaced in
:class:`~repro.serving.stats.ServingStats`.

Invariants (property-tested under hypothesis over arbitrary traces):
``min_batch <= window <= max_batch`` and ``min_delay_ms <= delay_ms <=
max_delay_ms`` after every tick; constant input signals converge (the
decision log goes quiet); identical traces produce identical logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.metrics import LatencyWindow, MetricsRegistry


@dataclass(frozen=True)
class ControllerConfig:
    """Clamps, cadence and gains of the adaptive loop.

    ``min_batch``/``max_batch`` and ``min_delay_ms``/``max_delay_ms``
    bound the effective knobs — the controller can never push the server
    outside them.  ``interval_ms`` is the decision cadence on the
    serving clock; ``hysteresis`` is how many consecutive same-direction
    ticks a signal must persist before it acts.  ``increase_step`` is
    the additive widen (requests per decision);
    ``decrease_factor`` the multiplicative narrow.  ``idle_occupancy``
    is the fraction of the current window below which a deadline-flushed
    batch counts as "mostly empty"; ``full_occupancy`` the fraction at
    which size-triggered batches count as saturating the window.
    ``slo_ms``, when set, narrows the window whenever the rolling p99
    exceeds it while the queue is shallow.
    """

    min_batch: int = 1
    max_batch: int = 128
    min_delay_ms: float = 0.5
    max_delay_ms: float = 16.0
    interval_ms: float = 10.0
    hysteresis: int = 2
    increase_step: int = 8
    decrease_factor: float = 0.5
    idle_occupancy: float = 0.25
    full_occupancy: float = 0.9
    slo_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError(
                f"need 1 <= min_batch <= max_batch, got "
                f"[{self.min_batch}, {self.max_batch}]"
            )
        if not 0.0 <= self.min_delay_ms <= self.max_delay_ms:
            raise ValueError(
                f"need 0 <= min_delay_ms <= max_delay_ms, got "
                f"[{self.min_delay_ms}, {self.max_delay_ms}]"
            )
        if self.interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0, got {self.interval_ms}")
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.increase_step < 1:
            raise ValueError(f"increase_step must be >= 1, got {self.increase_step}")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {self.decrease_factor}"
            )
        if not 0.0 < self.full_occupancy <= 1.0:
            raise ValueError(
                f"full_occupancy must be in (0, 1], got {self.full_occupancy}"
            )


@dataclass(frozen=True)
class ControllerDecision:
    """One applied knob change: when, which way, and on what evidence."""

    tick: int
    at: float  # clock seconds
    action: str  # "widen" or "narrow"
    window: int  # the new effective max_batch
    delay_ms: float  # the new effective max_delay_ms
    queue_depth: int
    occupancy: float
    p99_ms: float

    def as_dict(self) -> dict:
        return {
            "tick": self.tick,
            "at": self.at,
            "action": self.action,
            "window": self.window,
            "delay_ms": self.delay_ms,
            "queue_depth": self.queue_depth,
            "occupancy": round(self.occupancy, 6),
            "p99_ms": self.p99_ms if math.isnan(self.p99_ms) else round(self.p99_ms, 6),
        }


@dataclass
class _CounterDeltas:
    """Per-tick deltas of the flush/batch counters the controller reads."""

    size_flushes: float = 0.0
    deadline_flushes: float = 0.0
    batches: float = 0.0
    batched: float = 0.0


class AdaptiveBatchController:
    """Self-tuning replacement for static ``max_batch`` / ``max_delay_ms``.

    Construct one (optionally with a :class:`ControllerConfig`) and hand
    it to ``AsyncSearchServer(controller=...)``; the server binds it to
    its metrics scope and latency window, seeds the initial knobs from
    its static ``max_batch`` / ``max_delay_ms`` (clamped into the
    config's range) and calls :meth:`tick` on the serving clock.  The
    current knobs are :attr:`window` and :attr:`delay_ms`; the applied
    decision history is :attr:`decisions`.

    A controller instance belongs to one server: binding it twice
    raises, so decision logs never interleave two traffic streams.
    """

    def __init__(
        self,
        config: Optional[ControllerConfig] = None,
        *,
        initial_batch: Optional[int] = None,
        initial_delay_ms: Optional[float] = None,
    ) -> None:
        self.config = config if config is not None else ControllerConfig()
        cfg = self.config
        self._window = self._clamp_window(
            cfg.max_batch if initial_batch is None else int(initial_batch)
        )
        self._delay_ms = self._clamp_delay(
            cfg.max_delay_ms if initial_delay_ms is None else float(initial_delay_ms)
        )
        #: Applied knob changes, oldest first (the determinism test diff).
        self.decisions: List[ControllerDecision] = []
        self._tick_no = 0
        self._last_tick_at: Optional[float] = None
        self._streak_dir = 0  # +1 widening pressure, -1 idle, 0 neutral
        self._streak_len = 0
        self._bound = False
        # instrument handles (filled by bind)
        self._queue_depth = None
        self._size_flushes = None
        self._deadline_flushes = None
        self._batches_served = None
        self._requests_batched = None
        self._latency_window: Optional[LatencyWindow] = None
        self._g_window = None
        self._g_delay = None
        self._c_ticks = None
        self._c_widens = None
        self._c_narrows = None
        self._prev = _CounterDeltas()

    # -- knobs ---------------------------------------------------------

    @property
    def window(self) -> int:
        """The effective ``max_batch`` the server should use right now."""
        return self._window

    @property
    def delay_ms(self) -> float:
        """The effective ``max_delay_ms`` the server should use right now."""
        return self._delay_ms

    @property
    def adjustments(self) -> int:
        """Applied knob changes so far (``len(decisions)``)."""
        return len(self.decisions)

    def _clamp_window(self, value: int) -> int:
        return max(self.config.min_batch, min(self.config.max_batch, int(value)))

    def _clamp_delay(self, value: float) -> float:
        return max(self.config.min_delay_ms, min(self.config.max_delay_ms, float(value)))

    # -- wiring --------------------------------------------------------

    def bind(
        self,
        registry: MetricsRegistry,
        labels: dict,
        latency_window: LatencyWindow,
    ) -> None:
        """Attach to a server's metrics scope (called by the server).

        The controller *reads* the serving instruments (queue depth,
        flush counters, occupancy, the latency window's rolling p99) and
        *writes* its own gauges/counters under the same labels.
        """
        if self._bound:
            raise RuntimeError(
                "AdaptiveBatchController is already bound to a server; "
                "construct one controller per server"
            )
        self._bound = True
        self._queue_depth = registry.gauge(
            "queue_depth", "Requests queued, not yet dispatched", labels
        )
        self._size_flushes = registry.counter(
            "size_flushes", "Dispatches on max_batch", labels
        )
        self._deadline_flushes = registry.counter(
            "deadline_flushes", "Dispatches on deadline", labels
        )
        self._batches_served = registry.counter(
            "batches_served", "Coalesced batches executed", labels
        )
        self._requests_batched = registry.counter(
            "requests_batched", "Requests answered through a batch", labels
        )
        self._latency_window = latency_window
        self._g_window = registry.gauge(
            "controller_window", "Adaptive effective max_batch", labels
        )
        self._g_delay = registry.gauge(
            "controller_delay_ms", "Adaptive effective max_delay_ms", labels
        )
        self._c_ticks = registry.counter(
            "controller_ticks", "Controller decision evaluations", labels
        )
        self._c_widens = registry.counter(
            "controller_widens", "Applied widen decisions", labels
        )
        self._c_narrows = registry.counter(
            "controller_narrows", "Applied narrow decisions", labels
        )
        self._g_window.set(self._window)
        self._g_delay.set(self._delay_ms)

    # -- the loop ------------------------------------------------------

    def tick(self, now: float) -> Optional[ControllerDecision]:
        """Evaluate one control step at clock time *now* (rate-limited).

        Returns the applied :class:`ControllerDecision`, or ``None`` when
        the interval has not elapsed, the signal is neutral, hysteresis
        is still counting, or the clamps made the action a no-op.
        """
        if not self._bound:
            return None
        if (
            self._last_tick_at is not None
            and (now - self._last_tick_at) * 1e3 < self.config.interval_ms
        ):
            return None
        self._last_tick_at = now
        self._tick_no += 1
        self._c_ticks.inc()

        queue_depth = int(self._queue_depth.value)
        deltas = _CounterDeltas(
            size_flushes=self._size_flushes.value - self._prev.size_flushes,
            deadline_flushes=self._deadline_flushes.value - self._prev.deadline_flushes,
            batches=self._batches_served.value - self._prev.batches,
            batched=self._requests_batched.value - self._prev.batched,
        )
        self._prev = _CounterDeltas(
            self._size_flushes.value,
            self._deadline_flushes.value,
            self._batches_served.value,
            self._requests_batched.value,
        )
        occupancy = deltas.batched / deltas.batches if deltas.batches else 0.0
        p99 = (
            self._latency_window.p99
            if self._latency_window is not None
            else float("nan")
        )

        direction = self._direction(queue_depth, deltas, occupancy, p99)
        if direction == self._streak_dir:
            self._streak_len += 1
        else:
            self._streak_dir = direction
            self._streak_len = 1
        if direction == 0 or self._streak_len < self.config.hysteresis:
            return None

        return self._apply(direction, now, queue_depth, occupancy, p99)

    def _direction(
        self, queue_depth: int, deltas: _CounterDeltas, occupancy: float, p99: float
    ) -> int:
        """+1 widen, -1 narrow, 0 hold — the raw (pre-hysteresis) signal."""
        cfg = self.config
        # Pressure: at least one full batch is already waiting — widening
        # converts queueing delay into amortization.
        if queue_depth >= self._window:
            return +1
        # Saturation: batches are leaving *full* on the size trigger, so
        # the window itself is the binding constraint (size dispatch
        # keeps the queue shallower than the window by construction —
        # the queue-depth signal alone can never see this regime).  The
        # occupancy > 1 guard keeps a window of one honest: its batches
        # are always "full" at exactly one request, which is evidence of
        # not batching, not of saturation — real pressure at window one
        # shows up as queue depth.
        if (
            deltas.batches > 0
            and deltas.size_flushes > deltas.deadline_flushes
            and occupancy > 1.0
            and occupancy >= cfg.full_occupancy * self._window
        ):
            return +1
        # SLO guard: the tail is over budget while the queue is shallow —
        # the deadline window itself is the latency, stop waiting.
        if (
            cfg.slo_ms is not None
            and not math.isnan(p99)
            and p99 > cfg.slo_ms
            and queue_depth < self._window
        ):
            return -1
        # Idle: batches are going out on *deadline*, mostly empty, with
        # nothing queued — the window is wider than the traffic.
        if (
            queue_depth == 0
            and deltas.batches > 0
            and deltas.deadline_flushes >= deltas.size_flushes
            and occupancy <= max(1.0, cfg.idle_occupancy * self._window)
        ):
            return -1
        return 0

    def _apply(
        self, direction: int, now: float, queue_depth: int, occupancy: float, p99: float
    ) -> Optional[ControllerDecision]:
        cfg = self.config
        if direction > 0:
            new_window = self._clamp_window(self._window + cfg.increase_step)
            # A zero delay doubles from a 0.25 ms floor, else it never moves.
            new_delay = self._clamp_delay(max(self._delay_ms, 0.25) * 2.0)
            action = "widen"
        else:
            new_window = self._clamp_window(
                math.ceil(self._window * cfg.decrease_factor)
            )
            new_delay = self._clamp_delay(self._delay_ms * cfg.decrease_factor)
            action = "narrow"
        if new_window == self._window and new_delay == self._delay_ms:
            return None  # clamped into a no-op: nothing to log, nothing to flap
        self._window = new_window
        self._delay_ms = new_delay
        self._streak_len = 0  # restart hysteresis after every applied change
        decision = ControllerDecision(
            tick=self._tick_no,
            at=now,
            action=action,
            window=new_window,
            delay_ms=new_delay,
            queue_depth=queue_depth,
            occupancy=occupancy,
            p99_ms=p99,
        )
        self.decisions.append(decision)
        self._g_window.set(new_window)
        self._g_delay.set(new_delay)
        (self._c_widens if direction > 0 else self._c_narrows).inc()
        return decision

    def decision_log(self) -> List[dict]:
        """The applied decisions as plain dicts (the determinism artifact)."""
        return [decision.as_dict() for decision in self.decisions]

    def __repr__(self) -> str:
        return (
            f"AdaptiveBatchController(window={self._window}, "
            f"delay_ms={self._delay_ms:g}, adjustments={self.adjustments})"
        )
