"""Admission control for the serving front-end: deadlines, backpressure.

Under overload a server that accepts everything answers *nothing* on
time — the queue grows without bound and every request pays the full
queueing delay.  The admission layer makes overload explicit and cheap:

* **Per-request deadlines.**  ``submit(q, spec, deadline_ms=...)``
  stamps the request with an absolute deadline on the server's clock.
  A request whose deadline has already passed when its batch dispatches
  is **shed** with a typed :class:`DeadlineExceeded` instead of being
  batched — it never reaches the index, so expired work costs the
  service nothing but the exception.  A request whose deadline is still
  in the future is *never* shed on deadline grounds (pinned by a
  hypothesis property test): shedding is strictly
  "the answer could not possibly matter anymore".
* **Bounded queue.**  ``max_queue_depth`` caps the total number of
  queued (undispatched) requests.  When an arrival would overflow it,
  the :class:`AdmissionControl` policy decides:

  - ``"reject-newest"`` (default) — the arriving request is refused with
    :class:`QueueFull`; everything already queued keeps its place.
  - ``"drop-oldest-expired"`` — queued requests whose deadlines have
    *already passed* are shed first (lowest priority lanes scanned
    first, oldest first); the arrival is admitted if that freed a slot
    and refused with :class:`QueueFull` otherwise.  Requests with live
    deadlines are never touched.

* **Priority lanes.**  ``submit(..., priority=...)`` splits each spec
  merge key into per-priority lanes; under contention — an explicit
  ``flush()``, a write drain, shutdown — higher-priority lanes dispatch
  first, and the shed scan above eats from the lowest priority upward.

Every shed and rejection is counted in the server's metrics
(``requests_shed``, ``requests_rejected``) and recorded in the
controller-visible :attr:`AdmissionControl.shed_log` so tests can prove
no satisfiable request was ever dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class ServingRejected(RuntimeError):
    """Base of the typed refusals the serving front-end can answer with."""


class DeadlineExceeded(ServingRejected):
    """The request's deadline passed before its batch could run.

    Raised (as the awaited future's exception) instead of an answer for
    any request whose absolute deadline is behind the serving clock at
    submit or dispatch time.  Carries how late the request was.
    """

    def __init__(self, late_ms: float, deadline_ms: Optional[float] = None) -> None:
        self.late_ms = float(late_ms)
        self.deadline_ms = deadline_ms
        detail = f"deadline passed {self.late_ms:.3f} ms ago"
        if deadline_ms is not None:
            detail += f" (budget was {deadline_ms:g} ms)"
        super().__init__(detail)


class QueueFull(ServingRejected):
    """The bounded pending queue refused the request (backpressure).

    Raised at ``submit()`` time when the queue is at ``max_queue_depth``
    and the shed policy could not free a slot.  The caller should back
    off or retry — nothing about the request was enqueued.
    """

    def __init__(self, depth: int, max_depth: int) -> None:
        self.depth = int(depth)
        self.max_depth = int(max_depth)
        super().__init__(
            f"pending queue full ({depth}/{max_depth}); request rejected"
        )


@dataclass(frozen=True)
class ShedRecord:
    """One shed decision, with the evidence that it was legitimate.

    ``deadline`` and ``now`` are absolute clock seconds; a correct
    admission layer only ever sheds when ``deadline < now`` — the
    property-based tests assert exactly that over arbitrary traces.
    """

    deadline: float
    now: float
    stage: str  # "submit", "dispatch" or "overflow"
    priority: int = 0

    @property
    def late_ms(self) -> float:
        return (self.now - self.deadline) * 1e3


class AdmissionControl:
    """The policy object: queue bound, shed policy, and the shed log.

    Parameters
    ----------
    max_queue_depth:
        Maximum queued (undispatched) requests across every lane;
        ``None`` disables the bound (deadline shedding still applies).
    shed_policy:
        ``"reject-newest"`` or ``"drop-oldest-expired"`` — what to do
        when an arrival would overflow the bound (see module docstring).
    shed_log_capacity:
        Retained :class:`ShedRecord` entries (newest kept).
    """

    POLICIES = ("reject-newest", "drop-oldest-expired")

    def __init__(
        self,
        *,
        max_queue_depth: Optional[int] = None,
        shed_policy: str = "reject-newest",
        shed_log_capacity: int = 1024,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if shed_policy not in self.POLICIES:
            raise ValueError(
                f"unknown shed_policy {shed_policy!r}; choose from {self.POLICIES}"
            )
        self.max_queue_depth = max_queue_depth
        self.shed_policy = shed_policy
        self._shed_log_capacity = int(shed_log_capacity)
        #: Every shed decision taken, newest last (bounded).
        self.shed_log: List[ShedRecord] = []

    @staticmethod
    def expired(deadline: Optional[float], now: float) -> bool:
        """Whether an absolute *deadline* is behind *now* (``None`` never is)."""
        return deadline is not None and deadline < now

    def record_shed(
        self, deadline: float, now: float, stage: str, priority: int = 0
    ) -> ShedRecord:
        """Log one shed decision (asserting its legitimacy in debug runs)."""
        record = ShedRecord(deadline=deadline, now=now, stage=stage, priority=priority)
        self.shed_log.append(record)
        if len(self.shed_log) > self._shed_log_capacity:
            del self.shed_log[: -self._shed_log_capacity]
        return record

    def overflowing(self, queue_depth: int) -> bool:
        """Whether admitting one more request would breach the bound."""
        return (
            self.max_queue_depth is not None and queue_depth >= self.max_queue_depth
        )

    def __repr__(self) -> str:
        return (
            f"AdmissionControl(max_queue_depth={self.max_queue_depth}, "
            f"shed_policy={self.shed_policy!r})"
        )
