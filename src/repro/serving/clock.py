"""Injectable time for the serving subsystem: real loop time or virtual.

Every time-dependent decision the serving layer makes — deadline timers,
per-request deadlines, controller tick intervals, latency measurement —
goes through one :class:`Clock` seam instead of calling ``loop.time()``
directly.  Production uses :class:`LoopClock` (a thin view over the
running event loop's monotonic clock, so behavior is unchanged);
tests and deterministic benchmarks inject a :class:`VirtualClock` and
*advance time explicitly*, which makes every deadline flush, shed
decision and controller adjustment reproducible with **zero wall-clock
sleeps** — the test suite's virtual-time harness
(``tests/serving/_clock.py``) and the CI smoke in
``benchmarks/bench_serving.py`` both ride on it.

The contract is deliberately tiny:

* ``now()`` — monotonic seconds (same unit as ``loop.time()``);
* ``call_later(delay, callback)`` — schedule ``callback()`` once, at
  ``now() + delay``; returns a handle with ``cancel()``.

:class:`VirtualClock` keeps a heap of scheduled wakeups and fires them
in ``(when, scheduling order)`` order as :meth:`VirtualClock.advance`
sweeps time forward — callbacks scheduled *during* an advance (a
dispatched batch re-arming a timer) are honored within the same sweep
when they fall inside it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What the serving layer needs from time: read it, schedule on it."""

    def now(self) -> float:
        """Monotonic seconds (the unit of ``loop.time()``)."""
        ...

    def call_later(self, delay: float, callback: Callable[[], None]):
        """Schedule ``callback()`` at ``now() + delay``; returns a handle
        with a ``cancel()`` method."""
        ...


class LoopClock:
    """The production clock: a view over the running event loop.

    ``now()`` is ``loop.time()`` and ``call_later`` is
    ``loop.call_later`` — injecting this (the server's default) changes
    nothing about how the server behaved before the clock seam existed.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop) -> None:
        self._loop = loop

    def now(self) -> float:
        return self._loop.time()

    def call_later(self, delay: float, callback: Callable[[], None]):
        return self._loop.call_later(delay, callback)

    def __repr__(self) -> str:
        return f"LoopClock({self._loop!r})"


class _VirtualTimer:
    """One scheduled wakeup of a :class:`VirtualClock` (cancellable)."""

    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback: Callable[[], None]) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class VirtualClock:
    """A controllable monotonic clock for deterministic time-driven tests.

    Time only moves when :meth:`advance` (or :meth:`advance_to`) is
    called; scheduled callbacks fire synchronously inside the advance,
    in ``(deadline, scheduling order)`` order, with ``now()`` reading
    exactly each callback's deadline while it runs — so a deadline flush
    observed under the virtual clock computes the same waits and sheds
    on every run, on any host.

    >>> clock = VirtualClock()
    >>> fired = []
    >>> timer = clock.call_later(0.002, lambda: fired.append(clock.now()))
    >>> clock.advance(0.001); fired
    []
    >>> clock.advance(0.001); fired
    [0.002]
    """

    __slots__ = ("_now", "_heap", "_seq")

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List = []  # (when, seq, timer)
        self._seq = 0

    def now(self) -> float:
        return self._now

    def call_later(self, delay: float, callback: Callable[[], None]) -> _VirtualTimer:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        timer = _VirtualTimer(self._now + float(delay), callback)
        heapq.heappush(self._heap, (timer.when, self._seq, timer))
        self._seq += 1
        return timer

    @property
    def pending(self) -> int:
        """Scheduled, not-yet-fired, not-cancelled wakeups."""
        return sum(1 for _, _, timer in self._heap if not timer.cancelled)

    def next_deadline(self) -> Optional[float]:
        """The earliest live wakeup time, or ``None`` when nothing is armed."""
        live = [when for when, _, timer in self._heap if not timer.cancelled]
        return min(live) if live else None

    def advance(self, dt: float) -> int:
        """Move time forward by *dt* seconds; returns callbacks fired."""
        if dt < 0:
            raise ValueError(f"cannot advance time backwards (dt={dt})")
        return self.advance_to(self._now + float(dt))

    def advance_to(self, target: float) -> int:
        """Sweep time to *target*, firing every due wakeup along the way."""
        if target < self._now:
            raise ValueError(
                f"cannot advance to {target} (now is {self._now}): time is monotonic"
            )
        fired = 0
        while self._heap and self._heap[0][0] <= target:
            when, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when  # the callback reads its own deadline as "now"
            timer.callback()
            fired += 1
        self._now = target
        return fired

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f}, pending={self.pending})"
