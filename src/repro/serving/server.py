"""The asyncio serving front-end: deadline-based micro-batching.

PM-LSH's batch paths (one projection GEMM, one flat-tree frontier sweep
per radius round) only pay off when queries arrive *as batches* — but a
real service receives many small independent requests.
:class:`AsyncSearchServer` closes that gap: concurrent ``submit()``
coroutines are coalesced per compatible
:class:`~repro.queries.QuerySpec` (same
:attr:`~repro.queries.QuerySpec.merge_key`) into one ``index.run()``
call, dispatched when either the batch-size threshold or a deadline
fires, and the batch answer is scattered back to per-request futures.
The batch = loop invariant of the unified API makes the coalescing
invisible: every request receives exactly the bytes a direct
``run()`` would have produced, ``(distance, id)`` ties included.

Life of a request
-----------------
1. **queue** — ``submit(q, spec)`` appends the query to the pending
   queue of its spec's merge key; the first entry arms a deadline timer
   (``max_delay_ms``).
2. **coalesce** — the queue dispatches when it reaches ``max_batch``
   (size flush), when its deadline fires (a lone straggler never waits
   longer than the window), or when ``flush()`` drains it (writes and
   shutdown do).
3. **run** — the stacked ``(B, d)`` matrix goes through
   ``loop.run_in_executor`` to a single worker thread, so the event loop
   keeps accepting arrivals while NumPy works and the index only ever
   sees one caller thread (the ``ANNIndex`` concurrency contract).
4. **scatter** — row i of the batch answer resolves request i's future;
   per-request latency lands in a
   :class:`~repro.engine.stats.LatencyWindow` and serving fields
   (``serving_batch_size``, ``serving_wait_ms``) are woven into the
   result stats.

Writes interleave epoch-style: ``add(points)`` and ``delete(ids)`` first
drain every pending queue (requests already submitted are answered
against pre-write data), bump the epoch — invalidating the
:class:`~repro.serving.cache.ProjectedQueryCache` — and then run the
index mutation through the same single-worker executor, strictly *after*
the drained batches.  An in-flight batch is therefore never torpedoed by
an ingest, and a cached answer computed before a write is never served
after it.

Background compaction rides the same machinery from the other side:
``compact()`` rebuilds the index into a **fresh object** on a separate
rebuild thread (:func:`repro.lifecycle.compact_index` only reads the
source), so the serving executor keeps answering queries against the old
index the whole time; when the rebuild finishes, :meth:`swap_index`
drains pending batches, bumps the epoch, invalidates the cache and
atomically re-points ``self.index`` — no served request ever blocks on
the rebuild.  :class:`~repro.lifecycle.Replica` uses the same
``swap_index`` door to hot-swap in indexes loaded from newer snapshots.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Trace, Tracer, use_trace
from repro.queries import QuerySpec, as_query_spec
from repro.serving.admission import AdmissionControl, DeadlineExceeded, QueueFull
from repro.serving.cache import ProjectedQueryCache, TieredQueryCache
from repro.serving.clock import Clock, LoopClock
from repro.serving.controller import AdaptiveBatchController
from repro.serving.stats import ServingStats


class _PendingRequest:
    """One queued query: its vector, its future, when it arrived, its
    absolute deadline (None = no deadline) and its trace (None unless
    head-sampled at submit time)."""

    __slots__ = ("query", "future", "enqueued_at", "deadline", "trace")

    def __init__(
        self,
        query: np.ndarray,
        future: "asyncio.Future[QueryResult]",
        enqueued_at: float,
        deadline: Optional[float] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        self.query = query
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.trace = trace


class _PendingBatch:
    """The open queue of one (merge key, priority) lane: requests plus
    the armed deadline timer."""

    __slots__ = ("spec", "priority", "requests", "timer")

    def __init__(self, spec: QuerySpec, priority: int = 0) -> None:
        self.spec = spec
        self.priority = priority
        self.requests: List[_PendingRequest] = []
        self.timer = None  # asyncio.TimerHandle or a virtual-clock timer


class AsyncSearchServer:
    """Asyncio micro-batching server in front of any :class:`ANNIndex`.

    Works over a single index or the sharded engine alike — anything the
    registry produces.  All methods must be called from the event loop
    thread; the index itself is only ever touched from the server's
    single executor worker.

    Parameters
    ----------
    index:
        The fitted backend to serve (single index or ``ShardedIndex``).
    max_batch:
        Size threshold: a queue dispatches as soon as it holds this many
        requests.  ``1`` disables coalescing (every request is its own
        ``run()`` call) — the baseline the serving benchmark compares
        against.
    max_delay_ms:
        Deadline: the oldest queued request never waits longer than this
        before its batch dispatches, full or not.  ``0`` dispatches on
        the next event-loop pass — same-tick bursts (one ``gather``)
        still coalesce, but nothing waits beyond the current iteration.
    cache:
        ``None`` (no caching), an int (capacity of a
        :class:`~repro.serving.cache.ProjectedQueryCache` built over the
        index's own projection layer when it has one), or a pre-built
        cache instance.
    cache_resolution:
        Quantization cell edge forwarded when *cache* is an int.
    executor:
        Override for the bridge executor.  Must run jobs **in submission
        order on one worker** (the default single-thread pool does):
        write-after-read ordering and the index's one-caller contract
        both ride on it.
    latency_capacity:
        Retained samples of the per-request latency window.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` the server
        publishes into (defaults to the process-global registry).  The
        server takes an ``instance`` label scope so two servers sharing
        a registry keep distinct series, and forwards the registry to
        the served index.
    tracer:
        A :class:`~repro.obs.tracing.Tracer` for per-request span trees
        (``None``, the default, disables tracing entirely — the hot
        path stays allocation-free).
    slow_log:
        A :class:`~repro.obs.slowlog.SlowQueryLog` fed every request's
        queue-to-answer latency (with the span tree when sampled).  Its
        rolling-p99 trigger reads the server's own latency window.
    exact_cache:
        Capacity of an exact-hit LRU tier stacked *in front of* the
        configured cache (a :class:`~repro.serving.cache.TieredQueryCache`
        is built around it).  ``None`` (default) keeps the single-tier
        behavior; combine with ``cache=<capacity>`` for the full
        exact-then-projected hierarchy sharing one epoch.
    clock:
        The :class:`~repro.serving.clock.Clock` every time decision reads
        (deadline timers, per-request deadlines, controller cadence,
        latency measurement).  ``None`` (default) binds a
        :class:`~repro.serving.clock.LoopClock` over the running event
        loop; tests inject a
        :class:`~repro.serving.clock.VirtualClock` and advance time
        explicitly — zero wall-clock sleeps, fully deterministic.
    controller:
        An :class:`~repro.serving.controller.AdaptiveBatchController`
        that replaces the static ``max_batch`` / ``max_delay_ms`` with a
        closed AIMD loop over the serving metrics; the effective knobs
        are :attr:`effective_max_batch` / :attr:`effective_delay_ms` and
        its decisions surface in :meth:`stats` and the registry.
    max_queue_depth / shed_policy:
        Admission control: the bounded pending-queue depth and what to
        do when it overflows (``"reject-newest"`` refuses the arrival
        with :class:`~repro.serving.admission.QueueFull`;
        ``"drop-oldest-expired"`` first sheds queued requests whose
        deadlines already passed).  See :mod:`repro.serving.admission`.

    Examples
    --------
    >>> import asyncio
    >>> import numpy as np
    >>> import repro
    >>> from repro.serving import AsyncSearchServer
    >>> data = np.random.default_rng(0).normal(size=(500, 16))
    >>> async def demo():
    ...     async with AsyncSearchServer(
    ...         repro.create_index("exact").fit(data), max_batch=8
    ...     ) as server:
    ...         results = await server.submit_many(data[:4] + 0.01, repro.Knn(k=3))
    ...         return [len(r) for r in results]
    >>> asyncio.run(demo())
    [3, 3, 3, 3]
    """

    def __init__(
        self,
        index: ANNIndex,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        cache: ProjectedQueryCache | int | None = None,
        cache_resolution: float = 1e-9,
        exact_cache: Optional[int] = None,
        executor: Optional[Executor] = None,
        latency_capacity: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_log: Optional[SlowQueryLog] = None,
        clock: Optional[Clock] = None,
        controller: Optional[AdaptiveBatchController] = None,
        max_queue_depth: Optional[int] = None,
        shed_policy: str = "reject-newest",
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0.0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self.index = index
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self.metrics_registry = metrics if metrics is not None else default_registry()
        self.tracer = tracer
        self.admission = AdmissionControl(
            max_queue_depth=max_queue_depth, shed_policy=shed_policy
        )
        self.cache = (
            self._build_cache(index, cache, cache_resolution)
            if isinstance(cache, int)
            else cache
        )
        if exact_cache is not None:
            self.cache = TieredQueryCache(
                exact_capacity=exact_cache, projected=self.cache
            )
        self._executor: Executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        self._owns_executor = executor is None
        self._queues: Dict[Tuple, _PendingBatch] = {}
        self._inflight: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._clock: Optional[Clock] = clock
        self._closed = False
        self._epoch = 0
        self._compacting = False
        self._rebuild_executor: Optional[ThreadPoolExecutor] = None
        #: serving-annotated ``stats`` dict of the most recent batch result.
        self.last_batch_stats: Dict[str, float] = {}
        # Every serving number lives in the registry: the counters below
        # are the instruments themselves (held directly so the hot path
        # pays one attribute walk, no registry lookups), and ``stats()``
        # is a view over them — the table and a scrape can't disagree.
        scope = self.metrics_registry.scope("serving")
        self._labels = scope
        counter = lambda name, help: self.metrics_registry.counter(name, help, scope)  # noqa: E731
        self._requests_submitted = counter(
            "requests_submitted", "Requests accepted by submit()"
        )
        self._requests_served = counter(
            "requests_served", "Requests answered (cache hits included)"
        )
        self._batches_served = counter("batches_served", "Coalesced batches executed")
        self._requests_batched = counter(
            "requests_batched", "Requests answered through a batch"
        )
        self._size_flushes = counter("size_flushes", "Dispatches on max_batch")
        self._deadline_flushes = counter("deadline_flushes", "Dispatches on deadline")
        self._drain_flushes = counter("drain_flushes", "Dispatches on flush()/writes")
        self._points_added = counter("points_added", "Points ingested via add()")
        self._points_deleted = counter("points_deleted", "Points tombstoned via delete()")
        self._compactions = counter("compactions", "Background compactions completed")
        self._index_swaps = counter("index_swaps", "swap_index() installs")
        self._requests_shed = counter(
            "requests_shed", "Requests shed with DeadlineExceeded (expired deadlines)"
        )
        self._requests_rejected = counter(
            "requests_rejected", "Requests refused with QueueFull (bounded queue)"
        )
        self._g_queue_depth = self.metrics_registry.gauge(
            "queue_depth", "Requests queued, not yet dispatched", scope
        )
        self._latency_hist = self.metrics_registry.histogram(
            "request_latency_ms",
            "Queue-to-answer latency per served request",
            scope,
            window_capacity=latency_capacity,
        )
        self._latency = self._latency_hist.window
        self.slow_log = slow_log
        if slow_log is not None:
            slow_log.bind_window(self._latency)
        if self.cache is not None:
            self.cache.bind_metrics(self.metrics_registry, scope)
        # The served index publishes into the same registry (covers the
        # sharded engine, PM-LSH's probe counters, the overfetch path).
        if hasattr(index, "metrics"):
            index.metrics = self.metrics_registry
        # The adaptive controller closes the loop over the instruments
        # above: it reads queue depth / flush counters / the latency
        # window and steers the *effective* max_batch / max_delay_ms
        # between its clamps, overriding the static knobs.
        self.controller = controller
        if controller is not None:
            controller.bind(self.metrics_registry, scope, self._latency)

    @staticmethod
    def _build_cache(
        index: ANNIndex, capacity: int, resolution: float
    ) -> ProjectedQueryCache:
        """Cache over the index's own hash layer when it has one.

        PM-LSH exposes ``projection.project``; backends without one (the
        exact oracle, the sharded engine) fall back to quantizing the raw
        vector, which still collapses duplicate queries exactly.
        """
        projection = getattr(index, "projection", None)
        projector = projection.project if projection is not None else None
        return ProjectedQueryCache(
            capacity=capacity, resolution=resolution, projector=projector
        )

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------

    @property
    def effective_max_batch(self) -> int:
        """The size threshold in force right now (controller-driven or static)."""
        return self.controller.window if self.controller is not None else self.max_batch

    @property
    def effective_delay_ms(self) -> float:
        """The deadline window in force right now (controller-driven or static)."""
        return (
            self.controller.delay_ms if self.controller is not None else self.max_delay_ms
        )

    def _maybe_tick(self) -> None:
        """Give the adaptive controller one (rate-limited) look at the world."""
        if self.controller is not None:
            self._g_queue_depth.set(self.queue_depth)
            self.controller.tick(self._now())

    async def submit(
        self,
        query: np.ndarray,
        spec: QuerySpec | int,
        *,
        deadline_ms: Optional[float] = None,
        priority: int = 0,
    ) -> QueryResult:
        """Answer one query vector under *spec*, coalesced with its peers.

        Awaits until the request's batch has run; the returned
        :class:`QueryResult` is byte-identical to the matching row of a
        direct ``index.run()`` over the same queries.  A cache hit (when
        caching is enabled) short-circuits the batcher entirely.

        *deadline_ms* is this request's latency budget: if the deadline
        has already passed when its batch dispatches (or at submit time,
        for a non-positive budget), the request is **shed** — the await
        raises :class:`~repro.serving.admission.DeadlineExceeded` and the
        query never reaches the index.  A request whose deadline is still
        in the future is never shed on deadline grounds.

        *priority* selects the request's lane within its spec's merge
        key: lanes only coalesce with equal priority, and higher
        priorities dispatch first under contention (drains, writes,
        shutdown).  When the bounded queue (``max_queue_depth``) is full,
        the configured shed policy decides between refusing this request
        (:class:`~repro.serving.admission.QueueFull`) and first evicting
        queued requests whose deadlines already expired.
        """
        spec = as_query_spec(spec)
        self._require_open()
        self._bind_loop()
        loop = self._loop
        vector = np.asarray(query, dtype=np.float64)
        if vector.ndim != 1:
            raise ValueError(
                f"submit takes one (d,) query vector, got shape {vector.shape}"
            )
        self._requests_submitted.inc()
        self._maybe_tick()
        enqueued_at = self._now()
        deadline = (
            enqueued_at + float(deadline_ms) / 1e3 if deadline_ms is not None else None
        )
        trace = self.tracer.start("request") if self.tracer is not None else None
        if trace is not None:
            trace.meta["spec"] = repr(spec)
        if self.cache is not None:
            cached = self.cache.get(vector, spec)
            if cached is not None:
                self._requests_served.inc()
                latency_ms = (self._now() - enqueued_at) * 1e3
                self._latency_hist.observe(latency_ms)
                if trace is not None:
                    trace.add_span("cache_hit", enqueued_at, self._now())
                    self.tracer.finish(trace)
                if self.slow_log is not None:
                    self.slow_log.observe(
                        latency_ms, spec=repr(spec), trace=trace, cache_hit=1
                    )
                return QueryResult(
                    ids=cached.ids,
                    distances=cached.distances,
                    stats={**cached.stats, "served_from_cache": 1.0},
                )
        # Admission: a dead-on-arrival budget is shed before it queues …
        if self.admission.expired(deadline, enqueued_at):
            self._shed(trace, deadline, enqueued_at, "submit", priority)
            raise DeadlineExceeded((enqueued_at - deadline) * 1e3, deadline_ms)
        # … and a full bounded queue either frees expired entries or
        # refuses the newcomer, per the shed policy.
        if self.admission.overflowing(self.queue_depth):
            if self.admission.shed_policy == "drop-oldest-expired":
                self._shed_expired_queued(enqueued_at)
            if self.admission.overflowing(self.queue_depth):
                self._requests_rejected.inc()
                if trace is not None:
                    trace.add_span("rejected", enqueued_at, enqueued_at)
                    self.tracer.finish(trace)
                raise QueueFull(self.queue_depth, self.admission.max_queue_depth)
        future: "asyncio.Future[QueryResult]" = loop.create_future()
        key = (spec.merge_key, int(priority))
        batch = self._queues.get(key)
        if batch is None:
            batch = _PendingBatch(spec, int(priority))
            self._queues[key] = batch
            if self.effective_max_batch > 1:
                # A zero window still goes through call_later(0): the
                # callback runs on the next loop pass, so a burst of
                # submits issued in the same tick (one gather) coalesces
                # while nothing ever waits beyond the current iteration.
                batch.timer = self._clock.call_later(
                    self.effective_delay_ms / 1e3, self._deadline_callback(key)
                )
        batch.requests.append(
            _PendingRequest(vector, future, enqueued_at, deadline, trace)
        )
        if len(batch.requests) >= self.effective_max_batch:
            self._dispatch(key, "size")
        return await future

    async def submit_many(
        self,
        queries: np.ndarray,
        spec: QuerySpec | int,
        *,
        deadline_ms: Optional[float] = None,
        priority: int = 0,
    ) -> List[QueryResult]:
        """Submit every row of *queries* concurrently; results in row order."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return list(
            await asyncio.gather(
                *(
                    self.submit(row, spec, deadline_ms=deadline_ms, priority=priority)
                    for row in queries
                )
            )
        )

    # ------------------------------------------------------------------
    # admission: deadline shedding and the bounded queue
    # ------------------------------------------------------------------

    def _shed(
        self,
        trace: Optional[Trace],
        deadline: float,
        now: float,
        stage: str,
        priority: int = 0,
    ) -> None:
        """Account one shed decision (counter, shed log, trace close)."""
        self._requests_shed.inc()
        self.admission.record_shed(deadline, now, stage, priority)
        if trace is not None:
            trace.add_span("shed", now, now, stage=stage)
            self.tracer.finish(trace)

    def _shed_expired_queued(self, now: float) -> int:
        """Evict queued requests whose deadlines already passed.

        Lanes are scanned lowest priority first (then arrival order), so
        backpressure eats stale low-priority work before anything else;
        requests with live (or no) deadlines are never touched.  Returns
        the number of requests shed.
        """
        shed = 0
        for key in sorted(self._queues, key=lambda k: k[1]):
            batch = self._queues.get(key)
            if batch is None:
                continue
            keep: List[_PendingRequest] = []
            for request in batch.requests:
                if self.admission.expired(request.deadline, now):
                    shed += 1
                    self._shed(
                        request.trace, request.deadline, now, "overflow", batch.priority
                    )
                    if not request.future.cancelled():
                        request.future.set_exception(
                            DeadlineExceeded((now - request.deadline) * 1e3)
                        )
                else:
                    keep.append(request)
            if len(keep) != len(batch.requests):
                batch.requests = keep
                if not keep:
                    if batch.timer is not None:
                        batch.timer.cancel()
                    del self._queues[key]
        return shed

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------

    async def add(self, points: np.ndarray) -> np.ndarray:
        """Grow the served index; returns the assigned ids.

        Epoch-style interleaving: every pending queue drains first (their
        executor jobs are enqueued ahead of the write, so requests
        submitted before the ``add`` are answered against pre-write
        data), the cache epoch bumps, and only then does the mutation run
        on the executor — never in the middle of a dispatched batch.
        """
        self._require_open()
        self._require_not_compacting("add")
        loop = self._bind_loop()
        points = np.asarray(points, dtype=np.float64)
        self.flush()
        self._epoch += 1
        if self.cache is not None:
            self.cache.invalidate()
        ids = await loop.run_in_executor(self._executor, self.index.add, points)
        self._points_added.inc(int(ids.size))
        return ids

    async def delete(self, ids: np.ndarray) -> np.ndarray:
        """Tombstone points in the served index; returns the deleted ids.

        Same epoch-style interleaving as :meth:`add`: pending queues
        drain first, the cache invalidates, and the tombstone marking
        runs on the executor strictly after the drained batches — so no
        already-submitted request ever sees a half-applied delete, and
        every request submitted afterwards never sees the dead ids.
        """
        self._require_open()
        self._require_not_compacting("delete")
        loop = self._bind_loop()
        self.flush()
        self._epoch += 1
        if self.cache is not None:
            self.cache.invalidate()
        deleted = await loop.run_in_executor(self._executor, self.index.delete, ids)
        self._points_deleted.inc(int(deleted.size))
        return deleted

    def swap_index(self, new_index: ANNIndex) -> None:
        """Atomically re-point the server at *new_index*.

        Drains pending queues (their executor jobs run against the old
        index, which stays valid — it is a separate object), bumps the
        epoch, invalidates the cache, and assigns.  Used by background
        compaction and by :class:`~repro.lifecycle.Replica` refreshes.
        """
        self._require_open()
        self.flush()
        self._epoch += 1
        if self.cache is not None:
            self.cache.invalidate()
        self.index = new_index
        if hasattr(new_index, "metrics"):
            new_index.metrics = self.metrics_registry
        self._index_swaps.inc()

    async def compact(self, policy=None):
        """Rebuild the served index without deleted points, in the background.

        When *policy* (a :class:`~repro.lifecycle.CompactionPolicy`) is
        given and does not vote to compact, returns ``None`` without
        touching anything.  Otherwise the rebuild runs
        :func:`~repro.lifecycle.compact_index` — which only *reads* the
        source index — on a dedicated rebuild thread, so the serving
        executor keeps answering queries against the old index for the
        whole build; the finished replacement is installed via
        :meth:`swap_index` and the :class:`~repro.lifecycle.CompactionResult`
        is returned.  ``add``/``delete`` raise while a compaction is in
        flight (the rebuild snapshots the source once); reads are never
        blocked.
        """
        from repro.lifecycle.compaction import compact_index

        self._require_open()
        self._require_not_compacting("compact")
        loop = self._bind_loop()
        if policy is not None and not policy.should_compact(self.index):
            return None
        if self._rebuild_executor is None:
            self._rebuild_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-rebuild"
            )
        self._compacting = True
        try:
            fresh, result = await loop.run_in_executor(
                self._rebuild_executor, compact_index, self.index
            )
        finally:
            self._compacting = False
        self.swap_index(fresh)
        self._compactions.inc()
        return result

    # ------------------------------------------------------------------
    # batching machinery
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Dispatch every pending queue now; returns the number dispatched.

        Lanes drain **highest priority first** (arrival order within a
        priority): the single-worker executor runs jobs in submission
        order, so under contention the high-priority batches reach the
        index — and their callers — ahead of everything else.
        """
        keys = sorted(self._queues, key=lambda k: -k[1])
        for key in keys:
            self._dispatch(key, "drain")
        return len(keys)

    def _deadline_callback(self, key: Tuple):
        """The zero-arg timer callback for one lane's deadline flush."""
        return lambda: self._dispatch(key, "deadline")

    def _dispatch(self, key: Tuple, reason: str) -> None:
        """Move one queue into execution: shed expired requests, stack
        the rest, submit to the executor, and hand the scatter to a
        task.  The executor submission happens *here*, synchronously, so
        dispatch order is execution order."""
        batch = self._queues.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None:
            batch.timer.cancel()
        if not batch.requests:
            return
        now = self._now()
        # Deadline shedding: an expired request is answered with the
        # typed error and never reaches the index; the live remainder
        # (whose deadlines are all still satisfiable) forms the batch.
        live: List[_PendingRequest] = []
        for request in batch.requests:
            if self.admission.expired(request.deadline, now):
                self._shed(request.trace, request.deadline, now, "dispatch", batch.priority)
                if not request.future.cancelled():
                    request.future.set_exception(
                        DeadlineExceeded((now - request.deadline) * 1e3)
                    )
            else:
                live.append(request)
        batch.requests = live
        if not live:
            return  # everything expired: nothing to run, no flush counted
        if reason == "size":
            self._size_flushes.inc()
        elif reason == "deadline":
            self._deadline_flushes.inc()
        else:
            self._drain_flushes.inc()
        loop = self._loop
        queries = np.stack([request.query for request in batch.requests])
        dispatched_at = now
        # The *cache's* epoch (not the server's) tags the eventual puts:
        # a pre-built or reused cache may start at any epoch, and only
        # its own counter decides staleness.
        cache_epoch = self.cache.epoch if self.cache is not None else 0
        # One shared batch trace carries the engine-side spans when any
        # member of the batch was sampled; its subtree is grafted into
        # every sampled request at scatter.  Unsampled batches submit the
        # index call directly — zero tracing work on that path.
        batch_trace: Optional[Trace] = None
        if any(request.trace is not None for request in batch.requests):
            batch_trace = Trace(
                -1, "batch", merge_key=repr(key), reason=reason, size=len(batch.requests)
            )
            batch_trace.add_span(
                "batch_assembly",
                min(request.enqueued_at for request in batch.requests),
                dispatched_at,
                reason=reason,
                batch_size=len(batch.requests),
            )
            index, spec = self.index, batch.spec

            def run_traced(queries=queries, trace=batch_trace):
                with use_trace(trace), trace.span("index_run"):
                    return index.run(queries, spec)

            run_future = loop.run_in_executor(self._executor, run_traced)
        else:
            run_future = loop.run_in_executor(
                self._executor, self.index.run, queries, batch.spec
            )
        task = loop.create_task(
            self._scatter(
                batch, run_future, self._epoch, cache_epoch, dispatched_at, batch_trace
            )
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _scatter(
        self,
        batch: _PendingBatch,
        run_future: "asyncio.Future",
        epoch: int,
        cache_epoch: int,
        dispatched_at: float,
        batch_trace: Optional[Trace] = None,
    ) -> None:
        """Await the batch answer and resolve every request's future."""
        requests = batch.requests
        try:
            result = await run_future
        except Exception as exc:  # propagate to every waiter, keep serving
            for request in requests:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            return
        now = self._now()
        waits_ms = [(dispatched_at - request.enqueued_at) * 1e3 for request in requests]
        result.stats["serving_batch_size"] = float(len(requests))
        result.stats["serving_wait_ms"] = float(np.mean(waits_ms))
        result.stats["serving_wait_ms_max"] = float(np.max(waits_ms))
        result.stats["serving_epoch"] = float(epoch)
        self.last_batch_stats = dict(result.stats)
        self._batches_served.inc()
        self._requests_batched.inc(len(requests))
        spec_repr = repr(batch.spec) if self.slow_log is not None else ""
        for i, request in enumerate(requests):
            answer = result[i]
            answer.stats["serving_batch_size"] = float(len(requests))
            answer.stats["serving_wait_ms"] = waits_ms[i]
            if self.cache is not None:
                self.cache.put(request.query, batch.spec, answer, cache_epoch)
            self._requests_served.inc()
            latency_ms = (now - request.enqueued_at) * 1e3
            self._latency_hist.observe(latency_ms)
            trace = request.trace
            if trace is not None:
                trace.add_span("queue_wait", request.enqueued_at, dispatched_at)
                if batch_trace is not None:
                    # The engine subtree (batch assembly + index_run with
                    # shard/tree/verify spans) is shared, not copied.
                    for span in batch_trace.root.children:
                        trace.attach(span)
                trace.add_span("scatter", now, self._now(), row=i)
                self.tracer.finish(trace)
            if self.slow_log is not None:
                self.slow_log.observe(
                    latency_ms,
                    spec=spec_repr,
                    trace=trace,
                    batch_size=len(requests),
                )
            if not request.future.cancelled():
                request.future.set_result(answer)
        # A completed batch is a natural observation point: occupancy and
        # flush counters just moved, so let the controller look.
        self._maybe_tick()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Drain and stop: flush pending queues, await every in-flight
        batch (no submitted request is ever dropped), then shut the
        executor down.  Idempotent; ``submit``/``add`` raise afterwards."""
        if not self._closed:
            self._closed = True
            self.flush()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        if self._owns_executor:
            self._executor.shutdown(wait=True)
        if self._rebuild_executor is not None:
            self._rebuild_executor.shutdown(wait=True)
            self._rebuild_executor = None

    async def __aenter__(self) -> "AsyncSearchServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("AsyncSearchServer is closed")

    def _require_not_compacting(self, op: str) -> None:
        if self._compacting:
            raise RuntimeError(
                f"AsyncSearchServer: cannot {op} while a compaction is in "
                f"flight — the rebuild snapshots the index once; retry after "
                f"compact() returns"
            )

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            if self._clock is None:
                self._clock = LoopClock(loop)
            if self.slow_log is not None:
                self.slow_log.bind_clock(self._clock)
        elif self._loop is not loop:
            raise RuntimeError(
                "AsyncSearchServer is bound to a different event loop; "
                "create one server per loop"
            )
        return loop

    def _now(self) -> float:
        """The serving clock (loop time in production, virtual in tests)."""
        return self._clock.now()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently queued and not yet dispatched."""
        return sum(len(batch.requests) for batch in self._queues.values())

    def _refresh_gauges(self) -> None:
        """Publish the point-in-time serving values into the registry.

        Counters and the latency histogram are written inline on the hot
        path; everything derived or sampled (queue depth, epoch, cache
        hit state, occupancy, window percentiles) is refreshed here so a
        snapshot/scrape and :meth:`stats` read the same numbers.
        """
        gauge = lambda name, help: self.metrics_registry.gauge(name, help, self._labels)  # noqa: E731
        gauge("queue_depth", "Requests queued, not yet dispatched").set(self.queue_depth)
        gauge("inflight_batches", "Dispatched batches not yet scattered").set(
            len(self._inflight)
        )
        gauge("serving_epoch", "Write epoch of the served index").set(self._epoch)
        gauge("cache_hits", "Cache hits (lifetime)").set(
            self.cache.hits if self.cache is not None else 0
        )
        gauge("cache_misses", "Cache misses (lifetime)").set(
            self.cache.misses if self.cache is not None else 0
        )
        gauge("cache_exact_hits", "Exact-tier (tier 1) cache hits").set(
            getattr(self.cache, "exact_hits", 0) if self.cache is not None else 0
        )
        batches = self._batches_served.value
        gauge("mean_occupancy", "Mean requests per served batch").set(
            self._requests_batched.value / batches if batches else float("nan")
        )
        window = self._latency.snapshot()
        gauge("latency_p50_ms", "p50 queue-to-answer latency (window)").set(window.p50)
        gauge("latency_p99_ms", "p99 queue-to-answer latency (window)").set(window.p99)
        gauge("latency_mean_ms", "Mean queue-to-answer latency (window)").set(
            window.mean
        )
        refresh = getattr(self.index, "refresh_metrics", None)
        if refresh is not None:
            refresh()

    def stats(self) -> ServingStats:
        """Current serving statistics snapshot (see :class:`ServingStats`).

        A view over the metrics registry: gauges are refreshed, then
        every field is read back from its instrument — the snapshot and
        the registry's exports can never disagree.
        """
        self._refresh_gauges()
        value = lambda name: self.metrics_registry.value(name, self._labels)  # noqa: E731
        window = self._latency.snapshot()
        return ServingStats(
            requests_submitted=int(self._requests_submitted.value),
            requests_served=int(self._requests_served.value),
            batches_served=int(self._batches_served.value),
            queue_depth=int(value("queue_depth")),
            inflight_batches=int(value("inflight_batches")),
            size_flushes=int(self._size_flushes.value),
            deadline_flushes=int(self._deadline_flushes.value),
            drain_flushes=int(self._drain_flushes.value),
            cache_hits=int(value("cache_hits")),
            cache_misses=int(value("cache_misses")),
            points_added=int(self._points_added.value),
            epoch=int(value("serving_epoch")),
            mean_occupancy=value("mean_occupancy"),
            latency_p50_ms=window.p50,
            latency_p99_ms=window.p99,
            latency_mean_ms=window.mean,
            points_deleted=int(self._points_deleted.value),
            compactions=int(self._compactions.value),
            index_swaps=int(self._index_swaps.value),
            requests_shed=int(self._requests_shed.value),
            requests_rejected=int(self._requests_rejected.value),
            exact_cache_hits=int(
                getattr(self.cache, "exact_hits", 0) if self.cache is not None else 0
            ),
            controller_window=(
                float(self.controller.window) if self.controller is not None else float("nan")
            ),
            controller_delay_ms=(
                self.controller.delay_ms if self.controller is not None else float("nan")
            ),
            controller_adjustments=(
                self.controller.adjustments if self.controller is not None else 0
            ),
        )

    async def metrics(self, format: str = "prometheus") -> str | Dict:
        """The registry snapshot as an awaitable endpoint.

        ``format="prometheus"`` returns the text exposition (what a
        scrape handler would serve); ``format="json"`` returns the
        snapshot dict.  Gauges (including the served index's) are
        refreshed first, so the export reflects this instant.
        """
        self._require_open()
        self._bind_loop()
        self._refresh_gauges()
        if format == "prometheus":
            return self.metrics_registry.to_prometheus()
        if format == "json":
            return self.metrics_registry.to_json()
        raise ValueError(f"unknown metrics format {format!r}")

    def __repr__(self) -> str:
        cache = "off" if self.cache is None else f"cap={self.cache.capacity}"
        knobs = (
            f"controller={self.controller!r}"
            if self.controller is not None
            else f"max_batch={self.max_batch}, max_delay_ms={self.max_delay_ms}"
        )
        return (
            f"{type(self).__name__}(index={self.index!r}, {knobs}, cache={cache})"
        )


async def open_loop_arrivals(
    server: AsyncSearchServer,
    queries: Sequence[np.ndarray],
    spec: QuerySpec | int,
    rate_per_s: float,
    seed: int = 0,
) -> List[QueryResult]:
    """Drive *server* with open-loop Poisson arrivals at *rate_per_s*.

    Open loop means arrival times are drawn up front (exponential
    inter-arrivals) and do **not** wait for earlier answers — the
    realistic serving shape, where a slow server builds a queue instead
    of slowing its clients down.  Returns the per-request results in
    arrival order; used by the serving example and benchmark.
    """
    if not rate_per_s > 0.0:
        raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
    rng = np.random.default_rng(seed)
    targets = np.cumsum(rng.exponential(1.0 / rate_per_s, size=len(queries)))
    loop = asyncio.get_running_loop()
    start = loop.time()
    tasks = []
    for i, query in enumerate(queries):
        delay = start + float(targets[i]) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(server.submit(query, spec)))
    return list(await asyncio.gather(*tasks))
