"""Async serving subsystem: self-tuning micro-batching over any index.

The front-end that turns many small independent requests — the realistic
serving traffic shape — into exactly the large batches PM-LSH's
vectorised hot paths were built for, and keeps itself safe and tuned
under production traffic:

* :mod:`repro.serving.server` — :class:`AsyncSearchServer`, the asyncio
  micro-batcher (queue → coalesce → ``run()`` → scatter) with an
  epoch-interleaved write path, per-request deadlines and priority
  lanes, and a single-worker executor bridge, plus
  :func:`open_loop_arrivals`, the Poisson traffic driver the example and
  benchmark share;
* :mod:`repro.serving.controller` — :class:`AdaptiveBatchController`,
  the AIMD loop that replaces static ``max_batch`` / ``max_delay_ms``
  with clamped, hysteretic self-tuning off the metrics registry;
* :mod:`repro.serving.admission` — admission control: typed
  :class:`DeadlineExceeded` / :class:`QueueFull` refusals, the bounded
  queue and its shed policies;
* :mod:`repro.serving.cache` — :class:`ProjectedQueryCache` (projected-
  locality tier) and :class:`TieredQueryCache` (exact-hit LRU stacked in
  front, sharing one invalidation epoch);
* :mod:`repro.serving.clock` — the injectable :class:`Clock` seam
  (:class:`LoopClock` in production, :class:`VirtualClock` for
  deterministic time-driven tests);
* :mod:`repro.serving.stats` — :class:`ServingStats`, the snapshot
  ``AsyncSearchServer.stats()`` returns.

See ``docs/serving.md`` for the handbook (including the "Self-tuning &
overload" chapter).
"""

from repro.serving.admission import (
    AdmissionControl,
    DeadlineExceeded,
    QueueFull,
    ServingRejected,
)
from repro.serving.cache import ProjectedQueryCache, TieredQueryCache
from repro.serving.clock import Clock, LoopClock, VirtualClock
from repro.serving.controller import (
    AdaptiveBatchController,
    ControllerConfig,
    ControllerDecision,
)
from repro.serving.server import AsyncSearchServer, open_loop_arrivals
from repro.serving.stats import ServingStats

__all__ = [
    "AdaptiveBatchController",
    "AdmissionControl",
    "AsyncSearchServer",
    "Clock",
    "ControllerConfig",
    "ControllerDecision",
    "DeadlineExceeded",
    "LoopClock",
    "ProjectedQueryCache",
    "QueueFull",
    "ServingRejected",
    "ServingStats",
    "TieredQueryCache",
    "VirtualClock",
    "open_loop_arrivals",
]
