"""Async serving subsystem: deadline-based micro-batching over any index.

The front-end that turns many small independent requests — the realistic
serving traffic shape — into exactly the large batches PM-LSH's
vectorised hot paths were built for:

* :mod:`repro.serving.server` — :class:`AsyncSearchServer`, the asyncio
  micro-batcher (queue → coalesce → ``run()`` → scatter) with an
  epoch-interleaved write path and a single-worker executor bridge, plus
  :func:`open_loop_arrivals`, the Poisson traffic driver the example and
  benchmark share;
* :mod:`repro.serving.cache` — :class:`ProjectedQueryCache`, the
  query-result cache keyed on quantized projected coordinates;
* :mod:`repro.serving.stats` — :class:`ServingStats`, the snapshot
  ``AsyncSearchServer.stats()`` returns.

See ``docs/serving.md`` for the handbook.
"""

from repro.serving.cache import ProjectedQueryCache
from repro.serving.server import AsyncSearchServer, open_loop_arrivals
from repro.serving.stats import ServingStats

__all__ = [
    "AsyncSearchServer",
    "ProjectedQueryCache",
    "ServingStats",
    "open_loop_arrivals",
]
