"""Serving statistics of the async micro-batching front-end.

:class:`ServingStats` is the immutable snapshot
:meth:`~repro.serving.server.AsyncSearchServer.stats` returns: request /
batch / flush counters, the current queue depth, batch occupancy, cache
effectiveness and the latency percentiles read out of the server's
:class:`~repro.engine.stats.LatencyWindow`.  ``as_table()`` renders it in
the same monospace style as ``EngineStats.as_table()``, so the serving
demo and the benchmarks print both layers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.evaluation.tables import format_table


@dataclass(frozen=True)
class ServingStats:
    """Snapshot of an :class:`~repro.serving.server.AsyncSearchServer`.

    Counters are lifetime (since construction); ``queue_depth`` and
    ``inflight_batches`` are instantaneous; latency percentiles cover the
    retained window of recent requests (queue → answer, milliseconds).
    ``size_flushes`` / ``deadline_flushes`` / ``drain_flushes`` break the
    batches down by what triggered them: the batch-size threshold, the
    deadline timer, or an explicit ``flush()`` (writes and shutdown drain
    through it).
    """

    requests_submitted: int
    requests_served: int
    batches_served: int
    queue_depth: int
    inflight_batches: int
    size_flushes: int
    deadline_flushes: int
    drain_flushes: int
    cache_hits: int
    cache_misses: int
    points_added: int
    epoch: int
    mean_occupancy: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    #: Lifecycle counters: points logically deleted through the server,
    #: background compactions completed, and index hot-swaps (compaction
    #: swap-ins plus replica refreshes) since construction.
    points_deleted: int = 0
    compactions: int = 0
    index_swaps: int = 0
    #: Admission control: requests shed with ``DeadlineExceeded`` (their
    #: deadline passed before the batch ran) and requests refused with
    #: ``QueueFull`` (the bounded queue was at ``max_queue_depth``).
    requests_shed: int = 0
    requests_rejected: int = 0
    #: Tier-1 (exact-hit LRU) hits when a ``TieredQueryCache`` is in
    #: front; included in ``cache_hits`` too.
    exact_cache_hits: int = 0
    #: The adaptive controller's current effective knobs and how many
    #: knob changes it has applied; NaN / 0 when no controller is wired.
    controller_window: float = float("nan")
    controller_delay_ms: float = float("nan")
    controller_adjustments: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache lookups; NaN when the cache never ran."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return float("nan")
        return self.cache_hits / lookups

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric form, convenient for result tables and logging."""
        return {
            "requests_submitted": float(self.requests_submitted),
            "requests_served": float(self.requests_served),
            "batches_served": float(self.batches_served),
            "queue_depth": float(self.queue_depth),
            "inflight_batches": float(self.inflight_batches),
            "size_flushes": float(self.size_flushes),
            "deadline_flushes": float(self.deadline_flushes),
            "drain_flushes": float(self.drain_flushes),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": float(self.cache_hit_rate),
            "points_added": float(self.points_added),
            "epoch": float(self.epoch),
            "mean_occupancy": float(self.mean_occupancy),
            "latency_p50_ms": float(self.latency_p50_ms),
            "latency_p99_ms": float(self.latency_p99_ms),
            "latency_mean_ms": float(self.latency_mean_ms),
            "points_deleted": float(self.points_deleted),
            "compactions": float(self.compactions),
            "index_swaps": float(self.index_swaps),
            "requests_shed": float(self.requests_shed),
            "requests_rejected": float(self.requests_rejected),
            "exact_cache_hits": float(self.exact_cache_hits),
            "controller_window": float(self.controller_window),
            "controller_delay_ms": float(self.controller_delay_ms),
            "controller_adjustments": float(self.controller_adjustments),
        }

    def as_table(self) -> str:
        """One-row monospace summary plus a flush/cache footer line."""
        controller = (
            f" | controller: window={self.controller_window:.0f} "
            f"delay={self.controller_delay_ms:.2g}ms "
            f"adjustments={self.controller_adjustments}"
            if self.controller_window == self.controller_window  # not NaN
            else ""
        )
        note = (
            f"flushes: size={self.size_flushes} deadline={self.deadline_flushes} "
            f"drain={self.drain_flushes} | cache: hits={self.cache_hits} "
            f"misses={self.cache_misses} | added={self.points_added} "
            f"deleted={self.points_deleted} compactions={self.compactions} "
            f"swaps={self.index_swaps} epoch={self.epoch} "
            f"queue={self.queue_depth} inflight={self.inflight_batches} | "
            f"admission: shed={self.requests_shed} "
            f"rejected={self.requests_rejected}{controller}"
        )
        return format_table(
            "Serving stats (async micro-batcher)",
            ["Requests", "Batches", "Occupancy", "p50 (ms)", "p99 (ms)", "Hit rate"],
            [
                [
                    self.requests_served,
                    self.batches_served,
                    self.mean_occupancy,
                    self.latency_p50_ms,
                    self.latency_p99_ms,
                    self.cache_hit_rate,
                ]
            ],
            note=note,
        )
