"""The slow-query log: a bounded ring of outlier requests with evidence.

When a request's queue-to-answer latency crosses the trigger, the log
captures everything needed to explain it after the fact: the latency,
the query knobs (the ``QuerySpec`` repr), and — when the request was
sampled — its full span tree.  Entries live in a ``deque(maxlen=...)``
ring, so the log is O(capacity) memory forever and always holds the
most recent offenders.

Two trigger modes, combinable (either firing records the entry):

* **absolute** — ``threshold_ms``: anything slower than a fixed wall
  time (an SLO bound);
* **relative** — ``p99_multiple``: anything slower than ``multiple ×``
  the rolling p99 of a shared :class:`~repro.obs.metrics.LatencyWindow`
  (catches regressions on a service whose "normal" drifts with load).

The relative trigger needs ~32 samples of history before it arms, so a
cold service doesn't log its warm-up as "slow".
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import LatencyWindow
from repro.obs.tracing import Trace

#: Minimum window samples before the rolling-p99 trigger arms.
_MIN_HISTORY = 32

#: Observations between rolling-p99 recomputations.  The percentile is a
#: sort over the whole window — refreshing it on every request would put
#: an O(window) scan on the serving hot path for a bound that drifts
#: slowly; every 32 requests tracks load shifts closely enough.
_P99_REFRESH = 32


@dataclass
class SlowQueryRecord:
    """One captured slow request: when, how slow, why, and the evidence."""

    latency_ms: float
    threshold_ms: float
    reason: str  # "absolute" or "p99_multiple"
    spec: str = ""  # repr of the QuerySpec (knobs at request time)
    meta: Dict = field(default_factory=dict)
    trace: Optional[Dict] = None  # span tree as_dict(), when sampled
    at: Optional[float] = None  # capture time on the bound clock, when one is bound

    def as_dict(self) -> Dict:
        out = {
            "latency_ms": self.latency_ms,
            "threshold_ms": self.threshold_ms,
            "reason": self.reason,
            "spec": self.spec,
        }
        if self.at is not None:
            out["at"] = self.at
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.trace is not None:
            out["trace"] = self.trace
        return out


class SlowQueryLog:
    """Bounded ring of slow requests, dumpable as JSON.

    Feed every served request through :meth:`observe`; the log decides
    whether to keep it.  Reads (:meth:`records`, :meth:`to_json`) are
    non-destructive; :meth:`clear` empties the ring.

    ``window`` is the latency history the relative trigger reads.  Pass
    the *serving layer's own* window (the one every request is recorded
    into) so "slow" means slow relative to actual recent traffic; if
    omitted, the log keeps a private window fed by :meth:`observe`.
    """

    def __init__(
        self,
        capacity: int = 128,
        threshold_ms: Optional[float] = None,
        p99_multiple: Optional[float] = None,
        window: Optional[LatencyWindow] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if threshold_ms is None and p99_multiple is None:
            threshold_ms = 100.0  # a sane default SLO bound
        if threshold_ms is not None and threshold_ms <= 0:
            raise ValueError(f"threshold_ms must be > 0, got {threshold_ms}")
        if p99_multiple is not None and p99_multiple <= 1.0:
            raise ValueError(f"p99_multiple must be > 1, got {p99_multiple}")
        self.threshold_ms = threshold_ms
        self.p99_multiple = p99_multiple
        self._owns_window = window is None
        self._window = window if window is not None else LatencyWindow(1024)
        self._records: deque[SlowQueryRecord] = deque(maxlen=int(capacity))
        self._observed = 0
        self._p99_bound = float("nan")  # cached p99_multiple * rolling p99
        self._p99_stamp = -1  # observation count at last refresh
        self._clock = None  # optional Clock; stamps records when bound

    @property
    def observed(self) -> int:
        """Requests fed through :meth:`observe` (slow or not)."""
        return self._observed

    def bind_window(self, window: LatencyWindow) -> None:
        """Re-point the relative trigger at an externally-fed window.

        The serving layer binds its own per-request latency window here
        at construction, so the rolling p99 reflects every served
        request — not just the ones this log observed.
        """
        self._window = window
        self._owns_window = False
        self._p99_stamp = -1  # stale: recompute against the new window

    def bind_clock(self, clock) -> None:
        """Stamp future records with ``clock.now()`` (capture time).

        The serving layer binds its own :class:`~repro.serving.clock.Clock`
        here (real loop time in production, a virtual clock in tests), so
        slow-query records carry *when* on the same timeline every other
        serving decision uses — deterministic under virtual time.
        """
        self._clock = clock

    def __len__(self) -> int:
        return len(self._records)

    def _relative_bound(self) -> float:
        """``p99_multiple × rolling p99``, cached and refreshed periodically."""
        if self._p99_stamp < 0 or self._observed - self._p99_stamp >= _P99_REFRESH:
            filled = min(self._window.count, self._window.capacity)
            self._p99_bound = (
                self.p99_multiple * self._window.p99
                if filled >= _MIN_HISTORY
                else float("nan")
            )
            self._p99_stamp = self._observed
        return self._p99_bound

    def _trigger(self, latency_ms: float) -> Optional[tuple]:
        """(threshold_ms, reason) if the request qualifies, else None."""
        if self.threshold_ms is not None and latency_ms > self.threshold_ms:
            return self.threshold_ms, "absolute"
        if self.p99_multiple is not None:
            bound = self._relative_bound()
            if not math.isnan(bound) and latency_ms > bound:
                return bound, "p99_multiple"
        return None

    def observe(
        self,
        latency_ms: float,
        spec: str = "",
        trace: Optional[Trace] = None,
        **meta,
    ) -> Optional[SlowQueryRecord]:
        """Consider one served request; capture and return a record if slow.

        The trigger is evaluated against history *excluding* this
        request, then the latency is added to the (privately owned)
        window — a single spike can't raise the bar that judges it.
        """
        self._observed += 1
        hit = self._trigger(float(latency_ms))
        if self._owns_window:
            self._window.record(float(latency_ms))
        if hit is None:
            return None
        bound, reason = hit
        record = SlowQueryRecord(
            latency_ms=float(latency_ms),
            threshold_ms=float(bound),
            reason=reason,
            spec=spec,
            meta=dict(meta),
            trace=trace.as_dict() if trace is not None else None,
            at=self._clock.now() if self._clock is not None else None,
        )
        self._records.append(record)
        return record

    def records(self) -> List[SlowQueryRecord]:
        """The retained records, oldest first (non-destructive)."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def to_json(self, indent: Optional[int] = None) -> str:
        """The ring as a JSON document (an object with ``slow_queries``)."""
        payload = {
            "observed": self._observed,
            "captured": len(self._records),
            "threshold_ms": self.threshold_ms,
            "p99_multiple": self.p99_multiple,
            "slow_queries": [record.as_dict() for record in self._records],
        }
        return json.dumps(payload, indent=indent)
