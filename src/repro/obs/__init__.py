"""Unified observability: metrics registry, per-query tracing, slow-query log.

The layer every other subsystem publishes into — see
[docs/observability.md](../../../docs/observability.md) for the operator
guide (metric catalog, life-of-a-request span diagram, slow-query
runbook, Prometheus scrape example).

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  get-or-create :class:`MetricsRegistry`; :class:`LatencyWindow` is the
  histogram's recent-percentile backend.
* :mod:`repro.obs.tracing` — head-sampled per-query span trees carried
  across threads via :func:`current_trace` / :func:`use_trace`.
* :mod:`repro.obs.slowlog` — bounded ring of outlier requests with
  their span trees and query knobs.
* :mod:`repro.obs.export` — Prometheus text-format rendering plus the
  grammar-checking parser CI validates expositions with.
"""

from repro.obs.export import PromSample, parse_prometheus, render_prometheus
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LatencyWindow,
    MetricsRegistry,
    WindowSnapshot,
    default_registry,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.tracing import Span, Trace, Tracer, current_trace, use_trace

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyWindow",
    "MetricsRegistry",
    "PromSample",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Trace",
    "Tracer",
    "WindowSnapshot",
    "current_trace",
    "default_registry",
    "parse_prometheus",
    "render_prometheus",
    "use_trace",
]
