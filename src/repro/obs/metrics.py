"""The metrics registry: counters, gauges and ms-scale histograms.

One registry is the single source of truth for every number the stack
publishes: the async serving front-end, the sharded engine, PM-LSH's
probe, the baselines' overfetch path, the cache and the lifecycle
subsystem all write into :class:`MetricsRegistry` instruments, and the
human-facing snapshots (:class:`~repro.serving.stats.ServingStats`,
:class:`~repro.engine.stats.EngineStats`) are *views over the same
instruments* — the table a demo prints and the series a scraper reads
can never disagree.

Instruments are get-or-create by ``(name, labels)``:

>>> from repro.obs import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("requests_served").inc(3)
>>> registry.counter("requests_served").value
3.0
>>> registry.gauge("queue_depth", shard="0").set(7)
>>> registry.histogram("request_latency_ms").observe(1.4)

Components default to the **process-global registry**
(:func:`default_registry`) and accept an injectable instance — tests and
multi-tenant callers pass their own so series never alias.  Registries
hand out per-component instance labels (:meth:`MetricsRegistry.scope`)
so two servers sharing one registry keep distinct series.

Export: :meth:`MetricsRegistry.to_prometheus` (text exposition format)
and :meth:`MetricsRegistry.to_json` (one snapshot dict); see
:mod:`repro.obs.export` for the grammar-checking parser the CI smoke
step uses.

Thread-safety: increments are plain float adds guarded by the GIL — the
library's single-writer conventions (one caller thread per index, one
serving executor worker) make per-instrument locking unnecessary, and
distinct shard threads always write distinct label sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Fixed ms-scale histogram buckets (upper bounds; +Inf is implicit).
#: Chosen to straddle the stack's operating range: sub-ms cache hits,
#: single-digit-ms batched queries, multi-second compactions.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class WindowSnapshot:
    """One consistent percentile readout of a :class:`LatencyWindow`.

    Produced by :meth:`LatencyWindow.snapshot` from a **single sort** of
    the retained samples — count, mean, p50, p90 and p99 all describe
    the same instant, unlike three separate ``percentile()`` calls.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": float(self.mean),
            "p50": float(self.p50),
            "p90": float(self.p90),
            "p99": float(self.p99),
        }


class LatencyWindow:
    """Bounded ring buffer of per-request latencies with percentile readout.

    Keeps the most recent ``capacity`` samples (milliseconds) in a fixed
    NumPy buffer — recording is O(1), a percentile readout sorts only the
    filled portion.  Serving layers record every request into one window
    and surface ``p50`` / ``p99`` in their stats snapshots; an empty
    window reads as NaN so stats stay printable before the first request.

    :meth:`snapshot` reads count/mean/p50/p90/p99 out of **one** sort;
    prefer it whenever more than one percentile is needed (the serving
    stats snapshot and the slow-query log both do).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer = np.empty(int(capacity), dtype=np.float64)
        self._cursor = 0
        self._count = 0  # lifetime samples (filled = min(count, capacity))

    @property
    def capacity(self) -> int:
        return int(self._buffer.size)

    @property
    def count(self) -> int:
        """Lifetime number of samples recorded (not capped by capacity)."""
        return self._count

    def record(self, latency_ms: float) -> None:
        """Add one latency sample, evicting the oldest when full."""
        self._buffer[self._cursor] = float(latency_ms)
        self._cursor = (self._cursor + 1) % self._buffer.size
        self._count += 1

    def reset(self) -> None:
        """Forget every retained sample (the lifetime count restarts too)."""
        self._cursor = 0
        self._count = 0

    def _filled(self) -> np.ndarray:
        return self._buffer[: min(self._count, self._buffer.size)]

    def percentile(self, p: float) -> float:
        """The p-th percentile (0–100) of the retained window; NaN if empty."""
        filled = self._filled()
        if filled.size == 0:
            return float("nan")
        return float(np.percentile(filled, p))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        filled = self._filled()
        return float(filled.mean()) if filled.size else float("nan")

    def snapshot(self) -> WindowSnapshot:
        """Count/mean/p50/p90/p99 of the retained window from one sort.

        An empty window snapshots as count 0 with NaN everywhere, so the
        stats layers stay printable before the first request.
        """
        filled = self._filled()
        if filled.size == 0:
            nan = float("nan")
            return WindowSnapshot(count=0, mean=nan, p50=nan, p90=nan, p99=nan)
        ordered = np.sort(filled)
        p50, p90, p99 = np.percentile(ordered, [50.0, 90.0, 99.0])
        return WindowSnapshot(
            count=int(filled.size),
            mean=float(ordered.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
        )


class _Instrument:
    """Common identity of one metric series: name, help text, labels."""

    kind = "untyped"

    __slots__ = ("name", "help", "labels")

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        self.name = name
        self.help = help
        self.labels = labels

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class Counter(_Instrument):
    """Monotonically increasing count (requests served, nodes visited).

    ``reset()`` exists for re-fit semantics — an index rebuilt from
    scratch restarts its lifetime counters, the same way a process
    restart resets Prometheus counters.
    """

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot inc by {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge(_Instrument):
    """Point-in-time value (queue depth, live points, last-batch QPS)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, help: str, labels: Labels) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Instrument):
    """Latency distribution: cumulative ms buckets plus a recent window.

    Two backends in one instrument, because exporters and operators need
    different views:

    * fixed **cumulative buckets** (Prometheus exposition: ``_bucket``
      series with ``le`` labels, ``_sum``, ``_count``) — lifetime, cheap
      to merge across processes;
    * a :class:`LatencyWindow` ring of the most recent samples — exact
      percentiles over the *recent* traffic, which is what the serving
      stats tables and the slow-query log's rolling-p99 trigger read.
    """

    kind = "histogram"

    __slots__ = ("buckets", "bucket_counts", "sum", "count", "window")

    def __init__(
        self,
        name: str,
        help: str,
        labels: Labels,
        buckets: Iterable[float] = DEFAULT_MS_BUCKETS,
        window_capacity: int = 4096,
    ) -> None:
        super().__init__(name, help, labels)
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b >= a for a, b in zip(edges[1:], edges)):
            raise ValueError(f"histogram {name}: buckets must strictly increase")
        self.buckets = edges
        self.bucket_counts = [0] * len(edges)  # non-cumulative per-bucket tallies
        self.sum = 0.0
        self.count = 0
        self.window = LatencyWindow(window_capacity)

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        self.window.record(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bucket whose upper bound admits the value
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        if lo < len(self.buckets):
            self.bucket_counts[lo] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for edge, tally in zip(self.buckets, self.bucket_counts):
            running += tally
            out.append((edge, running))
        out.append((float("inf"), self.count))
        return out

    def percentile(self, p: float) -> float:
        """Exact percentile over the recent window (NaN when empty)."""
        return self.window.percentile(p)

    def snapshot(self) -> WindowSnapshot:
        """One-sort percentile snapshot of the recent window."""
        return self.window.snapshot()


class MetricsRegistry:
    """Process- or component-scoped collection of metric instruments.

    Instruments are created on first use and returned on every later
    call with the same ``(name, labels)`` — holding the returned object
    and calling ``inc()``/``set()``/``observe()`` on it directly is the
    hot-path idiom (no per-event dictionary lookups).  Re-registering a
    name as a different instrument kind raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], _Instrument] = {}
        self._scopes: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def scope(self, prefix: str) -> Dict[str, str]:
        """A fresh instance label set (``{"instance": "<prefix><seq>"}``).

        Components that keep per-instance views over a shared registry
        (servers, engines) take one scope at construction so their
        series never alias another instance's; the sequence is
        deterministic per registry (construction order).
        """
        seq = self._scopes.get(prefix, 0)
        self._scopes[prefix] = seq + 1
        return {"instance": f"{prefix}{seq}"}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        key = (str(name), _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(key[0], help, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {cls.kind}"
            )
        return instrument

    def counter(
        self, name: str, help: str = "", labels: Dict[str, str] | None = None
    ) -> Counter:
        """Get-or-create the counter ``name`` with the given label set."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Dict[str, str] | None = None
    ) -> Gauge:
        """Get-or-create the gauge ``name`` with the given label set."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Dict[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_MS_BUCKETS,
        window_capacity: int = 4096,
    ) -> Histogram:
        """Get-or-create the histogram ``name`` with the given label set."""
        return self._get_or_create(
            Histogram,
            name,
            help,
            labels,
            buckets=buckets,
            window_capacity=window_capacity,
        )

    def get(
        self, name: str, labels: Dict[str, str] | None = None
    ) -> Optional[_Instrument]:
        """The instrument at ``(name, labels)``, or ``None``."""
        return self._instruments.get((str(name), _freeze_labels(labels)))

    def collect(self) -> List[_Instrument]:
        """Every instrument, sorted by ``(name, labels)`` (deterministic)."""
        return [
            self._instruments[key] for key in sorted(self._instruments.keys())
        ]

    def value(self, name: str, labels: Dict[str, str] | None = None) -> float:
        """Convenience: the scalar value of a counter/gauge series.

        Raises ``KeyError`` for unknown series and ``TypeError`` for
        histograms (read ``.count``/``.sum``/``snapshot()`` instead).
        """
        instrument = self.get(name, labels)
        if instrument is None:
            raise KeyError(f"no metric {name!r} with labels {labels!r}")
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a histogram; use get() and snapshot()")
        return float(instrument.value)

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across every label set (0.0 if absent)."""
        return float(
            sum(
                instrument.value
                for (metric_name, _), instrument in self._instruments.items()
                if metric_name == name and not isinstance(instrument, Histogram)
            )
        )

    # -- exporters -----------------------------------------------------

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self)

    def to_json(self) -> Dict:
        """One JSON-serialisable snapshot of every series.

        Layout: ``{"counters": [...], "gauges": [...], "histograms":
        [...]}``; each series entry carries ``name``, ``labels`` and its
        value(s).  Counter/gauge values are the exact floats the
        instruments hold — the stats snapshots read the same floats, so
        the two views compare byte-identical.
        """
        out: Dict[str, List[Dict]] = {"counters": [], "gauges": [], "histograms": []}
        for instrument in self.collect():
            entry: Dict = {
                "name": instrument.name,
                "labels": instrument.label_dict(),
            }
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = {
                    ("+Inf" if edge == float("inf") else repr(edge)): count
                    for edge, count in instrument.cumulative_buckets()
                }
                entry["window"] = instrument.snapshot().as_dict()
                out["histograms"].append(entry)
            elif isinstance(instrument, Counter):
                entry["value"] = instrument.value
                out["counters"].append(entry)
            else:
                entry["value"] = instrument.value
                out["gauges"].append(entry)
        return out


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry every component publishes into unless
    an injectable instance is passed to its constructor."""
    return _DEFAULT
