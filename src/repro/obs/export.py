"""Prometheus text-format rendering and a grammar-checking parser.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
scraper ingests: one ``# HELP`` / ``# TYPE`` pair per metric name,
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` / ``_count``.

:func:`parse_prometheus` is the inverse direction *for validation*: it
checks every line against the text-format grammar (metric-name and
label-name charsets, quoted-and-escaped label values, float syntax
including ``NaN``/``+Inf``) and returns the parsed samples.  The CI
smoke step runs a benchmark with ``--metrics-out`` and feeds the file
through this parser — a malformed exposition fails the build before a
real scraper ever sees it.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (metrics -> export)
    from repro.obs.metrics import MetricsRegistry

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name, optional {labels}, value, optional timestamp.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
# One label pair inside the braces; values are quoted with \\, \", \n escapes.
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\[\\"n])*)"'
)
_VALUE = re.compile(r"^[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?$")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str], extra: Dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + pairs + "}"


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format (sorted, stable)."""
    from repro.obs.metrics import Histogram

    lines: List[str] = []
    seen_header: set[str] = set()
    for instrument in registry.collect():
        name = instrument.name
        if name not in seen_header:
            seen_header.add(name)
            help_text = (instrument.help or name).replace("\n", " ")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for edge, cumulative in instrument.cumulative_buckets():
                le = "+Inf" if math.isinf(edge) else _format_value(edge)
                labels = _render_labels(instrument.label_dict(), {"le": le})
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _render_labels(instrument.label_dict())
            lines.append(f"{name}_sum{labels} {_format_value(instrument.sum)}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            labels = _render_labels(instrument.label_dict())
            lines.append(f"{name}{labels} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n" if lines else ""


@dataclass(frozen=True)
class PromSample:
    """One parsed sample line: series name, labels, value."""

    name: str
    labels: Dict[str, str]
    value: float


def _parse_label_block(block: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(block):
        match = _LABEL_PAIR.match(block, pos)
        if match is None:
            raise ValueError(f"line {lineno}: bad label syntax near {block[pos:]!r}")
        name = match.group("name")
        if not _LABEL_NAME.match(name):
            raise ValueError(f"line {lineno}: bad label name {name!r}")
        raw = match.group("value")
        labels[name] = (
            raw.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        )
        pos = match.end()
        if pos < len(block):
            if block[pos] != ",":
                raise ValueError(
                    f"line {lineno}: expected ',' between labels, got {block[pos]!r}"
                )
            pos += 1
    return labels


def parse_prometheus(text: str) -> List[PromSample]:
    """Parse (and thereby validate) a text-format exposition.

    Every non-comment line must match the sample grammar; any violation
    raises ``ValueError`` naming the line.  ``# TYPE`` lines are checked
    for a known metric type.  Returns the samples in document order.
    """
    samples: List[PromSample] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _METRIC_NAME.match(parts[2]):
                    raise ValueError(f"line {lineno}: malformed {parts[1]} line")
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        name = match.group("name")
        label_block = match.group("labels")
        labels = _parse_label_block(label_block, lineno) if label_block else {}
        raw_value = match.group("value")
        if raw_value in ("NaN", "+Inf", "-Inf", "Inf"):
            value = float(raw_value.replace("Inf", "inf"))
        elif _VALUE.match(raw_value):
            value = float(raw_value)
        else:
            raise ValueError(f"line {lineno}: bad sample value {raw_value!r}")
        samples.append(PromSample(name=name, labels=labels, value=value))
    return samples
