"""Per-query trace spans across serving → engine → tree.

A :class:`Trace` is one request's (or one batch's) tree of timed
:class:`Span` s — submit, queue wait, batch assembly, per-shard search,
tree traversal, verification, merge, scatter.  The :class:`Tracer`
decides *which* requests get one (head-based sampling at ``submit``
time) and keeps a bounded ring of finished traces for the slow-query
log and post-hoc inspection.

Two design rules keep the hot path honest:

* **Sampling off ⇒ zero allocations.**  ``Tracer(sample_rate=0)``
  (the default) returns ``None`` from :meth:`Tracer.start` without
  drawing a random number; every instrumentation site is a
  ``if trace is not None`` guard around otherwise-unchanged code.
* **Thread-local propagation.**  The serving layer hands batches to a
  worker thread via ``run_in_executor``, which does not carry
  contextvars; the active trace travels in a ``threading.local``
  (:func:`use_trace` / :func:`current_trace`), so deep layers (the
  PM-LSH probe, shard workers) pick it up without signature changes.

Determinism: sampling uses a seeded generator, so the same seed and the
same request order reproduce the same sampled set and byte-identical
span *structure* (names, nesting, order); only wall-clock durations
vary run to run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np


class Span:
    """One timed operation inside a trace: a name, a duration, children.

    Spans nest: ``trace.span("shard_search")`` opened while another span
    is active on the same thread becomes its child.  ``meta`` carries
    small scalars (shard id, candidate counts, level) — never arrays.
    """

    __slots__ = ("name", "start_s", "end_s", "meta", "children")

    def __init__(self, name: str, start_s: float, meta: Dict) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s = start_s
        self.meta = meta
        self.children: List["Span"] = []

    @property
    def duration_ms(self) -> float:
        return (self.end_s - self.start_s) * 1e3

    def as_dict(self) -> Dict:
        """JSON-ready form: name, duration_ms, meta, nested children."""
        out: Dict = {"name": self.name, "duration_ms": self.duration_ms}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, children={len(self.children)})"


class Trace:
    """One sampled request's span tree plus its identifying metadata.

    The trace object is shared across threads (the event loop opens
    serving spans, the executor worker opens engine/tree spans), so the
    *open-span stack* is kept per thread and child attachment is guarded
    by a lock.  Spans opened on a thread with no local parent attach to
    ``anchor`` — the span designated (via :meth:`span` 's running scope)
    as the cross-thread attachment point — or to the root.
    """

    __slots__ = ("trace_id", "root", "meta", "_local", "_lock", "_anchor")

    def __init__(self, trace_id: int, name: str = "request", **meta) -> None:
        self.trace_id = trace_id
        now = time.perf_counter()
        self.root = Span(name, now, {})
        self.meta = dict(meta)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._anchor: Optional[Span] = None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """Open a child span of this thread's innermost open span.

        On a thread that has no open span yet, the new span attaches to
        the current anchor (see :meth:`anchored`) or the root — that is
        how executor-thread spans land under the right serving span.
        """
        span = Span(name, time.perf_counter(), meta)
        stack = self._stack()
        parent = stack[-1] if stack else (self._anchor or self.root)
        with self._lock:
            parent.children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.end_s = time.perf_counter()
            stack.pop()

    def current_span(self) -> Optional[Span]:
        """This thread's innermost open span (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def anchored(self, span: Span) -> Iterator[None]:
        """Make ``span`` the attachment point for other threads' spans.

        The serving layer anchors its ``index_run`` span while the batch
        executes on the worker thread, so shard/tree spans opened there
        nest underneath it instead of dangling off the root.
        """
        previous = self._anchor
        self._anchor = span
        try:
            yield
        finally:
            self._anchor = previous

    def add_span(
        self, name: str, start_s: float, end_s: float, parent: Optional[Span] = None, **meta
    ) -> Span:
        """Attach an already-measured span (e.g. queue wait, known after
        the fact from enqueue/dequeue timestamps)."""
        span = Span(name, start_s, meta)
        span.end_s = end_s
        target = parent or self.root
        with self._lock:
            target.children.append(span)
        return span

    def attach(self, span: Span) -> None:
        """Graft a finished span (sub)tree under this trace's root —
        used to share one batch's engine subtree across the batch's
        sampled requests at scatter time."""
        with self._lock:
            self.root.children.append(span)

    def finish(self) -> None:
        self.root.end_s = time.perf_counter()

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def span_names(self) -> List[str]:
        """Depth-first span names — the deterministic trace *structure*."""
        return [span.name for span in self.root.iter_spans()]

    def find(self, name: str) -> Optional[Span]:
        """The first span (depth-first) with the given name, or None."""
        for span in self.root.iter_spans():
            if span.name == name:
                return span
        return None

    def as_dict(self) -> Dict:
        out = {"trace_id": self.trace_id, **({"meta": self.meta} if self.meta else {})}
        out["spans"] = self.root.as_dict()
        return out


class Tracer:
    """Head-based sampling trace factory with a bounded finished ring.

    ``sample_rate`` is the probability a request gets a trace, decided
    once at :meth:`start`:

    * ``0`` (default) — never: returns ``None`` without allocating or
      drawing randomness, so untraced deployments pay one comparison;
    * ``1`` — always;
    * in between — a seeded Bernoulli draw, reproducible per seed.

    Finished traces (:meth:`finish`) land in a ``deque(maxlen=keep)``
    ring; :meth:`drain` hands them out for inspection or export.
    """

    def __init__(self, sample_rate: float = 0.0, seed: int = 0, keep: int = 256) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self._rng = np.random.default_rng(seed)
        self._next_id = 0
        self._finished: deque[Trace] = deque(maxlen=int(keep))
        self._started = 0
        self._sampled = 0

    @property
    def started(self) -> int:
        """Sampling decisions made (sampled or not)."""
        return self._started

    @property
    def sampled(self) -> int:
        """Traces actually created."""
        return self._sampled

    def start(self, name: str = "request", **meta) -> Optional[Trace]:
        """A new :class:`Trace` if this request is sampled, else None."""
        self._started += 1
        if self.sample_rate <= 0.0:
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        self._sampled += 1
        trace = Trace(self._next_id, name, **meta)
        self._next_id += 1
        return trace

    def finish(self, trace: Trace) -> None:
        """Close the trace's root and retain it in the finished ring."""
        trace.finish()
        self._finished.append(trace)

    def drain(self) -> List[Trace]:
        """Remove and return every retained finished trace (oldest first)."""
        out = list(self._finished)
        self._finished.clear()
        return out

    def peek(self) -> List[Trace]:
        """The retained finished traces without clearing the ring."""
        return list(self._finished)


_ACTIVE = threading.local()


def current_trace() -> Optional[Trace]:
    """The trace active on this thread, or None.

    Deep layers (shard workers, the PM-LSH probe) call this instead of
    taking a trace parameter; it is set by :func:`use_trace`.
    """
    return getattr(_ACTIVE, "trace", None)


@contextmanager
def use_trace(trace: Optional[Trace]) -> Iterator[Optional[Trace]]:
    """Make ``trace`` the active trace on this thread for the block.

    Passing None is allowed and simply clears the slot — callers wrap
    work unconditionally and the instrumentation sites no-op.
    """
    previous = getattr(_ACTIVE, "trace", None)
    _ACTIVE.trace = trace
    try:
        yield trace
    finally:
        _ACTIVE.trace = previous
