"""Flat structure-of-arrays PM-tree: the vectorized batched hot path.

The pointer :class:`~repro.pmtree.tree.PMTree` stays the *build* structure
— insertion, splits and the structural validator all operate on it — but
walking it one Python node at a time is the dominant cost of Algorithm
1/2 queries.  ``PMTree.flatten()`` packs the finished tree into this
module's :class:`FlatPMTree`: every routing entry's fields (routing-object
coordinates, covering radius, parent distance, hyper-ring intervals,
child pointer) live in contiguous NumPy arrays, nodes are numbered in
breadth-first order so each depth level is one contiguous id range, and
leaf membership is two flat arrays sliced per leaf.

Traversal is *level-synchronous and batched*: one call answers a whole
``(Q, m)`` query block by expanding the entire frontier — every surviving
``(query, node)`` pair — one level per step.  The Eq. 5 pruning battery
(parent-distance test, hyper-ring tests, sphere test) is applied to the
whole frontier as array masks, so the per-node Python recursion of the
pointer tree disappears; candidate ids and distances accumulate into
buffers shared across the queries of the batch.

The mask and distance arithmetic is dispatched through
:mod:`repro.kernels`: under the default ``numpy`` backend the traversal
visits exactly the nodes the recursive ``range_query`` visits and
computes exactly the same distances with the same float64 kernels, so
results — and the node-access / distance-computation counters — are
identical to the pointer tree's (``tests/pmtree/test_flatten.py``
asserts both).  Under the ``fast`` backend results are still
byte-identical, but capped traversals additionally run a *budget-aware
admission pass* (see :class:`_Admission`), so the work counters shrink:
the flat path stops computing the full ball before cutting each query
to its ``⌈βn⌉+k`` candidate limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels as _kernels
from repro.kernels.reference import closest_mask as _closest_mask  # noqa: F401  (re-export)


@dataclass(frozen=True)
class TraversalStats:
    """Per-query tree work of one :meth:`FlatPMTree.batch_range` call.

    ``nodes`` and ``dist_comps`` are ``(Q,)`` arrays — node accesses and
    point/centre distance evaluations attributed to each query — and
    ``level_visits`` is a ``(height,)`` array of (query, node) frontier
    pairs expanded per depth level, summed over the batch.
    """

    nodes: np.ndarray
    dist_comps: np.ndarray
    level_visits: np.ndarray


#: Leaf (query, member) pairs verified per admission chunk under the
#: fast backend: small enough that the running k-th candidate distance
#: tightens between chunks, large enough to keep each chunk vectorized.
_LEAF_ADMIT_CHUNK = 8192


class _Admission:
    """Per-query radius tightening for capped fast-backend traversals.

    Tracks, per query, the ``limits[q]``-th smallest *admitted* candidate
    distance seen so far (``thr``); the effective search radius of every
    later (query, node/member) pair becomes ``min(radius, thr[q])``.
    This is a pure subset filter with unchanged results: the threshold
    from a partial candidate pool is always ≥ the final pool's k-th
    distance, comparisons stay inclusive (``≤``) so boundary ties
    survive, and therefore every dropped pair has a distance strictly
    greater than the final k-th — it could never be kept by the
    canonical ``(distance, id)`` budget cut.  Only the work counters
    (``TraversalStats``, ``dist_comps``) shrink.
    """

    __slots__ = ("limits", "thr", "_pools")

    def __init__(self, num_queries: int, limits: np.ndarray) -> None:
        self.limits = np.asarray(limits, dtype=np.int64)
        # limit == 0 admits nothing: the budget cut would discard it all.
        self.thr = np.where(self.limits > 0, np.inf, -np.inf)
        self._pools: List[Optional[List[np.ndarray]]] = [None] * num_queries

    def effective(self, radius: float, q: np.ndarray):
        """Per-pair effective radius ``min(radius, thr[q])``."""
        return np.minimum(radius, self.thr[q])

    def observe(self, q: np.ndarray, dists: np.ndarray) -> None:
        """Fold freshly admitted matches into the per-query thresholds.

        *q* is ascending (frontier expansion is query-major), so each
        query's slice of *dists* is contiguous.
        """
        if q.size == 0:
            return
        unique_q, first = np.unique(q, return_index=True)
        bounds = np.append(first, q.size)
        for i in range(unique_q.size):
            query = int(unique_q[i])
            limit = int(self.limits[query])
            if limit <= 0:
                continue
            pool = self._pools[query]
            if pool is None:
                pool = []
                self._pools[query] = pool
            pool.append(dists[bounds[i] : bounds[i + 1]])
            total = sum(chunk.size for chunk in pool)
            if total >= limit:
                merged = pool[0] if len(pool) == 1 else np.concatenate(pool)
                self._pools[query] = [merged]
                self.thr[query] = float(np.partition(merged, limit - 1)[limit - 1])


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[s, s + c)`` index ranges: the gather backbone of the
    frontier expansion (children of every frontier node in one array)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(starts, counts) + np.arange(total, dtype=np.int64) - offsets


class FlatPMTree:
    """Read-only structure-of-arrays snapshot of a built PM-tree.

    Construct via :meth:`from_tree` (or ``PMTree.flatten()``).  Node ids
    are breadth-first, the root is node 0, and ``levels[d]`` is the
    ``[lo, hi)`` node-id range of depth d.  For an inner node ``v``,
    ``span[v]`` slices the ``entry_*`` arrays; for a leaf it slices
    ``leaf_ids`` / ``leaf_pd``.

    The snapshot *references* the owning tree's point matrix and
    pivot-distance matrix rather than copying them; it goes stale when
    the pointer tree mutates (``PMLSH`` re-flattens after ``add``).
    """

    def __init__(
        self,
        *,
        points: np.ndarray,
        pivots: np.ndarray,
        pivot_dists: np.ndarray,
        use_rings: bool,
        use_parent_filter: bool,
        is_leaf: np.ndarray,
        span_start: np.ndarray,
        span_end: np.ndarray,
        levels: List[Tuple[int, int]],
        entry_center: np.ndarray,
        entry_radius: np.ndarray,
        entry_pd: np.ndarray,
        entry_hr_min: np.ndarray,
        entry_hr_max: np.ndarray,
        entry_child: np.ndarray,
        leaf_ids: np.ndarray,
        leaf_pd: np.ndarray,
    ) -> None:
        self.points = points
        self.pivots = pivots
        self.pivot_dists = pivot_dists
        self.num_pivots = int(pivots.shape[0])
        self.use_rings = use_rings
        self.use_parent_filter = use_parent_filter
        self.is_leaf = is_leaf
        self.span_start = span_start
        self.span_end = span_end
        self.levels = levels
        self.entry_center = entry_center
        self.entry_radius = entry_radius
        self.entry_pd = entry_pd
        self.entry_hr_min = entry_hr_min
        self.entry_hr_max = entry_hr_max
        self.entry_child = entry_child
        self.leaf_ids = leaf_ids
        self.leaf_pd = leaf_pd
        # Leaf members re-packed in traversal order: the leaf-level gathers
        # read (near-)contiguous ranges instead of random point ids.  The
        # rows are copies of the same float64 values, so distances computed
        # from them are bit-identical to the pointer tree's.
        self.leaf_points = np.ascontiguousarray(points[leaf_ids])
        #: one contiguous per-pivot column, so the staged ring filter reads
        #: sequential memory per pivot (only built when the filter can run).
        self.leaf_ring_cols = (
            [
                np.ascontiguousarray(pivot_dists[leaf_ids, pivot])
                for pivot in range(self.num_pivots)
            ]
            if use_rings and self.num_pivots
            else []
        )
        #: aggregate counters mirroring ``PMTree.distance_computations`` /
        #: ``PMTree.node_accesses`` (summed over batches since last reset)
        self.distance_computations = 0
        self.node_accesses = 0
        #: per-leaf-slot liveness mask (parallel to ``leaf_ids``), or None
        #: when no point is tombstoned.  Installed by :meth:`set_tombstones`;
        #: dead members drop out of every traversal before any distance
        #: computation or candidate-limit cut.
        self.leaf_alive: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tree(cls, tree) -> "FlatPMTree":
        """Pack a built :class:`~repro.pmtree.tree.PMTree` into flat arrays."""
        if tree.root is None:
            raise ValueError("cannot flatten an empty PM-tree")
        # Breadth-first node layout: depth levels become contiguous ranges.
        bfs_levels: List[list] = [[tree.root]]
        while True:
            nxt = [
                entry.child
                for node in bfs_levels[-1]
                if not node.is_leaf
                for entry in node.entries
            ]
            if not nxt:
                break
            bfs_levels.append(nxt)
        bfs = [node for level in bfs_levels for node in level]
        node_index = {id(node): i for i, node in enumerate(bfs)}
        levels: List[Tuple[int, int]] = []
        lo = 0
        for level in bfs_levels:
            levels.append((lo, lo + len(level)))
            lo += len(level)

        num_nodes = len(bfs)
        m = tree.points.shape[1]
        s = tree.num_pivots
        is_leaf = np.asarray([node.is_leaf for node in bfs], dtype=bool)
        span_start = np.zeros(num_nodes, dtype=np.int64)
        span_end = np.zeros(num_nodes, dtype=np.int64)

        centers: List[np.ndarray] = []
        radii: List[float] = []
        pds: List[float] = []
        hr_mins: List[np.ndarray] = []
        hr_maxs: List[np.ndarray] = []
        children: List[int] = []
        leaf_ids: List[int] = []
        leaf_pd: List[float] = []
        entry_cursor = 0
        leaf_cursor = 0
        for v, node in enumerate(bfs):
            if node.is_leaf:
                span_start[v] = leaf_cursor
                leaf_ids.extend(node.ids)
                leaf_pd.extend(node.parent_distances)
                leaf_cursor += len(node.ids)
                span_end[v] = leaf_cursor
            else:
                span_start[v] = entry_cursor
                for entry in node.entries:
                    centers.append(entry.center)
                    radii.append(entry.radius)
                    pds.append(entry.parent_distance)
                    hr_mins.append(entry.hr[:, 0])
                    hr_maxs.append(entry.hr[:, 1])
                    children.append(node_index[id(entry.child)])
                entry_cursor += len(node.entries)
                span_end[v] = entry_cursor

        if centers:
            entry_center = np.ascontiguousarray(np.stack(centers))
            entry_hr_min = np.ascontiguousarray(np.stack(hr_mins))
            entry_hr_max = np.ascontiguousarray(np.stack(hr_maxs))
        else:  # single-leaf tree
            entry_center = np.empty((0, m), dtype=np.float64)
            entry_hr_min = np.empty((0, s), dtype=np.float64)
            entry_hr_max = np.empty((0, s), dtype=np.float64)
        return cls(
            points=tree.points,
            pivots=tree.pivots,
            pivot_dists=tree.pivot_dists,
            use_rings=tree.use_rings,
            use_parent_filter=tree.use_parent_filter,
            is_leaf=is_leaf,
            span_start=span_start,
            span_end=span_end,
            levels=levels,
            entry_center=entry_center,
            entry_radius=np.asarray(radii, dtype=np.float64),
            entry_pd=np.asarray(pds, dtype=np.float64),
            entry_hr_min=entry_hr_min,
            entry_hr_max=entry_hr_max,
            entry_child=np.asarray(children, dtype=np.int64),
            leaf_ids=np.asarray(leaf_ids, dtype=np.int64),
            leaf_pd=np.asarray(leaf_pd, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    #: ``to_arrays`` keys that identify a serialized snapshot inside an
    #: ``.npz`` archive (``flat_is_leaf`` doubles as the presence marker).
    ARRAY_PREFIX = "flat_"

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Pure-array form of the snapshot for ``.npz`` persistence.

        Everything structural — node layout, routing-entry fields, leaf
        membership — plus the pivot-distance matrix, keyed with the
        ``flat_`` prefix so they coexist with an index's own archive
        entries.  The point matrix itself is *not* included: the owner
        re-derives it (PM-LSH re-projects the dataset with the stored
        directions) and passes it to :meth:`from_arrays`.
        """
        return {
            "flat_is_leaf": self.is_leaf,
            "flat_span_start": self.span_start,
            "flat_span_end": self.span_end,
            "flat_levels": np.asarray(self.levels, dtype=np.int64),
            "flat_entry_center": self.entry_center,
            "flat_entry_radius": self.entry_radius,
            "flat_entry_pd": self.entry_pd,
            "flat_entry_hr_min": self.entry_hr_min,
            "flat_entry_hr_max": self.entry_hr_max,
            "flat_entry_child": self.entry_child,
            "flat_leaf_ids": self.leaf_ids,
            "flat_leaf_pd": self.leaf_pd,
            "flat_pivot_dists": self.pivot_dists,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays,
        *,
        points: np.ndarray,
        pivots: np.ndarray,
        use_rings: bool,
        use_parent_filter: bool,
    ) -> "FlatPMTree":
        """Rebuild a snapshot from :meth:`to_arrays` output (or an open
        ``.npz`` archive holding those keys) — no pointer tree involved.

        *points* must be the same projected matrix the snapshot was taken
        over (same values, same order); the stored pivot-distance matrix
        keeps the ring filters bit-identical to the saved tree's.
        """
        return cls(
            points=np.ascontiguousarray(np.asarray(points, dtype=np.float64)),
            pivots=np.asarray(pivots, dtype=np.float64),
            pivot_dists=np.asarray(arrays["flat_pivot_dists"], dtype=np.float64),
            use_rings=bool(use_rings),
            use_parent_filter=bool(use_parent_filter),
            is_leaf=np.asarray(arrays["flat_is_leaf"], dtype=bool),
            span_start=np.asarray(arrays["flat_span_start"], dtype=np.int64),
            span_end=np.asarray(arrays["flat_span_end"], dtype=np.int64),
            levels=[
                (int(lo), int(hi))
                for lo, hi in np.asarray(arrays["flat_levels"], dtype=np.int64)
            ],
            entry_center=np.asarray(arrays["flat_entry_center"], dtype=np.float64),
            entry_radius=np.asarray(arrays["flat_entry_radius"], dtype=np.float64),
            entry_pd=np.asarray(arrays["flat_entry_pd"], dtype=np.float64),
            entry_hr_min=np.asarray(arrays["flat_entry_hr_min"], dtype=np.float64),
            entry_hr_max=np.asarray(arrays["flat_entry_hr_max"], dtype=np.float64),
            entry_child=np.asarray(arrays["flat_entry_child"], dtype=np.int64),
            leaf_ids=np.asarray(arrays["flat_leaf_ids"], dtype=np.int64),
            leaf_pd=np.asarray(arrays["flat_leaf_pd"], dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return int(self.is_leaf.size)

    @property
    def height(self) -> int:
        return len(self.levels)

    def __len__(self) -> int:
        return int(self.leaf_ids.size)

    @property
    def num_live(self) -> int:
        """Leaf members that are not tombstoned."""
        if self.leaf_alive is None:
            return int(self.leaf_ids.size)
        return int(self.leaf_alive.sum())

    def set_tombstones(self, dead_ids: np.ndarray) -> None:
        """Install the dead-id set; traversals skip those leaf members.

        *dead_ids* are global point ids (the owner's tombstone array);
        passing an empty array clears the mask and restores the
        tombstone-free fast path.
        """
        dead = np.asarray(dead_ids, dtype=np.int64)
        self.leaf_alive = None if dead.size == 0 else ~np.isin(self.leaf_ids, dead)

    def reset_counters(self) -> None:
        self.distance_computations = 0
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # batched traversal
    # ------------------------------------------------------------------

    def query_pivot_distances(self, queries: np.ndarray) -> np.ndarray:
        """(Q, s) distances query → global pivots, with the same float64
        kernel the pointer tree uses per query."""
        if not self.num_pivots:
            return np.empty((queries.shape[0], 0), dtype=np.float64)
        diff = self.pivots[None, :, :] - queries[:, None, :]
        return np.sqrt(np.einsum("qij,qij->qi", diff, diff))

    def batch_range(
        self,
        queries: np.ndarray,
        radius: float,
        limits: Optional[np.ndarray] = None,
        lower: Optional[float] = None,
        sort: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, TraversalStats]:
        """Projected-space range query for every row of *queries* at once.

        Returns CSR-style ``(lims, ids, dists, stats)``: query i's matches
        are ``ids[lims[i]:lims[i+1]]`` with their projected distances,
        sorted by ``(distance, id)``.  The result set per query is exactly
        the recursive ``PMTree.range_query(q, radius)`` set.

        ``limits`` (per-query) keeps only each query's *closest* ``limits[i]``
        matches — the capped candidate fetch of Algorithm 2, equal to the
        pointer tree's ``knn_within(q, k=limit, radius)`` set, with ties at
        the cut resolved canonically by ``(distance, id)``.  ``lower``
        drops matches with distance ≤ lower: the radius-enlarging loop
        fetches each round's *fresh annulus*, because every point inside
        the previous radius is already in its ``seen`` set.  ``sort=False``
        skips the per-query ``(distance, id)`` ordering of the output (the
        match *set* is unchanged) — the probe loops use it because they
        re-rank candidates by original-space distance anyway.

        One traversal serves the whole batch: the frontier holds every
        live ``(query, node)`` pair and advances one tree level per step,
        applying the Eq. 5 parent-distance / ring / sphere tests as masks
        over the packed entry arrays.  The mask and distance arithmetic
        dispatches through :mod:`repro.kernels`; when the active backend
        supports it and ``limits`` is given, a budget-aware admission
        pass tightens each query's radius to its running ``limits[i]``-th
        candidate distance (identical results, less work).
        """
        kernel = _kernels.active()
        queries = np.ascontiguousarray(np.atleast_2d(queries))
        num_queries = queries.shape[0]
        query_rings = (
            self.query_pivot_distances(queries)
            if self.use_rings and self.num_pivots
            else None
        )
        nodes = np.zeros(num_queries, dtype=np.int64)
        dist_comps = np.zeros(num_queries, dtype=np.int64)
        level_visits = np.zeros(self.height, dtype=np.int64)
        admission = None
        if limits is not None:
            limits = np.asarray(limits, dtype=np.int64)
            if kernel.supports_admission:
                admission = _Admission(num_queries, limits)

        # Frontier: one row per live (query, node) pair.  pd = distance
        # from the query to the node's routing object (NaN at the root,
        # where no parent-distance filter applies).
        frontier_q = np.arange(num_queries, dtype=np.int64)
        frontier_node = np.zeros(num_queries, dtype=np.int64)
        frontier_pd = np.full(num_queries, np.nan)
        # Candidate buffers shared across all queries of the batch.
        out_q: List[np.ndarray] = []
        out_id: List[np.ndarray] = []
        out_dist: List[np.ndarray] = []

        for depth in range(self.height):
            if frontier_q.size == 0:
                break
            level_visits[depth] = frontier_q.size
            nodes += np.bincount(frontier_q, minlength=num_queries)
            leaf_mask = self.is_leaf[frontier_node]

            # ---- leaf rows: filter members, verify projected distance ----
            if np.any(leaf_mask):
                self._expand_leaves(
                    queries,
                    query_rings,
                    radius,
                    lower,
                    frontier_q[leaf_mask],
                    frontier_node[leaf_mask],
                    frontier_pd[leaf_mask],
                    dist_comps,
                    out_q,
                    out_id,
                    out_dist,
                    kernel,
                    admission,
                )

            # ---- inner rows: prune children, descend survivors ----
            inner = ~leaf_mask
            if not np.any(inner):
                break
            frontier_q, frontier_node, frontier_pd = self._expand_inner(
                queries,
                query_rings,
                radius,
                frontier_q[inner],
                frontier_node[inner],
                frontier_pd[inner],
                dist_comps,
                kernel,
                admission,
            )

        lims, ids, dists = self._assemble(
            num_queries, out_q, out_id, out_dist, limits, sort, kernel
        )
        self.node_accesses += int(nodes.sum())
        self.distance_computations += int(dist_comps.sum())
        return lims, ids, dists, TraversalStats(nodes, dist_comps, level_visits)

    def _expand_leaves(
        self,
        queries: np.ndarray,
        query_rings: Optional[np.ndarray],
        radius: float,
        lower: Optional[float],
        lq: np.ndarray,
        lnode: np.ndarray,
        lpd: np.ndarray,
        dist_comps: np.ndarray,
        out_q: List[np.ndarray],
        out_id: List[np.ndarray],
        out_dist: List[np.ndarray],
        kernel,
        admission: Optional[_Admission],
    ) -> None:
        starts = self.span_start[lnode]
        counts = self.span_end[lnode] - starts
        member = _concat_ranges(starts, counts)
        if member.size == 0:
            return
        rep_q = np.repeat(lq, counts)
        rep_pd = np.repeat(lpd, counts) if self.use_parent_filter else None
        # Tombstoned members drop out first, before any filter or distance
        # computation — dead points never consume dist_comps or limits, so
        # the traversal behaves as if the tree never held them.
        if self.leaf_alive is not None:
            alive = self.leaf_alive[member]
            member, rep_q = member[alive], rep_q[alive]
            if rep_pd is not None:
                rep_pd = rep_pd[alive]
            if member.size == 0:
                return
        # Without admission the whole frontier verifies in one kernel
        # call; with it, chunking lets each query's threshold tighten
        # between chunks so later pairs see a smaller effective radius.
        total = member.size
        step = total if admission is None else _LEAF_ADMIT_CHUNK
        for lo in range(0, total, step):
            hi = min(lo + step, total)
            c_member = member[lo:hi]
            c_q = rep_q[lo:hi]
            c_pd = rep_pd[lo:hi] if rep_pd is not None else None
            eff_r = radius if admission is None else admission.effective(radius, c_q)
            # Eq. 5 parent-distance + ring filters (fused in the kernel).
            keep = kernel.leaf_prune(
                member=c_member,
                rep_q=c_q,
                rep_pd=c_pd,
                leaf_pd=self.leaf_pd,
                ring_cols=self.leaf_ring_cols,
                query_rings=query_rings,
                radius=eff_r,
                use_parent_filter=self.use_parent_filter,
            )
            if not np.any(keep):
                continue
            surv_q = c_q[keep]
            surv_ids = self.leaf_ids[c_member[keep]]
            rows = self.leaf_points[c_member[keep]]
            dists = kernel.pair_distances(rows, queries[surv_q])
            dist_comps += np.bincount(surv_q, minlength=dist_comps.size)
            r_surv = eff_r[keep] if isinstance(eff_r, np.ndarray) else eff_r
            inside = dists <= r_surv
            if lower is not None:
                inside &= dists > lower
            if np.any(inside):
                out_q.append(surv_q[inside])
                out_id.append(surv_ids[inside])
                out_dist.append(dists[inside])
                if admission is not None:
                    admission.observe(surv_q[inside], dists[inside])

    def _expand_inner(
        self,
        queries: np.ndarray,
        query_rings: Optional[np.ndarray],
        radius: float,
        iq: np.ndarray,
        inode: np.ndarray,
        ipd: np.ndarray,
        dist_comps: np.ndarray,
        kernel,
        admission: Optional[_Admission],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        starts = self.span_start[inode]
        counts = self.span_end[inode] - starts
        eidx = _concat_ranges(starts, counts)
        rep_q = np.repeat(iq, counts)
        rep_pd = np.repeat(ipd, counts) if self.use_parent_filter else None
        eff_r = radius if admission is None else admission.effective(radius, rep_q)
        # Eq. 5 parent-distance + hyper-ring interval tests (fused in the
        # kernel); survivors owe a centre distance and the sphere test.
        keep = kernel.inner_prune(
            eidx=eidx,
            rep_q=rep_q,
            rep_pd=rep_pd,
            entry_pd=self.entry_pd,
            entry_radius=self.entry_radius,
            hr_min=self.entry_hr_min,
            hr_max=self.entry_hr_max,
            query_rings=query_rings,
            radius=eff_r,
            use_parent_filter=self.use_parent_filter,
        )
        cand = np.flatnonzero(keep)
        if cand.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        cand_e = eidx[cand]
        cand_q = rep_q[cand]
        centers = self.entry_center[cand_e]  # fancy index: already a copy
        dists = kernel.pair_distances(centers, queries[cand_q])
        dist_comps += np.bincount(cand_q, minlength=dist_comps.size)
        r_cand = eff_r[cand] if isinstance(eff_r, np.ndarray) else eff_r
        surviving = np.maximum(dists - self.entry_radius[cand_e], 0.0) <= r_cand
        return (
            cand_q[surviving],
            self.entry_child[cand_e[surviving]],
            dists[surviving],
        )

    @staticmethod
    def _assemble(
        num_queries: int,
        out_q: List[np.ndarray],
        out_id: List[np.ndarray],
        out_dist: List[np.ndarray],
        limits: Optional[np.ndarray],
        sort: bool,
        kernel,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group the pooled matches by query, apply the per-query limits as
        canonical ``(distance, id)`` cuts, and optionally sort each group.

        Frontier expansion is query-major, so each pooled chunk arrives
        already grouped by query — and a balanced tree produces exactly
        one leaf-level chunk — which makes grouping free in the common
        case; a stable argsort backstops lopsided trees.
        """
        if not out_q:
            return (
                np.zeros(num_queries + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        q = np.concatenate(out_q)
        ids = np.concatenate(out_id)
        dists = np.concatenate(out_dist)
        if len(out_q) > 1 and np.any(np.diff(q) < 0):
            order = np.argsort(q, kind="stable")
            q, ids, dists = q[order], ids[order], dists[order]
        counts = np.bincount(q, minlength=num_queries)
        lims = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        if limits is not None:
            limits = np.asarray(limits, dtype=np.int64)
            keep = kernel.budget_cut(q, ids, dists, counts, lims, limits)
            if keep is not None:
                q, ids, dists = q[keep], ids[keep], dists[keep]
                counts = np.bincount(q, minlength=num_queries)
                lims = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        if sort and ids.size:
            order = np.lexsort((ids, dists, q))
            ids, dists = ids[order], dists[order]
        return lims, ids, dists

    # ------------------------------------------------------------------
    # batched exact kNN in the indexed (projected) space
    # ------------------------------------------------------------------

    def batch_knn(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest indexed points per query row, via the tree.

        Radius-doubling over :meth:`batch_range`: start from a density
        guess, re-probe the queries whose ball holds fewer than k points
        at twice the radius, and cut each finished query to its k best by
        ``(distance, id)`` — the same canonical tie order as the exact
        brute-force oracle.  This is the traversal behind PM-LSH's
        closest-pair self-join (each point's projected neighbourhood).
        """
        queries = np.ascontiguousarray(np.atleast_2d(queries))
        num_queries = queries.shape[0]
        n = self.num_live  # dead members never match, so k must fit the live set
        if not 1 <= k <= n:
            raise ValueError(f"k must be in [1, {n}], got {k}")
        out_ids = np.empty((num_queries, k), dtype=np.int64)
        out_dists = np.empty((num_queries, k), dtype=np.float64)
        active = np.arange(num_queries, dtype=np.int64)
        radius = self._knn_seed_radius(k)
        while active.size:
            lims, ids, dists, _ = self.batch_range(queries[active], radius)
            counts = np.diff(lims)
            done = counts >= k
            if np.any(done):
                take = _concat_ranges(
                    lims[:-1][done], np.full(int(done.sum()), k, dtype=np.int64)
                )
                rows = active[done]
                out_ids[rows] = ids[take].reshape(-1, k)
                out_dists[rows] = dists[take].reshape(-1, k)
            active = active[~done]
            radius *= 2.0
        return out_ids, out_dists

    def _knn_seed_radius(self, k: int) -> float:
        """Initial probe radius: scale the root covering radius by the
        expected k-ball volume fraction (doubling corrects any undershoot)."""
        if self.entry_radius.size == 0:
            return 1.0
        cover = float(self.entry_radius.max())
        if cover <= 0.0:
            return float(np.finfo(np.float64).tiny) * 1e10
        m = self.points.shape[1]
        fraction = (k / max(1, self.leaf_ids.size)) ** (1.0 / max(1, m))
        return max(cover * fraction, cover * 1e-6)
