"""The PM-tree: an M-tree clipped by global-pivot hyper-rings (§4.1).

Indexing model
--------------
The tree indexes *row ids* of one fixed ``(n, m)`` float64 matrix (for
PM-LSH this is the projected dataset).  A ``(n, s)`` matrix of distances
from every point to the ``s`` global pivots is precomputed once; hyper-ring
maintenance and leaf-level ring filtering are numpy gathers against it.

Pruning tests for a range query ``range(q, r)`` on a routing entry ``e``
(Eq. 5 of the paper):

1. parent-distance test: ``|d(q, parent RO) − e.PD| > r + e.r`` → prune
   without computing ``d(q, e.RO)``;
2. sphere test: ``d(q, e.RO) > r + e.r`` → prune;
3. ring tests, one per pivot: the interval
   ``[d(q, p_i) − r, d(q, p_i) + r]`` must intersect ``e.HR[i]``.

``distance_computations`` counts evaluated point/centre distances — the
quantity the §4.2 cost models predict and Table 2 compares.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.pmtree.entries import InnerNode, LeafNode, Node, RoutingEntry
from repro.pmtree.pivots import select_pivots
from repro.pmtree.split import partition_members, promote_mm_rad, promote_random
from repro.utils.heap import BoundedMaxHeap, MinHeap
from repro.utils.rng import RandomState, as_generator


class PMTree:
    """PM-tree over the rows of a fixed point matrix.

    Parameters
    ----------
    points:
        ``(n, m)`` matrix to index (row ids are the keys).
    num_pivots:
        The paper's ``s``; 0 yields a plain M-tree.
    capacity:
        Maximum entries per node; minimum fill after a split is
        ``capacity // 2`` under balanced partitioning.
    split_promotion / split_partition:
        Split policies (see :mod:`repro.pmtree.split`).
    pivot_method:
        Pivot selection strategy (see :mod:`repro.pmtree.pivots`).
    use_rings / use_parent_filter:
        Ablation switches for the two PM-tree-specific pruning tests.
    """

    def __init__(
        self,
        points: np.ndarray,
        num_pivots: int = 5,
        capacity: int = 32,
        split_promotion: str = "mm_rad",
        split_partition: str = "balanced",
        pivot_method: str = "maxsep",
        use_rings: bool = True,
        use_parent_filter: bool = True,
        seed: RandomState = None,
        pivots: Optional[np.ndarray] = None,
    ) -> None:
        points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got shape {points.shape}")
        if capacity < 4:
            raise ValueError(f"capacity must be at least 4, got {capacity}")
        if split_promotion not in ("mm_rad", "random"):
            raise ValueError(f"unknown promotion policy {split_promotion!r}")
        self.points = points
        self.capacity = capacity
        self.split_promotion = split_promotion
        self.split_partition = split_partition
        self.pivot_method = pivot_method
        self.use_rings = use_rings
        self.use_parent_filter = use_parent_filter
        self._rng = as_generator(seed)
        if pivots is not None:
            # Explicit pivots (e.g. restored from a persisted index) bypass
            # the selection heuristic.
            pivots = np.asarray(pivots, dtype=np.float64)
            if pivots.ndim != 2 or pivots.shape[1] != points.shape[1]:
                raise ValueError(
                    f"pivots must be (s, {points.shape[1]}), got {pivots.shape}"
                )
            self.pivots = pivots.copy()
        else:
            self.pivots = select_pivots(
                points, num_pivots, method=pivot_method, seed=self._rng
            )
        self.num_pivots = self.pivots.shape[0]
        # (n, s) distances from every point to every pivot; the backbone of
        # both HR maintenance and leaf-level ring filtering.
        if self.num_pivots:
            self.pivot_dists = _cross_distances(points, self.pivots)
        else:
            self.pivot_dists = np.empty((points.shape[0], 0), dtype=np.float64)
        self._root: Optional[Node] = None
        self._count = 0
        #: point/centre distance evaluations performed by queries
        self.distance_computations = 0
        #: nodes visited by queries
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        num_pivots: int = 5,
        capacity: int = 32,
        method: str = "bulk",
        seed: RandomState = None,
        **kwargs: object,
    ) -> "PMTree":
        """Build a PM-tree over all rows of *points*.

        ``method='bulk'`` uses recursive clustering (fast, well-shaped);
        ``method='insert'`` performs one-by-one insertion through the full
        M-tree split machinery.
        """
        tree = cls(points, num_pivots=num_pivots, capacity=capacity, seed=seed, **kwargs)
        ids = np.arange(points.shape[0], dtype=np.int64)
        if method == "bulk":
            tree._root = tree._bulk_build(ids)
            tree._count = int(ids.size)
        elif method == "insert":
            for point_id in ids:
                tree.insert(int(point_id))
        else:
            raise ValueError(f"unknown build method {method!r}")
        return tree

    def _bulk_build(self, ids: np.ndarray) -> Node:
        """Balanced bottom-up bulk load.

        Points are recursively median-split along generalised hyperplanes
        (two far-apart seeds; members sorted by ``d(x,a) − d(x,b)``) until
        groups fit a leaf, so every leaf holds between capacity/2 and
        capacity points.  Leaves are then packed level by level — exactly
        like a B+-tree bulk load, but with metric routing entries — which
        keeps all leaves at the same depth and node counts minimal.
        """
        if ids.size <= self.capacity:
            leaf = LeafNode()
            leaf.ids = [int(i) for i in ids]
            leaf.parent_distances = [0.0] * int(ids.size)
            return leaf
        level: List[RoutingEntry] = []
        for group in self._balanced_leaf_groups(ids):
            leaf = LeafNode()
            leaf.ids = [int(i) for i in group]
            leaf.parent_distances = [0.0] * int(group.size)
            center = self._one_center(self.points[group])
            level.append(self._make_entry(center, leaf, parent_distance=0.0))
        while len(level) > 1:
            level = self._pack_level(level)
        root = level[0].child
        if not root.is_leaf:
            self._refresh_parent_distances(root, parent_center=None)
        return root

    def _balanced_leaf_groups(self, ids: np.ndarray) -> List[np.ndarray]:
        """Median hyperplane splits until every group fits in one leaf."""
        if ids.size <= self.capacity:
            return [ids]
        coords = self.points[ids]
        anchor = coords[int(self._rng.integers(0, ids.size))]
        seed_a = coords[int(np.argmax(_distances_to(coords, anchor)))]
        seed_b = coords[int(np.argmax(_distances_to(coords, seed_a)))]
        side = _distances_to(coords, seed_a) - _distances_to(coords, seed_b)
        order = np.argsort(side, kind="stable")
        half = ids.size // 2
        left, right = ids[order[:half]], ids[order[half:]]
        return self._balanced_leaf_groups(left) + self._balanced_leaf_groups(right)

    def _pack_level(self, entries: List[RoutingEntry]) -> List[RoutingEntry]:
        """Group consecutive entries (they are spatially coherent thanks to
        the split order) into parent nodes of near-equal fan-out."""
        num_parents = int(np.ceil(len(entries) / self.capacity))
        boundaries = np.linspace(0, len(entries), num_parents + 1).astype(int)
        parents: List[RoutingEntry] = []
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            chunk = entries[start:stop]
            node = InnerNode()
            for entry in chunk:
                node.add(entry)
            center = self._one_center(node.centers)
            parents.append(self._make_entry(center, node, parent_distance=0.0))
        return parents

    def _one_center(self, coords: np.ndarray) -> np.ndarray:
        """Approximate 1-center: the member minimising the maximum distance
        to the others (exact over ≤ 128 members, sampled beyond)."""
        if coords.shape[0] == 1:
            return coords[0].copy()
        if coords.shape[0] > 128:
            sample = coords[self._rng.choice(coords.shape[0], size=128, replace=False)]
        else:
            sample = coords
        matrix = _pairwise(sample)
        return sample[int(np.argmin(matrix.max(axis=1)))].copy()

    def _make_entry(
        self, center: np.ndarray, child: Node, parent_distance: float
    ) -> RoutingEntry:
        """Wrap *child* in a routing entry, computing radius and rings
        bottom-up from the child's content."""
        if child.is_leaf:
            member_ids = child.ids_array
            coords = self.points[member_ids]
            dists = _distances_to(coords, center)
            radius = float(dists.max()) if dists.size else 0.0
            child.parent_distances = [float(x) for x in dists]
            child.invalidate()
            if self.num_pivots:
                rings = self.pivot_dists[member_ids]
                hr = np.stack([rings.min(axis=0), rings.max(axis=0)], axis=1)
            else:
                hr = np.empty((0, 2), dtype=np.float64)
        else:
            centers = child.centers
            dists = _distances_to(centers, center)
            radius = float((dists + child.radii).max()) if len(child) else 0.0
            for entry, dist in zip(child.entries, dists):
                entry.parent_distance = float(dist)
            child.invalidate()
            if self.num_pivots:
                hr = np.stack(
                    [child.hr_min.min(axis=0), child.hr_max.max(axis=0)], axis=1
                )
            else:
                hr = np.empty((0, 2), dtype=np.float64)
        return RoutingEntry(center, radius, child, parent_distance, hr)

    def _refresh_parent_distances(self, node: InnerNode, parent_center: Optional[np.ndarray]) -> None:
        """Set PD of *node*'s entries relative to *parent_center* (root: 0)."""
        if parent_center is None:
            for entry in node.entries:
                entry.parent_distance = 0.0
        else:
            dists = _distances_to(node.centers, parent_center)
            for entry, dist in zip(node.entries, dists):
                entry.parent_distance = float(dist)
        node.invalidate()

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, point_id: int) -> None:
        """Insert one row id (M-tree descent + overflow splits)."""
        if not 0 <= point_id < self.points.shape[0]:
            raise IndexError(f"point_id {point_id} out of range")
        point = self.points[point_id]
        if self._root is None:
            root = LeafNode()
            root.add(point_id, 0.0)
            self._root = root
            self._count = 1
            return
        outcome = self._insert_into(self._root, point_id, point, parent_center=None)
        if outcome is not None:
            entry_a, entry_b = outcome
            new_root = InnerNode()
            new_root.add(entry_a)
            new_root.add(entry_b)
            self._refresh_parent_distances(new_root, parent_center=None)
            self._root = new_root
        self._count += 1

    def _insert_into(
        self,
        node: Node,
        point_id: int,
        point: np.ndarray,
        parent_center: Optional[np.ndarray],
    ) -> Optional[Tuple[RoutingEntry, RoutingEntry]]:
        """Insert into the subtree at *node*.

        Returns ``None`` when the subtree absorbed the point, or the two
        replacement entries when *node* itself had to split (the caller
        swaps them in).
        """
        if node.is_leaf:
            parent_distance = (
                float(np.linalg.norm(point - parent_center)) if parent_center is not None else 0.0
            )
            node.add(point_id, parent_distance)
            if len(node) > self.capacity:
                return self._split_leaf(node, parent_center)
            return None

        # Choose the subtree: prefer entries whose sphere already covers the
        # point (minimum distance); otherwise minimum radius enlargement.
        dists = _distances_to(node.centers, point)
        covering = dists <= node.radii
        if np.any(covering):
            best = int(np.flatnonzero(covering)[np.argmin(dists[covering])])
        else:
            enlargement = dists - node.radii
            best = int(np.argmin(enlargement))
        entry = node.entries[best]
        if dists[best] > entry.radius:
            entry.radius = float(dists[best])
        if self.num_pivots:
            point_rings = self.pivot_dists[point_id]
            np.minimum(entry.hr[:, 0], point_rings, out=entry.hr[:, 0])
            np.maximum(entry.hr[:, 1], point_rings, out=entry.hr[:, 1])
        node.invalidate()

        outcome = self._insert_into(entry.child, point_id, point, entry.center)
        if outcome is None:
            return None
        entry_a, entry_b = outcome
        node.entries.pop(best)
        node.entries.append(entry_a)
        node.entries.append(entry_b)
        if parent_center is not None:
            entry_a.parent_distance = float(np.linalg.norm(entry_a.center - parent_center))
            entry_b.parent_distance = float(np.linalg.norm(entry_b.center - parent_center))
        node.invalidate()
        if len(node) > self.capacity:
            return self._split_inner(node, parent_center)
        return None

    def _split_leaf(
        self, node: LeafNode, parent_center: Optional[np.ndarray]
    ) -> Tuple[RoutingEntry, RoutingEntry]:
        ids = node.ids_array
        coords = self.points[ids]
        dist_matrix = _pairwise(coords)
        promoted = self._promote(dist_matrix)
        group_a, group_b = partition_members(
            dist_matrix, *promoted, method=self.split_partition
        )
        entries = []
        for group, promoted_index in ((group_a, promoted[0]), (group_b, promoted[1])):
            leaf = LeafNode()
            leaf.ids = [int(ids[i]) for i in group]
            leaf.parent_distances = [0.0] * len(group)
            center = coords[promoted_index].copy()
            parent_distance = (
                float(np.linalg.norm(center - parent_center)) if parent_center is not None else 0.0
            )
            entries.append(self._make_entry(center, leaf, parent_distance))
        return entries[0], entries[1]

    def _split_inner(
        self, node: InnerNode, parent_center: Optional[np.ndarray]
    ) -> Tuple[RoutingEntry, RoutingEntry]:
        centers = node.centers
        dist_matrix = _pairwise(centers)
        promoted = self._promote(dist_matrix)
        group_a, group_b = partition_members(
            dist_matrix, *promoted, method=self.split_partition
        )
        results = []
        for group, promoted_index in ((group_a, promoted[0]), (group_b, promoted[1])):
            inner = InnerNode()
            for member in group:
                inner.add(node.entries[member])
            center = centers[promoted_index].copy()
            parent_distance = (
                float(np.linalg.norm(center - parent_center)) if parent_center is not None else 0.0
            )
            results.append(self._make_entry(center, inner, parent_distance))
        return results[0], results[1]

    def _promote(self, dist_matrix: np.ndarray) -> Tuple[int, int]:
        if self.split_promotion == "mm_rad":
            return promote_mm_rad(dist_matrix, partition=self.split_partition, seed=self._rng)
        return promote_random(dist_matrix, seed=self._rng)

    def append_points(self, new_points: np.ndarray) -> np.ndarray:
        """Grow the indexed matrix by *new_points* rows and insert them.

        Supports dynamic workloads (e.g. streaming archives): the point
        matrix and the pivot-distance matrix are extended, then each new
        row goes through the ordinary M-tree insertion path, so all
        invariants (covering radii, rings, parent distances, balance) are
        maintained.  Returns the ids assigned to the new rows.
        """
        new_points = np.atleast_2d(np.asarray(new_points, dtype=np.float64))
        if new_points.shape[1] != self.points.shape[1]:
            raise ValueError(
                f"new points have dimension {new_points.shape[1]}, "
                f"expected {self.points.shape[1]}"
            )
        start = self.points.shape[0]
        self.points = np.ascontiguousarray(np.vstack([self.points, new_points]))
        if self.num_pivots:
            new_rings = _cross_distances(new_points, self.pivots)
            self.pivot_dists = np.vstack([self.pivot_dists, new_rings])
        new_ids = np.arange(start, start + new_points.shape[0], dtype=np.int64)
        for point_id in new_ids:
            self.insert(int(point_id))
        return new_ids

    def flatten(self):
        """Pack the built tree into a :class:`~repro.pmtree.flat.FlatPMTree`.

        The flat snapshot shares this tree's point and pivot-distance
        matrices and answers batched range queries with identical results
        and counters; it must be re-taken after any mutation (``insert`` /
        ``append_points``).
        """
        from repro.pmtree.flat import FlatPMTree

        return FlatPMTree.from_tree(self)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def reset_counters(self) -> None:
        self.distance_computations = 0
        self.node_accesses = 0

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        limit: Optional[int] = None,
        exclude: Optional[set] = None,
    ) -> List[Tuple[int, float]]:
        """All ``(point_id, distance)`` within *radius* of *query*.

        ``limit`` stops the traversal once that many results are collected
        (Algorithm 2 line 7 probes only until ``βn + k`` candidates are
        found).  ``exclude`` skips ids already collected by a previous,
        smaller-radius pass of the radius-enlarging loop.
        """
        query = np.asarray(query, dtype=np.float64)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if self._root is None:
            return []
        if limit is not None:
            if limit <= 0:
                return []
            return self.knn_within(query, k=limit, radius=radius, exclude=exclude)
        query_rings = self._query_pivot_distances(query)
        results: List[Tuple[int, float]] = []
        stack: List[Tuple[Node, Optional[float]]] = [(self._root, None)]
        while stack:
            node, dist_to_parent = stack.pop()
            self.node_accesses += 1
            if node.is_leaf:
                ids = node.ids_array
                if ids.size == 0:
                    continue
                keep = np.ones(ids.size, dtype=bool)
                # Parent-distance filter: |d(q, par) − o.PD| ≤ r.
                if self.use_parent_filter and dist_to_parent is not None:
                    keep &= np.abs(node.pd_array - dist_to_parent) <= radius
                # Ring filter: ∀i |d(q,p_i) − d(o,p_i)| ≤ r.
                if self.use_rings and self.num_pivots:
                    gaps = np.abs(self.pivot_dists[ids] - query_rings)
                    keep &= (gaps <= radius).all(axis=1)
                survivors = ids[keep]
                if survivors.size == 0:
                    continue
                dists = _distances_to(self.points[survivors], query)
                self.distance_computations += int(survivors.size)
                inside = dists <= radius
                for pid, dist in zip(survivors[inside], dists[inside]):
                    pid = int(pid)
                    if exclude is not None and pid in exclude:
                        continue
                    results.append((pid, float(dist)))
            else:
                for entry_index, center_dist in self._surviving_children(
                    node, query, query_rings, radius, dist_to_parent
                ):
                    stack.append((node.entries[entry_index].child, center_dist))
        return results

    def knn_within(
        self,
        query: np.ndarray,
        k: int,
        radius: float = np.inf,
        exclude: Optional[set] = None,
    ) -> List[Tuple[int, float]]:
        """The k nearest points with distance ≤ *radius*, sorted ascending.

        Best-first traversal with a *shrinking admission bound*: nodes enter
        the frontier keyed by their distance lower bound (sphere test
        combined with the tightest hyper-ring bound); once k candidates are
        held, the admission bound drops from *radius* to the current k-th
        best distance, so later subtrees prune against the tighter value.
        ``radius=inf`` yields plain kNN; a finite radius yields the
        *closest k points inside the ball* — exactly the candidate set
        Algorithm 2 wants when it probes until βn + k points are found.
        Ties at the k-th distance resolve canonically by smallest id, so
        the capped set matches the flat traversal's ``(distance, id)``
        cut bit for bit even on duplicate points.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if self._root is None:
            return []
        query_rings = self._query_pivot_distances(query)
        best = BoundedMaxHeap(k, canonical_values=True)
        frontier = MinHeap()
        frontier.push(0.0, (self._root, None))
        while frontier:
            bound, (node, dist_to_parent) = frontier.pop()
            admission = min(radius, best.bound)
            if bound > admission:
                break
            self.node_accesses += 1
            if node.is_leaf:
                ids = node.ids_array
                if ids.size == 0:
                    continue
                keep = np.ones(ids.size, dtype=bool)
                if self.use_parent_filter and dist_to_parent is not None:
                    keep &= np.abs(node.pd_array - dist_to_parent) <= admission
                if self.use_rings and self.num_pivots:
                    gaps = np.abs(self.pivot_dists[ids] - query_rings)
                    keep &= (gaps <= admission).all(axis=1)
                survivors = ids[keep]
                if survivors.size == 0:
                    continue
                dists = _distances_to(self.points[survivors], query)
                self.distance_computations += int(survivors.size)
                inside = dists <= admission
                for pid, dist in zip(survivors[inside], dists[inside]):
                    pid = int(pid)
                    if exclude is not None and pid in exclude:
                        continue
                    best.push(float(dist), pid)
            else:
                for entry_index, center_dist, child_bound in self._surviving_children(
                    node, query, query_rings, admission, dist_to_parent, with_bounds=True
                ):
                    if child_bound <= min(radius, best.bound):
                        frontier.push(
                            child_bound, (node.entries[entry_index].child, center_dist)
                        )
        return [(pid, dist) for dist, pid in best.items_sorted()]

    def knn(self, query: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """Best-first k nearest neighbours in the indexed space.

        Lower bounds combine the sphere bound ``max(0, d(q,RO) − r)`` with
        the tightest hyper-ring bound, so rings prune here exactly as they
        do for range queries.
        """
        return self.knn_within(query, k, radius=np.inf)

    def _surviving_children(
        self,
        node: InnerNode,
        query: np.ndarray,
        query_rings: np.ndarray,
        radius: float,
        dist_to_parent: Optional[float],
        with_bounds: bool = False,
    ):
        """Apply Eq. 5's pruning battery to one inner node.

        Yields ``(entry_index, centre_distance)`` for every child whose
        region can intersect B(q, radius); with ``with_bounds=True`` a third
        element carries the child's distance lower bound (sphere ∨ rings).
        The parent-distance prefilter runs first because it costs no new
        distance computation.
        """
        keep = np.ones(len(node), dtype=bool)
        if self.use_parent_filter and dist_to_parent is not None:
            keep &= np.abs(node.pds - dist_to_parent) <= radius + node.radii
        if self.use_rings and self.num_pivots:
            ring_ok = (node.hr_min <= query_rings + radius) & (
                node.hr_max >= query_rings - radius
            )
            keep &= ring_ok.all(axis=1)
        candidates = np.flatnonzero(keep)
        if candidates.size == 0:
            return
        dists = _distances_to(node.centers[candidates], query)
        self.distance_computations += int(candidates.size)
        sphere_bounds = np.maximum(dists - node.radii[candidates], 0.0)
        if with_bounds and self.use_rings and self.num_pivots:
            below = np.maximum(node.hr_min[candidates] - query_rings, 0.0)
            above = np.maximum(query_rings - node.hr_max[candidates], 0.0)
            ring_bounds = np.maximum(below, above).max(axis=1)
            bounds = np.maximum(sphere_bounds, ring_bounds)
        else:
            bounds = sphere_bounds
        surviving = bounds <= radius
        if with_bounds:
            for entry_index, center_dist, bound in zip(
                candidates[surviving], dists[surviving], bounds[surviving]
            ):
                yield int(entry_index), float(center_dist), float(bound)
        else:
            for entry_index, center_dist in zip(candidates[surviving], dists[surviving]):
                yield int(entry_index), float(center_dist)

    def _query_pivot_distances(self, query: np.ndarray) -> np.ndarray:
        if not self.num_pivots:
            return np.empty(0, dtype=np.float64)
        return _distances_to(self.pivots, query)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Optional[Node]:
        return self._root

    def height(self) -> int:
        height, node = 0, self._root
        while node is not None:
            height += 1
            node = node.entries[0].child if not node.is_leaf and node.entries else None
        return height

    def iter_nodes(self) -> Iterator[Tuple[int, Node]]:
        """Yield ``(depth, node)`` pairs in DFS order (cost model, tests)."""
        if self._root is None:
            return
        stack: List[Tuple[int, Node]] = [(0, self._root)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            if not node.is_leaf:
                stack.extend((depth + 1, e.child) for e in node.entries)

    def iter_entries(self) -> Iterator[Tuple[int, RoutingEntry]]:
        """Yield ``(depth, routing_entry)`` for every routing entry."""
        for depth, node in self.iter_nodes():
            if not node.is_leaf:
                for entry in node.entries:
                    yield depth, entry


# ----------------------------------------------------------------------
# vector helpers
# ----------------------------------------------------------------------


def _distances_to(rows: np.ndarray, anchor: np.ndarray) -> np.ndarray:
    diff = rows - anchor
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def _pairwise(coords: np.ndarray) -> np.ndarray:
    sq = np.einsum("ij,ij->i", coords, coords)
    matrix = sq[:, None] + sq[None, :] - 2.0 * (coords @ coords.T)
    np.maximum(matrix, 0.0, out=matrix)
    return np.sqrt(matrix)


def _cross_distances(points: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    sq_points = np.einsum("ij,ij->i", points, points)
    sq_anchors = np.einsum("ij,ij->i", anchors, anchors)
    matrix = sq_points[:, None] + sq_anchors[None, :] - 2.0 * (points @ anchors.T)
    np.maximum(matrix, 0.0, out=matrix)
    return np.sqrt(matrix)


def _nearest_assignment(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    return np.argmin(_cross_distances(points, centers), axis=1)
