"""Pivot selection for the PM-tree.

The paper (§4.1) selects pivots "with the aim of making the overall volume
of the corresponding PM-tree region the smallest".  The standard heuristic
that approximates this is *farthest-first traversal* (maximally separated
pivots): well-separated pivots produce narrow hyper-rings and therefore
small region volumes.  Random selection is kept as a baseline and for the
ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.distance import pairwise_distances
from repro.utils.rng import RandomState, as_generator


def select_pivots(
    points: np.ndarray,
    count: int,
    method: str = "maxsep",
    sample_size: int = 2048,
    seed: RandomState = None,
) -> np.ndarray:
    """Choose *count* pivot coordinate vectors from the rows of *points*.

    Parameters
    ----------
    points:
        ``(n, m)`` candidate matrix (typically the projected dataset).
    count:
        Number of pivots (the paper's ``s``; 0 degrades the PM-tree to a
        plain M-tree).
    method:
        ``'maxsep'`` — farthest-first traversal on a sample (default);
        ``'random'`` — uniform sample;
        ``'variance'`` — greedy pick maximising the variance of distances to
        already-chosen pivots (a cheap proxy for ring tightness).
    sample_size:
        Candidate pool size; selection cost is O(sample_size · count).

    Returns
    -------
    ``(count, m)`` array of pivot coordinates (copies, not views).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"points must be a non-empty 2-D array, got shape {points.shape}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty((0, points.shape[1]), dtype=np.float64)
    if count > points.shape[0]:
        raise ValueError(f"cannot select {count} pivots from {points.shape[0]} points")
    rng = as_generator(seed)
    pool_size = min(sample_size, points.shape[0])
    pool_ids = rng.choice(points.shape[0], size=pool_size, replace=False)
    pool = points[pool_ids]

    if method == "random":
        chosen = rng.choice(pool_size, size=count, replace=False)
        return pool[chosen].copy()
    if method == "maxsep":
        return _farthest_first(pool, count, rng)
    if method == "variance":
        return _max_variance(pool, count, rng)
    raise ValueError(f"unknown pivot selection method {method!r}")


def _farthest_first(pool: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
    """Classic k-center greedy: each new pivot maximises the distance to the
    nearest already-chosen pivot."""
    first = int(rng.integers(0, pool.shape[0]))
    chosen = [first]
    min_dist = _distances_to(pool, pool[first])
    for _ in range(1, count):
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        np.minimum(min_dist, _distances_to(pool, pool[nxt]), out=min_dist)
    return pool[chosen].copy()


def _max_variance(pool: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy pivot choice maximising the variance of distances from the
    candidate to the pool — favours pivots whose rings discriminate well."""
    dists = pairwise_distances(pool, pool)
    variances = dists.var(axis=1)
    chosen = [int(np.argmax(variances))]
    for _ in range(1, count):
        # Penalise candidates close to already-chosen pivots to keep spread.
        penalty = np.min(dists[:, chosen], axis=1)
        score = variances * penalty
        score[chosen] = -np.inf
        chosen.append(int(np.argmax(score)))
    return pool[chosen].copy()


def _distances_to(pool: np.ndarray, anchor: np.ndarray) -> np.ndarray:
    diff = pool - anchor
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
