"""PM-tree node and entry structures.

The layout mirrors Fig. 4(b) of the paper:

* a **routing entry** (inner-node slot) stores the covering radius ``r``, a
  pointer to the covered subtree ``ptr``, the routing object ``RO`` (a data
  point acting as sphere centre), the distance ``PD`` to its parent routing
  object, and the hyper-ring intervals ``HR`` — one ``[min, max]`` distance
  interval per global pivot covering every point below the entry;
* a **leaf** stores point ids plus each point's distance to the leaf's
  parent routing object; per-point pivot distances live in one shared
  ``(n, s)`` matrix owned by the tree, so the leaf only keeps ids.

Nodes cache vectorised views (centre matrix, radii vector, HR stacks) that
are rebuilt lazily after structural changes; queries touch only numpy.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np


class RoutingEntry:
    """One inner-node slot: sphere + rings around a subtree."""

    __slots__ = ("center", "radius", "child", "parent_distance", "hr")

    def __init__(
        self,
        center: np.ndarray,
        radius: float,
        child: "Node",
        parent_distance: float,
        hr: np.ndarray,
    ) -> None:
        self.center = center  # (m,) routing-object coordinates
        self.radius = float(radius)
        self.child = child
        self.parent_distance = float(parent_distance)
        self.hr = hr  # (s, 2) [min, max] per pivot; s may be 0


class LeafNode:
    """A leaf: point ids plus their distances to the parent routing object."""

    __slots__ = ("ids", "parent_distances", "_ids_array", "_pd_array")

    is_leaf = True

    def __init__(self) -> None:
        self.ids: List[int] = []
        self.parent_distances: List[float] = []
        self._ids_array: Optional[np.ndarray] = None
        self._pd_array: Optional[np.ndarray] = None

    def add(self, point_id: int, parent_distance: float) -> None:
        self.ids.append(int(point_id))
        self.parent_distances.append(float(parent_distance))
        self.invalidate()

    def invalidate(self) -> None:
        self._ids_array = None
        self._pd_array = None

    @property
    def ids_array(self) -> np.ndarray:
        if self._ids_array is None:
            self._ids_array = np.asarray(self.ids, dtype=np.int64)
        return self._ids_array

    @property
    def pd_array(self) -> np.ndarray:
        if self._pd_array is None:
            self._pd_array = np.asarray(self.parent_distances, dtype=np.float64)
        return self._pd_array

    def __len__(self) -> int:
        return len(self.ids)


class InnerNode:
    """An inner node: a list of routing entries plus cached numpy views."""

    __slots__ = ("entries", "_centers", "_radii", "_pds", "_hr_min", "_hr_max")

    is_leaf = False

    def __init__(self) -> None:
        self.entries: List[RoutingEntry] = []
        self._centers: Optional[np.ndarray] = None
        self._radii: Optional[np.ndarray] = None
        self._pds: Optional[np.ndarray] = None
        self._hr_min: Optional[np.ndarray] = None
        self._hr_max: Optional[np.ndarray] = None

    def add(self, entry: RoutingEntry) -> None:
        self.entries.append(entry)
        self.invalidate()

    def invalidate(self) -> None:
        self._centers = None
        self._radii = None
        self._pds = None
        self._hr_min = None
        self._hr_max = None

    def _rebuild(self) -> None:
        self._centers = np.stack([e.center for e in self.entries])
        self._radii = np.asarray([e.radius for e in self.entries], dtype=np.float64)
        self._pds = np.asarray([e.parent_distance for e in self.entries], dtype=np.float64)
        if self.entries and self.entries[0].hr.shape[0] > 0:
            self._hr_min = np.stack([e.hr[:, 0] for e in self.entries])
            self._hr_max = np.stack([e.hr[:, 1] for e in self.entries])
        else:
            count = len(self.entries)
            self._hr_min = np.empty((count, 0), dtype=np.float64)
            self._hr_max = np.empty((count, 0), dtype=np.float64)

    @property
    def centers(self) -> np.ndarray:
        if self._centers is None:
            self._rebuild()
        return self._centers

    @property
    def radii(self) -> np.ndarray:
        if self._radii is None:
            self._rebuild()
        return self._radii

    @property
    def pds(self) -> np.ndarray:
        if self._pds is None:
            self._rebuild()
        return self._pds

    @property
    def hr_min(self) -> np.ndarray:
        if self._hr_min is None:
            self._rebuild()
        return self._hr_min

    @property
    def hr_max(self) -> np.ndarray:
        if self._hr_max is None:
            self._rebuild()
        return self._hr_max

    def __len__(self) -> int:
        return len(self.entries)


Node = Union[LeafNode, InnerNode]
