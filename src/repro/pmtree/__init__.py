"""PM-tree substrate (Skopal, Pokorný, Snásel, DASFAA'05).

The PM-tree is an M-tree whose regions are additionally clipped by
*hyper-rings*: for a set of s global pivots, every routing entry stores the
interval ``HR[i] = [min, max]`` of distances between pivot ``p_i`` and the
points in its subtree.  A range query can then discard a subtree when the
query ball misses either the M-tree covering sphere or any of the rings —
strictly more pruning power than the M-tree alone, which is exactly why
PM-LSH adopts it over the R-tree (§4.1–4.2 of the paper).

Public surface:

* :class:`~repro.pmtree.tree.PMTree` — build (bulk or insert), range query
  with early termination, best-first kNN, distance-computation counters.
* :class:`~repro.pmtree.flat.FlatPMTree` — ``PMTree.flatten()``'s
  structure-of-arrays snapshot: batched, level-synchronous traversal
  (the serving hot path; identical results and counters to the pointer
  tree).
* :func:`~repro.pmtree.pivots.select_pivots` — pivot selection strategies.
* :func:`~repro.pmtree.validate.check_invariants` — structural validator.
"""

from repro.pmtree.flat import FlatPMTree, TraversalStats
from repro.pmtree.pivots import select_pivots
from repro.pmtree.tree import PMTree
from repro.pmtree.validate import check_invariants

__all__ = [
    "FlatPMTree",
    "PMTree",
    "TraversalStats",
    "check_invariants",
    "select_pivots",
]
