"""Node-split policies for the PM-tree (inherited from the M-tree).

A split has two decisions:

* **promotion** — which two members become the routing objects of the two
  new nodes.  ``mM_RAD`` (minimise the larger of the two covering radii)
  is the classic quality-optimal policy; ``random`` is the cheap one.
* **partition** — how the remaining members are distributed between the two
  promoted objects.  ``balanced`` alternates nearest-first assignments so
  both nodes respect minimum fill; ``hyperplane`` (generalised hyperplane)
  assigns each member to its nearer promoted object, which yields tighter
  spheres but possibly unbalanced nodes.

All functions work on a precomputed member-distance matrix so they are
metric-agnostic and cheap to test in isolation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.rng import RandomState, as_generator

#: Cap on candidate promotion pairs examined by mM_RAD; beyond this the
#: policy samples pairs instead of enumerating all O(k²) of them.
MAX_PROMOTION_PAIRS = 512


def promote_mm_rad(
    dist_matrix: np.ndarray,
    partition: str = "balanced",
    seed: RandomState = None,
) -> Tuple[int, int]:
    """Pick the promotion pair minimising the larger covering radius.

    *dist_matrix* is the symmetric ``(k, k)`` matrix of member distances.
    For every candidate pair the members are partitioned with the requested
    policy and the pair whose worse covering radius is smallest wins.
    """
    k = _validate_matrix(dist_matrix)
    pairs = _candidate_pairs(k, seed)
    best_pair, best_score = pairs[0], np.inf
    for i, j in pairs:
        group_a, group_b = partition_members(dist_matrix, i, j, method=partition)
        radius_a = dist_matrix[i, group_a].max() if group_a else 0.0
        radius_b = dist_matrix[j, group_b].max() if group_b else 0.0
        score = max(radius_a, radius_b)
        if score < best_score:
            best_score, best_pair = score, (i, j)
    return best_pair


def promote_random(dist_matrix: np.ndarray, seed: RandomState = None) -> Tuple[int, int]:
    """Pick two distinct members uniformly at random."""
    k = _validate_matrix(dist_matrix)
    rng = as_generator(seed)
    first, second = rng.choice(k, size=2, replace=False)
    return int(first), int(second)


def partition_members(
    dist_matrix: np.ndarray,
    promoted_a: int,
    promoted_b: int,
    method: str = "balanced",
) -> Tuple[List[int], List[int]]:
    """Distribute all k members (including the promoted two) into two groups.

    Returns ``(group_a, group_b)`` as index lists; the promoted member leads
    its own group.
    """
    k = _validate_matrix(dist_matrix)
    if promoted_a == promoted_b:
        raise ValueError("promoted members must be distinct")
    others = [i for i in range(k) if i not in (promoted_a, promoted_b)]
    group_a, group_b = [promoted_a], [promoted_b]
    if method == "hyperplane":
        for member in others:
            if dist_matrix[member, promoted_a] <= dist_matrix[member, promoted_b]:
                group_a.append(member)
            else:
                group_b.append(member)
        return group_a, group_b
    if method == "balanced":
        # Repeatedly let each group grab its nearest unassigned member.
        remaining = sorted(others, key=lambda member: dist_matrix[member, promoted_a])
        take_a = True
        pool = set(remaining)
        order_a = remaining
        order_b = sorted(others, key=lambda member: dist_matrix[member, promoted_b])
        idx_a = idx_b = 0
        while pool:
            if take_a:
                while order_a[idx_a] not in pool:
                    idx_a += 1
                member = order_a[idx_a]
                group_a.append(member)
            else:
                while order_b[idx_b] not in pool:
                    idx_b += 1
                member = order_b[idx_b]
                group_b.append(member)
            pool.remove(member)
            take_a = not take_a
        return group_a, group_b
    raise ValueError(f"unknown partition method {method!r}")


def _validate_matrix(dist_matrix: np.ndarray) -> int:
    if dist_matrix.ndim != 2 or dist_matrix.shape[0] != dist_matrix.shape[1]:
        raise ValueError(f"dist_matrix must be square, got shape {dist_matrix.shape}")
    k = dist_matrix.shape[0]
    if k < 2:
        raise ValueError(f"need at least two members to split, got {k}")
    return k


def _candidate_pairs(k: int, seed: RandomState) -> List[Tuple[int, int]]:
    total = k * (k - 1) // 2
    if total <= MAX_PROMOTION_PAIRS:
        return [(i, j) for i in range(k) for j in range(i + 1, k)]
    rng = as_generator(seed)
    pairs = set()
    while len(pairs) < MAX_PROMOTION_PAIRS:
        i, j = rng.integers(0, k, size=2)
        if i != j:
            pairs.add((min(int(i), int(j)), max(int(i), int(j))))
    return sorted(pairs)
