"""Structural invariant checker for the PM-tree.

Used by the test suite (including the hypothesis property tests) to assert
that every build path — bulk load, incremental insert, splits at every
level — leaves the tree in a state where all pruning tests are *safe*:

* every indexed point appears in exactly one leaf;
* every covering sphere actually covers its subtree;
* every hyper-ring interval contains the pivot distances of its subtree;
* every stored parent distance matches the actual distance;
* all leaves sit at the same depth (the tree is balanced).
"""

from __future__ import annotations

import numpy as np

from repro.pmtree.tree import PMTree

#: Numerical slack for radius / ring containment checks.  Radii are computed
#: from the same float64 kernels used at query time, so the tolerance only
#: needs to absorb accumulated rounding, not algorithmic error.
TOLERANCE = 1e-7


def check_invariants(tree: PMTree) -> None:
    """Raise ``AssertionError`` describing the first violated invariant."""
    if tree.root is None:
        assert len(tree) == 0, "empty tree with non-zero count"
        return
    seen: list[int] = []
    leaf_depths: set[int] = set()
    _check_node(tree, tree.root, depth=0, seen=seen, leaf_depths=leaf_depths)
    assert len(leaf_depths) == 1, f"leaves at different depths: {sorted(leaf_depths)}"
    assert len(seen) == len(tree), f"point count mismatch: {len(seen)} != {len(tree)}"
    assert len(set(seen)) == len(seen), "a point id appears in more than one leaf"


def _check_node(tree: PMTree, node, depth: int, seen: list, leaf_depths: set) -> tuple:
    """Return ``(ids, max_ring_lo, min_ring_hi)`` aggregated over the subtree."""
    if node.is_leaf:
        leaf_depths.add(depth)
        seen.extend(node.ids)
        ids = np.asarray(node.ids, dtype=np.int64)
        return ids

    assert node.entries, "empty inner node"
    collected = []
    for entry in node.entries:
        subtree_ids = _check_node(tree, entry.child, depth + 1, seen, leaf_depths)
        assert subtree_ids.size > 0, "routing entry over an empty subtree"
        coords = tree.points[subtree_ids]
        dists = np.sqrt(np.einsum("ij,ij->i", coords - entry.center, coords - entry.center))
        assert float(dists.max()) <= entry.radius + TOLERANCE, (
            f"covering radius violated at depth {depth}: "
            f"max member distance {dists.max():.9f} > radius {entry.radius:.9f}"
        )
        if tree.num_pivots:
            rings = tree.pivot_dists[subtree_ids]
            lo, hi = entry.hr[:, 0], entry.hr[:, 1]
            assert bool(np.all(rings.min(axis=0) >= lo - TOLERANCE)), (
                f"hyper-ring lower bound violated at depth {depth}"
            )
            assert bool(np.all(rings.max(axis=0) <= hi + TOLERANCE)), (
                f"hyper-ring upper bound violated at depth {depth}"
            )
        # Parent distances inside the child must match the entry's centre.
        child = entry.child
        if child.is_leaf:
            member_coords = tree.points[child.ids_array]
            actual = np.sqrt(
                np.einsum("ij,ij->i", member_coords - entry.center, member_coords - entry.center)
            )
            stored = child.pd_array
        else:
            centers = child.centers
            actual = np.sqrt(
                np.einsum("ij,ij->i", centers - entry.center, centers - entry.center)
            )
            stored = child.pds
        assert bool(np.allclose(stored, actual, atol=1e-6)), (
            f"stored parent distances diverge from actual at depth {depth}"
        )
        collected.append(subtree_ids)
    return np.concatenate(collected)
