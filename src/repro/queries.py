"""The polymorphic query model: specs and result containers.

The unified API's entry point is ``ANNIndex.run(queries, spec)``, where
*spec* describes **what** is being asked — :class:`Knn` for (c, k)-ANN,
:class:`Range` for (r, c)-ball range queries — together with per-call
runtime knobs (candidate budget ``budget``, approximation ratio ``c``)
that override the index's build-time defaults for this call only.
``search(queries, k)`` is sugar for ``run(queries, Knn(k))`` and
``range_search(queries, r)`` for ``run(queries, Range(r))``.

Range answers are *ragged* — each query may match any number of points —
so :class:`RangeResult` stores them CSR-style (faiss's ``range_search``
layout): ``lims`` is a ``(Q + 1,)`` offset array and query i's matches
are ``ids[lims[i]:lims[i+1]]`` / ``distances[lims[i]:lims[i+1]]``,
sorted by ``(distance, id)``.  Closest-pair search returns a
:class:`ClosestPairResult`: the m best ``(i, j)`` pairs over the indexed
set, sorted by ``(distance, i, j)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Sequence, Tuple

import numpy as np


# ----------------------------------------------------------------------
# query specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuerySpec:
    """Base class for per-call query descriptions.

    Concrete specs (:class:`Knn`, :class:`Range`) carry the query-type
    parameters plus the shared runtime knobs: ``budget`` caps the number
    of candidates the index may verify for one query, and ``c`` overrides
    the approximation ratio.  Indexes that cannot honour a knob answer
    the plain query and mark ``overrides_ignored`` in the result stats.
    """

    @property
    def has_overrides(self) -> bool:
        """True when any runtime knob deviates from the index default."""
        return False

    @property
    def merge_key(self) -> Tuple:
        """Hashable coalescing key of this spec.

        Two requests may be answered by **one** ``run()`` call exactly when
        their specs share a merge key: the key is the spec type plus every
        field value, so equal keys mean the batched call is semantically
        identical to per-request calls (the batch = loop invariant).  The
        serving layer's micro-batcher groups its queues by this key;
        anything with a differing ``k``, ``r``, ``budget`` or ``c`` stays
        in its own batch.
        """
        return (type(self).__name__,) + tuple(
            getattr(self, f.name) for f in fields(self)
        )

    def can_merge_with(self, other: "QuerySpec") -> bool:
        """Whether one ``run()`` call may answer this spec and *other*."""
        return isinstance(other, QuerySpec) and self.merge_key == other.merge_key


@dataclass(frozen=True)
class Knn(QuerySpec):
    """A (c, k)-ANN query: the k approximately-nearest neighbours.

    Parameters
    ----------
    k:
        Number of neighbours per query.
    budget:
        Optional per-query candidate-verification cap, overriding the
        index's own ⌈βn⌉ + k budget for this call.
    c:
        Optional approximation-ratio override; supporting indexes
        re-derive their (t, β) machinery for it.
    """

    k: int
    budget: int | None = None
    c: float | None = None

    def __post_init__(self) -> None:
        if int(self.k) < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "k", int(self.k))
        if self.budget is not None:
            if int(self.budget) < 1:
                raise ValueError(f"budget must be >= 1, got {self.budget}")
            object.__setattr__(self, "budget", int(self.budget))
        if self.c is not None:
            if not float(self.c) > 1.0:
                raise ValueError(f"approximation ratio c must exceed 1, got {self.c}")
            object.__setattr__(self, "c", float(self.c))

    @property
    def has_overrides(self) -> bool:
        return self.budget is not None or self.c is not None


@dataclass(frozen=True)
class Range(QuerySpec):
    """An (r, c)-ball range query: the points within distance r.

    The exact reference answers with every point inside B(q, r); an LSH
    index answers with high recall on B(q, r) while admitting points up
    to B(q, c·r) — the paper's (r, c)-ball guarantee.

    Parameters
    ----------
    r:
        Query-ball radius in the original space (must be positive).
    c:
        Optional approximation-ratio override (slack factor of the
        admitted ball); defaults to the index's own c.
    budget:
        Optional per-query candidate-verification cap.
    """

    r: float
    c: float | None = None
    budget: int | None = None

    def __post_init__(self) -> None:
        if not float(self.r) > 0.0:
            raise ValueError(f"radius r must be positive, got {self.r}")
        object.__setattr__(self, "r", float(self.r))
        if self.c is not None:
            if not float(self.c) > 1.0:
                raise ValueError(f"approximation ratio c must exceed 1, got {self.c}")
            object.__setattr__(self, "c", float(self.c))
        if self.budget is not None:
            if int(self.budget) < 1:
                raise ValueError(f"budget must be >= 1, got {self.budget}")
            object.__setattr__(self, "budget", int(self.budget))

    @property
    def has_overrides(self) -> bool:
        return self.budget is not None or self.c is not None


def as_query_spec(spec) -> QuerySpec:
    """Coerce *spec* to a :class:`QuerySpec` (a bare int means ``Knn(k)``)."""
    if isinstance(spec, QuerySpec):
        return spec
    if isinstance(spec, (int, np.integer)) and not isinstance(spec, bool):
        return Knn(k=int(spec))
    raise TypeError(
        f"spec must be a QuerySpec (Knn/Range) or an int k, got {type(spec).__name__}"
    )


# ----------------------------------------------------------------------
# result containers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RangeResult:
    """Ragged outcome of one batched range query (CSR layout).

    Query i matched ``counts[i] = lims[i+1] - lims[i]`` points; its ids
    and distances are the slices ``ids[lims[i]:lims[i+1]]`` and
    ``distances[lims[i]:lims[i+1]]``, sorted by ``(distance, id)``.
    ``stats`` aggregates the per-query diagnostics exactly like
    :class:`~repro.baselines.base.BatchResult`.
    """

    lims: np.ndarray
    ids: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)
    per_query_stats: Tuple[Dict[str, float], ...] = ()

    def __post_init__(self) -> None:
        lims = np.asarray(self.lims, dtype=np.int64)
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if lims.ndim != 1 or lims.size < 2 or lims[0] != 0:
            raise ValueError(f"lims must be 1-D starting at 0, got {lims!r}")
        if np.any(np.diff(lims) < 0):
            raise ValueError("lims must be non-decreasing")
        if ids.shape != distances.shape or ids.ndim != 1:
            raise ValueError(
                f"ids and distances must be matching 1-D arrays, "
                f"got {ids.shape} / {distances.shape}"
            )
        if int(lims[-1]) != ids.size:
            raise ValueError(
                f"lims[-1] = {int(lims[-1])} must equal the match count {ids.size}"
            )
        object.__setattr__(self, "lims", lims)
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    @property
    def num_queries(self) -> int:
        return int(self.lims.size - 1)

    @property
    def counts(self) -> np.ndarray:
        """Matches per query, shape ``(Q,)``."""
        return np.diff(self.lims)

    def __len__(self) -> int:
        return self.num_queries

    def __getitem__(self, index: int):
        """The i-th query's matches as a ``QueryResult``."""
        from repro.baselines.base import QueryResult

        position = index if index >= 0 else self.num_queries + index
        if not 0 <= position < self.num_queries:
            raise IndexError(f"query index {index} out of range [0, {self.num_queries})")
        lo, hi = int(self.lims[position]), int(self.lims[position + 1])
        stats = (
            dict(self.per_query_stats[position])
            if position < len(self.per_query_stats)
            else {}
        )
        return QueryResult(
            ids=self.ids[lo:hi], distances=self.distances[lo:hi], stats=stats
        )

    def __iter__(self) -> Iterator:
        return (self[i] for i in range(self.num_queries))

    @classmethod
    def from_queries(cls, results: Sequence) -> "RangeResult":
        """Concatenate per-query ``QueryResult``s into one CSR result."""
        from repro.baselines.base import aggregate_stats

        counts = np.asarray([len(result) for result in results], dtype=np.int64)
        lims = np.concatenate([[0], np.cumsum(counts)])
        if len(results):
            ids = np.concatenate([result.ids for result in results])
            distances = np.concatenate([result.distances for result in results])
        else:
            ids = np.empty(0, dtype=np.int64)
            distances = np.empty(0, dtype=np.float64)
        per_query = tuple(dict(result.stats) for result in results)
        return cls(
            lims=lims,
            ids=ids,
            distances=distances,
            stats=aggregate_stats(per_query),
            per_query_stats=per_query,
        )


@dataclass(frozen=True)
class ClosestPairResult:
    """The m closest pairs of the indexed set.

    ``pairs`` is an ``(m, 2)`` int64 matrix of point ids with
    ``pairs[:, 0] < pairs[:, 1]``; ``distances`` the matching original
    space distances.  Rows are sorted by ``(distance, i, j)`` so results
    are deterministic under exact distance ties.
    """

    pairs: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        pairs = np.asarray(self.pairs, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
        if distances.shape != (pairs.shape[0],):
            raise ValueError(
                f"distances must have shape ({pairs.shape[0]},), got {distances.shape}"
            )
        if pairs.size and np.any(pairs[:, 0] >= pairs[:, 1]):
            raise ValueError("every pair must satisfy i < j")
        object.__setattr__(self, "pairs", pairs)
        object.__setattr__(self, "distances", distances)

    def __len__(self) -> int:
        return int(self.pairs.shape[0])

    def __getitem__(self, index: int) -> Tuple[int, int, float]:
        i, j = self.pairs[index]
        return int(i), int(j), float(self.distances[index])

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        return (self[i] for i in range(len(self)))


def sort_pairs(
    pairs: np.ndarray, distances: np.ndarray, m: int | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Order candidate pairs by ``(distance, i, j)`` and keep the best m."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    distances = np.asarray(distances, dtype=np.float64)
    order = np.lexsort((pairs[:, 1], pairs[:, 0], distances))
    if m is not None:
        order = order[:m]
    return pairs[order], distances[order]


def dedupe_pairs(
    pairs: np.ndarray, distances: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop duplicate ``(i, j)`` rows, keeping the first occurrence."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    distances = np.asarray(distances, dtype=np.float64)
    if pairs.shape[0] == 0:
        return pairs, distances
    _, unique_rows = np.unique(pairs, axis=0, return_index=True)
    keep = np.sort(unique_rows)
    return pairs[keep], distances[keep]


__all__ = [
    "ClosestPairResult",
    "Knn",
    "QuerySpec",
    "Range",
    "RangeResult",
    "as_query_spec",
    "dedupe_pairs",
    "sort_pairs",
]
