"""PM-LSH: a fast and accurate LSH framework for high-dimensional
approximate nearest-neighbour search.

A from-scratch Python reproduction of Zheng et al., PVLDB 13(5), 2020
(DOI 10.14778/3377369.3377374).  The package provides:

* :class:`~repro.core.pmlsh.PMLSH` — the paper's index (Algorithms 1–2);
* every baseline it is evaluated against (:mod:`repro.baselines`);
* the substrates: PM-tree (:mod:`repro.pmtree`), R-tree
  (:mod:`repro.rtree`), B+-tree (:mod:`repro.bptree`);
* synthetic dataset emulations and hardness statistics
  (:mod:`repro.datasets`);
* the §4.2 cost models (:mod:`repro.costmodel`) and the §6 evaluation
  harness (:mod:`repro.evaluation`).

Quickstart
----------
>>> import numpy as np
>>> from repro import PMLSH
>>> data = np.random.default_rng(0).normal(size=(2000, 128))
>>> index = PMLSH(data, seed=42).build()
>>> result = index.query(data[7] + 0.01, k=10)
>>> result.ids.shape
(10,)
"""

from repro.baselines import (
    ANNIndex,
    C2LSH,
    E2LSH,
    ExactKNN,
    LSBForest,
    LinearScan,
    MultiProbeLSH,
    QALSH,
    QueryResult,
    RLSH,
    SRS,
)
from repro.core import (
    GaussianProjection,
    LSHFunction,
    PMLSH,
    PMLSHParams,
    solve_parameters,
)
from repro.datasets import load_dataset
from repro.pmtree import PMTree
from repro.rtree import RTree

__version__ = "1.0.0"

__all__ = [
    "ANNIndex",
    "C2LSH",
    "E2LSH",
    "ExactKNN",
    "GaussianProjection",
    "LSBForest",
    "LSHFunction",
    "LinearScan",
    "MultiProbeLSH",
    "PMLSH",
    "PMLSHParams",
    "PMTree",
    "QALSH",
    "QueryResult",
    "RLSH",
    "RTree",
    "SRS",
    "__version__",
    "load_dataset",
    "solve_parameters",
]
