"""PM-LSH: a fast and accurate LSH framework for high-dimensional
approximate nearest-neighbour search.

A from-scratch Python reproduction of Zheng et al., PVLDB 13(5), 2020
(DOI 10.14778/3377369.3377374), extended with the VLDBJ journal
version's workloads.  The package provides:

* :class:`~repro.core.pmlsh.PMLSH` — the paper's index (Algorithms 1–2);
* every baseline it is evaluated against (:mod:`repro.baselines`);
* a central registry (:mod:`repro.registry`) so any algorithm can be
  constructed by name through :func:`create_index`, and a unified
  persistence entry (:func:`load_index`);
* a polymorphic query model (:mod:`repro.queries`): ``run(queries, spec)``
  answers kNN (:class:`Knn`) and ragged (r, c)-ball range queries
  (:class:`Range`) with per-query runtime knobs, and
  ``closest_pairs(m)`` answers closest-pair search — on every backend;
* a sharded parallel query engine (:mod:`repro.engine`) that partitions
  any registered backend across shards and serves kNN / range /
  closest-pair through a worker pool —
  ``create_index("sharded", backend="pm-lsh", ...)``;
* an async serving front-end (:mod:`repro.serving`):
  :class:`AsyncSearchServer` coalesces concurrent requests into batches
  with a deadline-based micro-batcher, interleaves writes epoch-style,
  and caches answers by projected locality
  (:class:`ProjectedQueryCache`) with an optional exact-hit LRU tier
  (:class:`TieredQueryCache`); it self-tunes its batching window under
  load (:class:`AdaptiveBatchController`), enforces per-request
  deadlines and bounded-queue admission control
  (:class:`DeadlineExceeded`, :class:`QueueFull`), and runs on an
  injectable clock (:class:`VirtualClock` for deterministic tests);
* a unified observability layer (:mod:`repro.obs`): a process-wide
  metrics registry with Prometheus/JSON export
  (:class:`MetricsRegistry`), head-sampled per-query trace spans
  (:class:`Tracer`) covering serving → engine → tree, and a bounded
  slow-query log (:class:`SlowQueryLog`);
* an index lifecycle subsystem (:mod:`repro.lifecycle`): tombstone
  deletes (``index.delete(ids)``) filtered at verification time so
  results match an index that never held the dead points, background
  compaction (:class:`CompactionPolicy`, ``index.compact()``,
  :func:`compact_index`) and epoch-stamped replica snapshots
  (:class:`Replica`, :func:`snapshot_epoch`);
* the substrates: PM-tree (:mod:`repro.pmtree`), R-tree
  (:mod:`repro.rtree`), B+-tree (:mod:`repro.bptree`);
* synthetic dataset emulations and hardness statistics
  (:mod:`repro.datasets`);
* the §4.2 cost models (:mod:`repro.costmodel`) and the §6 evaluation
  harness (:mod:`repro.evaluation`).

Quickstart
----------
Every index follows the same fit/add/search lifecycle and is reachable
through the factory:

>>> import numpy as np
>>> import repro
>>> data = np.random.default_rng(0).normal(size=(2000, 128))
>>> index = repro.create_index("pm-lsh", seed=42).fit(data)
>>> batch = index.search(data[:5] + 0.01, k=10)   # (Q, d) -> BatchResult
>>> batch.ids.shape
(5, 10)
>>> ragged = index.range_search(data[:5] + 0.01, r=5.0)  # -> RangeResult
>>> len(ragged)
5
>>> pairs = index.closest_pairs(3)                # -> ClosestPairResult
>>> len(pairs)
3
>>> single = index.query(data[7] + 0.01, k=10)    # one vector
>>> len(single)
10
>>> index.add(np.random.default_rng(1).normal(size=(10, 128)))  # grow
array([2000, 2001, 2002, 2003, 2004, 2005, 2006, 2007, 2008, 2009])
>>> sorted(repro.available_indexes())[:3]
['c2lsh', 'e2lsh', 'exact']

``run(queries, spec)`` is the general entry point behind the sugar:
``Knn(k, budget=..., c=...)`` and ``Range(r, c=..., budget=...)`` carry
per-query runtime knobs.  The pre-2.0 legacy style —
``SomeIndex(data).build()``, ``query_batch()``, ``extend()`` — has been
removed; see ``CHANGES.md``.
"""

from repro.baselines import (
    ANNIndex,
    BatchResult,
    C2LSH,
    E2LSH,
    ExactKNN,
    LSBForest,
    LinearScan,
    MultiProbeLSH,
    QALSH,
    QueryResult,
    RLSH,
    SRS,
)
from repro.core import (
    GaussianProjection,
    LSHFunction,
    PMLSH,
    PMLSHParams,
    solve_parameters,
)
from repro.datasets import load_dataset
from repro.engine import EngineStats, ShardedIndex
from repro.lifecycle import (
    CompactionPolicy,
    CompactionResult,
    Replica,
    TombstoneSet,
    compact_index,
)
from repro.obs import (
    LatencyWindow,
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    Tracer,
    current_trace,
    default_registry,
    use_trace,
)
from repro.persistence import load_index, snapshot_epoch
from repro.pmtree import PMTree
from repro.queries import (
    ClosestPairResult,
    Knn,
    QuerySpec,
    Range,
    RangeResult,
)
from repro.registry import (
    available_indexes,
    create_index,
    get_index_class,
    register_index,
)
from repro.rtree import RTree
from repro.serving import (
    AdaptiveBatchController,
    AsyncSearchServer,
    ControllerConfig,
    DeadlineExceeded,
    ProjectedQueryCache,
    QueueFull,
    ServingRejected,
    ServingStats,
    TieredQueryCache,
    VirtualClock,
)

__version__ = "2.0.0"

__all__ = [
    "ANNIndex",
    "AdaptiveBatchController",
    "AsyncSearchServer",
    "ControllerConfig",
    "DeadlineExceeded",
    "BatchResult",
    "C2LSH",
    "ClosestPairResult",
    "CompactionPolicy",
    "CompactionResult",
    "E2LSH",
    "EngineStats",
    "ExactKNN",
    "GaussianProjection",
    "Knn",
    "LSBForest",
    "LSHFunction",
    "LatencyWindow",
    "LinearScan",
    "MetricsRegistry",
    "MultiProbeLSH",
    "PMLSH",
    "PMLSHParams",
    "PMTree",
    "ProjectedQueryCache",
    "QALSH",
    "QueryResult",
    "QuerySpec",
    "QueueFull",
    "RLSH",
    "RTree",
    "Range",
    "RangeResult",
    "Replica",
    "SRS",
    "ServingRejected",
    "ServingStats",
    "ShardedIndex",
    "SlowQueryLog",
    "TieredQueryCache",
    "TombstoneSet",
    "Trace",
    "Tracer",
    "VirtualClock",
    "__version__",
    "available_indexes",
    "compact_index",
    "create_index",
    "current_trace",
    "default_registry",
    "get_index_class",
    "load_dataset",
    "load_index",
    "register_index",
    "snapshot_epoch",
    "solve_parameters",
    "use_trace",
]
