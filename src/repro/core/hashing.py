"""p-stable locality-sensitive hashing in Euclidean space.

Three flavours; the first two match §2.2 and §3.2 of the paper:

* :class:`GaussianProjection` — the *unbucketed* family ``h*(o) = a·o``
  (Eq. 3) with ``a ~ N(0, I)``.  PM-LSH, SRS and QALSH work directly on
  these real-valued projections; stacking m of them maps the dataset into
  the m-dimensional projected space.
* :class:`LSHFunction` — the classic bucketed form
  ``h(o) = ⌊(a·o + b)/w⌋`` (Eq. 1) used by E2LSH and Multi-Probe, with
  ``b ~ U[0, w)``.
* :class:`SampledProjection` — FastLSH-style *structured* projections:
  each hash function reads only ``s ≈ √d`` sampled coordinates, cutting
  per-point hashing from O(d·m) toward O(√d·m) while keeping the
  projected-distance distribution calibrated (weights are rescaled by
  ``√(d/s)`` so ``E[h(o)²] = ‖o‖²`` still holds).  Selectable in PM-LSH
  via ``PMLSHParams(hash_family="sampled")`` and used by ``fit()``,
  ``add()`` and the serving cache's quantized keys alike.  The flop
  saving only becomes wall-clock under the ``fast`` kernel backend's
  chunked gather (the naive gather is memory-bound); at moderate d the
  dense BLAS GEMM remains competitive — measured numbers live in
  ``results/kernels.txt`` (see ``docs/kernels.md``).

:func:`collision_probability` evaluates Eq. 2 — the probability that two
points at distance τ share a bucket of width w — in closed form.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.rng import RandomState, as_generator


class GaussianProjection:
    """A bank of ``m`` 2-stable projections ``h*_i(o) = a_i · o``.

    The 2-stability property (§3.2) makes the per-axis hash difference of
    two points at distance r distributed as ``N(0, r²)``, hence
    ``‖o'_1 − o'_2‖² / r² ~ χ²(m)`` (Lemma 1) — the relationship all of
    PM-LSH's estimation theory rests on.
    """

    def __init__(self, dim: int, m: int, seed: RandomState = None) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        rng = as_generator(seed)
        self.dim = dim
        self.m = m
        # (m, dim): row i is the direction vector a_i.
        self.directions = rng.normal(0.0, 1.0, size=(m, dim))

    @classmethod
    def from_directions(cls, directions: np.ndarray) -> "GaussianProjection":
        """Rebuild a projection bank from stored direction vectors (used
        when restoring a persisted index)."""
        directions = np.asarray(directions, dtype=np.float64)
        if directions.ndim != 2 or directions.size == 0:
            raise ValueError(f"directions must be a non-empty 2-D array, got {directions.shape}")
        bank = cls.__new__(cls)
        bank.m, bank.dim = directions.shape
        bank.directions = directions.copy()
        return bank

    def project(self, points: np.ndarray) -> np.ndarray:
        """Map ``(n, dim)`` points (or one ``(dim,)`` point) into R^m."""
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        if points.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {points.shape[1]}, expected {self.dim}"
            )
        projected = points @ self.directions.T
        return projected[0] if single else projected

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.project(points)


class SampledProjection:
    """A bank of ``m`` sampled structured projections (FastLSH-style).

    Function i reads only the ``s`` coordinates ``sample_idx[i]`` (drawn
    without replacement) with Gaussian weights scaled by ``√(d/s)``:
    ``h*_i(o) = √(d/s) · Σ_j w_ij · o[idx_ij]``.  The rescaling keeps
    ``E[h*_i(o)²] = ‖o‖²`` over the coordinate sample, so the χ²(m)
    projected-distance machinery PM-LSH calibrates (t, β) with remains a
    faithful approximation while hashing costs O(s·m) per point instead
    of O(d·m).  ``sample_size`` defaults to ``⌈√d⌉``.

    Projection dispatches through :mod:`repro.kernels`, whose two
    backends are differential-tested to produce bit-identical floats —
    and both single-point and batched calls reduce each ``(point, i)``
    output independently, so serving-cache keys quantize identically
    either way.
    """

    def __init__(
        self,
        dim: int,
        m: int,
        sample_size: int | None = None,
        seed: RandomState = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        if sample_size is None:
            sample_size = int(np.ceil(np.sqrt(dim)))
        sample_size = min(int(sample_size), dim)
        if sample_size <= 0:
            raise ValueError(f"sample_size must be positive, got {sample_size}")
        rng = as_generator(seed)
        self.dim = dim
        self.m = m
        self.sample_size = sample_size
        # (m, s): per-function coordinate sample, without replacement.
        self.sample_idx = np.stack(
            [rng.choice(dim, size=sample_size, replace=False) for _ in range(m)]
        ).astype(np.int64)
        self.weights = rng.normal(0.0, 1.0, size=(m, sample_size)) * np.sqrt(
            dim / sample_size
        )

    @classmethod
    def from_arrays(
        cls, sample_idx: np.ndarray, weights: np.ndarray, dim: int
    ) -> "SampledProjection":
        """Rebuild a sampled bank from stored arrays (persisted indexes).

        Restoring the exact ``sample_idx``/``weights`` — never a dense
        equivalent matrix — is what keeps reloaded projections
        bit-identical to the ones computed at fit time.
        """
        sample_idx = np.asarray(sample_idx, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if sample_idx.ndim != 2 or sample_idx.shape != weights.shape:
            raise ValueError(
                f"sample_idx/weights must be matching 2-D arrays, got "
                f"{sample_idx.shape} and {weights.shape}"
            )
        bank = cls.__new__(cls)
        bank.dim = int(dim)
        bank.m, bank.sample_size = sample_idx.shape
        bank.sample_idx = sample_idx.copy()
        bank.weights = weights.copy()
        return bank

    def project(self, points: np.ndarray) -> np.ndarray:
        """Map ``(n, dim)`` points (or one ``(dim,)`` point) into R^m."""
        from repro import kernels

        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        if single:
            points = points[None, :]
        if points.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {points.shape[1]}, expected {self.dim}"
            )
        projected = kernels.active().sampled_project(
            points, self.sample_idx, self.weights
        )
        return projected[0] if single else projected

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.project(points)


class LSHFunction:
    """A bank of ``m`` bucketed hash functions ``h_i(o) = ⌊(a_i·o + b_i)/w⌋``.

    ``bucketize`` floors shifted projections into integer bucket ids; E2LSH
    concatenates all m ids into one compound key, Multi-Probe perturbs the
    per-axis ids.  ``residuals`` exposes the within-bucket offsets that
    Multi-Probe's query-directed probing scores (distance of the query to
    each bucket boundary).
    """

    def __init__(self, dim: int, m: int, w: float = 4.0, seed: RandomState = None) -> None:
        if w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        rng = as_generator(seed)
        self.projection = GaussianProjection(dim, m, seed=rng)
        self.dim = dim
        self.m = m
        self.w = float(w)
        self.offsets = rng.uniform(0.0, w, size=m)

    def raw(self, points: np.ndarray) -> np.ndarray:
        """Shifted projections ``a_i·o + b_i`` (before flooring)."""
        return self.projection.project(points) + self.offsets

    def bucketize(self, points: np.ndarray) -> np.ndarray:
        """Integer bucket ids, shape ``(n, m)`` (or ``(m,)`` for one point)."""
        return np.floor(self.raw(points) / self.w).astype(np.int64)

    def residuals(self, point: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-axis distances of *point* to its bucket's two boundaries.

        Returns ``(to_lower, to_upper)`` with ``to_lower + to_upper == w``;
        these are the x_i(−1) / x_i(+1) quantities in Multi-Probe's
        perturbation scoring.
        """
        raw = self.raw(point)
        to_lower = raw - np.floor(raw / self.w) * self.w
        return to_lower, self.w - to_lower

    def compound_key(self, point: np.ndarray) -> tuple:
        """The concatenated bucket id G(o) used as an E2LSH table key."""
        return tuple(int(b) for b in np.atleast_1d(self.bucketize(point)))


def collision_probability(tau: float, w: float) -> float:
    """Eq. 2 in closed form: Pr[h(o1) = h(o2)] for ‖o1,o2‖ = τ, width w.

    Derived from the standard-normal pdf φ and cdf Φ with t = w/τ:

        p(τ) = 2Φ(t) − 1 − (2/(√(2π)·t)) · (1 − e^{−t²/2})

    As τ → 0 the probability tends to 1; as τ → ∞ it tends to 0.
    """
    if w <= 0:
        raise ValueError(f"bucket width w must be positive, got {w}")
    if tau < 0:
        raise ValueError(f"distance tau must be non-negative, got {tau}")
    if tau == 0.0:
        return 1.0
    t = w / tau
    term_cdf = 2.0 * stats.norm.cdf(t) - 1.0
    term_pdf = 2.0 / (np.sqrt(2.0 * np.pi) * t) * (1.0 - np.exp(-0.5 * t * t))
    return float(term_cdf - term_pdf)


def sensitivity(r: float, c: float, w: float) -> tuple[float, float]:
    """The (p1, p2) pair making Eq. 1's family (r, cr, p1, p2)-sensitive."""
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")
    return collision_probability(r, w), collision_probability(c * r, w)
