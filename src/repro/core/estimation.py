"""Distance estimation in the projected space (§3.2, §4.3, §5.1).

The chain of results implemented here:

* **Lemma 1** — for m Gaussian projections, ``r'² / r² ~ χ²(m)`` where r is
  the original distance and r' the projected distance.
* **Lemma 2** — ``r̂ = r'/√m`` is an unbiased (and MLE) estimator of r.
* **Lemma 3** — a tunable confidence interval: with probability α each,
  ``r' < r·√(χ²_{1−α}(m))`` and ``r' > r·√(χ²_α(m))``, where χ²_α is the
  *upper* quantile.
* **Eq. 10 / Lemma 4** — the solver that turns (m, c, α1) into the
  projected search-radius multiplier t, the false-positive level α2, and
  the candidate budget β = 2·α2 that Algorithms 1–2 consume.

It also hosts the four distance estimators compared in Fig. 3 (L2, L1, QD,
Rand); the experiment shows L2 — the paper's estimator — dominating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.rng import RandomState, as_generator


def chi2_upper_quantile(alpha: float, m: int) -> float:
    """χ²_α(m): the value whose upper-tail probability is α (paper's
    convention, Lemma 3)."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if m <= 0:
        raise ValueError(f"degrees of freedom m must be positive, got {m}")
    return float(stats.chi2.isf(alpha, df=m))


def estimate_original_distance(projected_distance: np.ndarray | float, m: int):
    """Lemma 2: the unbiased estimate ``r̂ = r'/√m`` of the original distance."""
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    return projected_distance / np.sqrt(m)


@dataclass(frozen=True)
class ConfidenceInterval:
    """Two-sided interval for the projected distance r' given original r.

    ``Pr[r' < lower] = alpha`` and ``Pr[r' > upper] = alpha`` (Lemma 3), so
    r' falls inside ``[lower, upper]`` with probability 1 − 2α.
    """

    lower: float
    upper: float
    alpha: float

    def contains(self, projected_distance: float) -> bool:
        return self.lower <= projected_distance <= self.upper


def confidence_interval(original_distance: float, m: int, alpha: float) -> ConfidenceInterval:
    """Lemma 3's interval for r' at confidence level 1 − 2α."""
    if original_distance < 0:
        raise ValueError(f"distance must be non-negative, got {original_distance}")
    lower = original_distance * np.sqrt(chi2_upper_quantile(1.0 - alpha, m))
    upper = original_distance * np.sqrt(chi2_upper_quantile(alpha, m))
    return ConfidenceInterval(lower=float(lower), upper=float(upper), alpha=alpha)


@dataclass(frozen=True)
class SolvedParameters:
    """Output of the Eq. 10 solver.

    ``t`` multiplies the original-space radius r to obtain the projected
    search radius t·r; E1 (no true positive missed) holds with probability
    ≥ 1 − α1 and E2 (< βn far points admitted) with probability ≥ 1 − α2/β.
    """

    m: int
    c: float
    alpha1: float
    alpha2: float
    beta: float
    t: float

    @property
    def success_probability(self) -> float:
        """Joint lower bound Pr[E1 ∧ E2] ≥ 1 − α1 − α2/β (Theorem 1 uses
        β = 2α2, giving 1/2 − 1/e with α1 = 1/e)."""
        return max(0.0, 1.0 - self.alpha1 - self.alpha2 / self.beta)


def solve_parameters(
    m: int,
    c: float,
    alpha1: float = 1.0 / np.e,
    beta_multiplier: float = 2.0,
) -> SolvedParameters:
    """Solve Eq. 10 for (t, α2) and set β = beta_multiplier·α2.

    From ``t² = χ²_{α1}(m)`` (upper quantile) the projected radius
    multiplier t follows directly; substituting into
    ``t² = c²·χ²_{1−α2}(m)`` gives ``χ²_{1−α2}(m) = t²/c²`` and therefore
    ``α2 = CDF_{χ²(m)}(t²/c²)``.  The paper's default β = 2α2 makes
    Pr[E2] = 1/2 (Lemma 5).
    """
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")
    if not 0.0 < alpha1 < 1.0:
        raise ValueError(f"alpha1 must be in (0, 1), got {alpha1}")
    if beta_multiplier <= 1.0:
        raise ValueError(
            f"beta_multiplier must exceed 1 (beta > alpha2 required), got {beta_multiplier}"
        )
    t_squared = chi2_upper_quantile(alpha1, m)
    alpha2 = float(stats.chi2.cdf(t_squared / (c * c), df=m))
    beta = beta_multiplier * alpha2
    return SolvedParameters(
        m=m, c=c, alpha1=alpha1, alpha2=alpha2, beta=beta, t=float(np.sqrt(t_squared))
    )


# ----------------------------------------------------------------------
# The Fig. 3 estimator family
# ----------------------------------------------------------------------


class EstimatorKind(str, enum.Enum):
    """The four candidate-ranking estimators compared in Fig. 3."""

    L2 = "L2"      # projected Euclidean distance (the paper's choice)
    L1 = "L1"      # projected Manhattan distance
    QD = "QD"      # quantization-distance style score (GQR-inspired)
    RAND = "Rand"  # random score (sanity floor)


class DistanceEstimator:
    """Rank dataset points by estimated distance to a query.

    Given the projected dataset ``(n, m)``, produce a score per point for a
    projected query; smaller = believed closer in the original space.  The
    Fig. 3 experiment retrieves the top-T scored points and measures how
    well the true kNN are covered.
    """

    def __init__(
        self,
        projected_points: np.ndarray,
        kind: EstimatorKind | str = EstimatorKind.L2,
        bucket_width: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        self.projected = np.asarray(projected_points, dtype=np.float64)
        if self.projected.ndim != 2:
            raise ValueError(f"projected points must be 2-D, got {self.projected.shape}")
        self.kind = EstimatorKind(kind)
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = float(bucket_width)
        self._rng = as_generator(seed)

    def scores(self, projected_query: np.ndarray) -> np.ndarray:
        """Score every dataset point for one projected query (lower=closer)."""
        query = np.asarray(projected_query, dtype=np.float64)
        if query.shape != (self.projected.shape[1],):
            raise ValueError(
                f"query has shape {query.shape}, expected ({self.projected.shape[1]},)"
            )
        diff = self.projected - query
        if self.kind is EstimatorKind.L2:
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if self.kind is EstimatorKind.L1:
            return np.abs(diff).sum(axis=1)
        if self.kind is EstimatorKind.QD:
            # Quantization-distance: residual distance after snapping each
            # axis difference to its containing bucket — the bucket-granular
            # score a hash-bucket index effectively ranks by (GQR-style).
            buckets = np.floor(np.abs(diff) / self.bucket_width)
            return np.sqrt(((buckets * self.bucket_width) ** 2).sum(axis=1))
        if self.kind is EstimatorKind.RAND:
            return self._rng.uniform(0.0, 1.0, size=self.projected.shape[0])
        raise AssertionError(f"unhandled estimator kind {self.kind}")

    def top(self, projected_query: np.ndarray, count: int) -> np.ndarray:
        """Ids of the *count* best-scored points, ascending by score."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        scores = self.scores(projected_query)
        count = min(count, scores.size)
        part = np.argpartition(scores, count - 1)[:count]
        return part[np.argsort(scores[part], kind="stable")]
