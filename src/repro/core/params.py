"""Parameter bundle for PM-LSH with the paper's §6.1 defaults."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PMLSHParams:
    """All tunables of the PM-LSH index.

    Defaults follow §6.1 of the paper: m = 15 hash functions, s = 5 pivots,
    α1 = 1/e (so Pr[E1] ≥ 1 − 1/e), β = 2·α2 (so Pr[E2] = 1/2), c = 1.5.
    """

    m: int = 15
    num_pivots: int = 5
    c: float = 1.5
    alpha1: float = float(1.0 / np.e)
    beta_multiplier: float = 2.0
    node_capacity: int = 128
    radius_shrink: float = 0.95
    radius_sample_pairs: int = 50_000
    build_method: str = "bulk"
    pivot_method: str = "maxsep"
    split_promotion: str = "mm_rad"
    split_partition: str = "balanced"
    use_rings: bool = True
    use_parent_filter: bool = True
    #: Hard cap on radius-enlarging iterations; a safety net, not a tuning
    #: knob (the candidate budget terminates the loop long before this).
    max_iterations: int = 64
    #: Optional fixed candidate-budget fraction.  When set, it replaces the
    #: β solved from Eq. 10 — the paper's parameter study varies m while
    #: holding the probing budget at its m = 15 level (Fig. 6), which this
    #: knob enables.  ``None`` (default) keeps the solved β.
    beta_override: float | None = None
    #: PM-tree traversal behind the batched query paths: ``"flat"``
    #: (default) walks the flattened structure-of-arrays tree one whole
    #: frontier level at a time; ``"recursive"`` walks the pointer tree
    #: once per query.  Results are identical — the knob exists for the
    #: traversal micro-bench and the equivalence tests.
    traversal: str = "flat"
    #: Hash family behind the m projections: ``"dense"`` (default) is the
    #: paper's Eq. 3 Gaussian GEMM; ``"sampled"`` is the FastLSH-style
    #: structured family (each function reads ~√d sampled coordinates),
    #: cutting hashing cost for ``fit``/``add``/cache keys at a small,
    #: calibrated approximation cost.  See
    #: :class:`repro.core.hashing.SampledProjection`.
    hash_family: str = "dense"
    #: Coordinates read per sampled hash function; ``None`` (default)
    #: resolves to ``⌈√d⌉`` at fit time.  Ignored by the dense family.
    hash_sample_size: int | None = None

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"m must be positive, got {self.m}")
        if self.num_pivots < 0:
            raise ValueError(f"num_pivots must be non-negative, got {self.num_pivots}")
        if self.c <= 1.0:
            raise ValueError(f"c must exceed 1, got {self.c}")
        if not 0.0 < self.alpha1 < 1.0:
            raise ValueError(f"alpha1 must be in (0, 1), got {self.alpha1}")
        if self.beta_multiplier <= 1.0:
            raise ValueError(f"beta_multiplier must exceed 1, got {self.beta_multiplier}")
        if self.node_capacity < 4:
            raise ValueError(f"node_capacity must be at least 4, got {self.node_capacity}")
        if not 0.0 < self.radius_shrink <= 1.0:
            raise ValueError(f"radius_shrink must be in (0, 1], got {self.radius_shrink}")
        if self.build_method not in ("bulk", "insert"):
            raise ValueError(f"unknown build_method {self.build_method!r}")
        if self.pivot_method not in ("maxsep", "random", "variance"):
            raise ValueError(f"unknown pivot_method {self.pivot_method!r}")
        if self.split_promotion not in ("mm_rad", "random"):
            raise ValueError(f"unknown split_promotion {self.split_promotion!r}")
        if self.max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {self.max_iterations}")
        if self.beta_override is not None and not 0.0 < self.beta_override < 1.0:
            raise ValueError(
                f"beta_override must be in (0, 1), got {self.beta_override}"
            )
        if self.traversal not in ("flat", "recursive"):
            raise ValueError(f"unknown traversal {self.traversal!r}")
        if self.hash_family not in ("dense", "sampled"):
            raise ValueError(f"unknown hash_family {self.hash_family!r}")
        if self.hash_sample_size is not None and self.hash_sample_size <= 0:
            raise ValueError(
                f"hash_sample_size must be positive, got {self.hash_sample_size}"
            )
