"""Initial search-radius selection for the (c, k)-ANN algorithm (§4.5).

Executing many range queries is the expensive part of the radius-enlarging
loop, so PM-LSH picks an initial radius r_min that usually lets Algorithm 2
finish after one (occasionally two) range queries: using the dataset's
distance distribution F(x) — a good stand-in for any query's own
distribution because HV ≈ 1 — it solves ``n·F(r) = βn + k`` and then backs
off slightly so the first probe does not overshoot.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.distance import DistanceDistribution, sample_distance_distribution
from repro.utils.rng import RandomState

#: Back-off multiplier: r_min is chosen "slightly smaller" than the solved
#: radius (§4.5); the paper notes performance depends only weakly on the
#: exact choice.
DEFAULT_SHRINK = 0.95


def select_initial_radius(
    distribution: DistanceDistribution,
    n: int,
    beta: float,
    k: int,
    shrink: float = DEFAULT_SHRINK,
) -> float:
    """Solve ``n·F(r) = βn + k`` on the empirical F and shrink the result.

    Parameters
    ----------
    distribution:
        Empirical pairwise-distance distribution of the dataset.
    n:
        Dataset cardinality.
    beta:
        Candidate-budget fraction from the Eq. 10 solver.
    k:
        Number of neighbours requested.
    shrink:
        Multiplier < 1 applied to the solved radius.

    Returns a strictly positive radius; falls back to a small quantile when
    the target mass exceeds what the sample can resolve.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    if not 0.0 < shrink <= 1.0:
        raise ValueError(f"shrink must be in (0, 1], got {shrink}")
    target_mass = min(1.0, (beta * n + k) / n)
    radius = distribution.quantile(target_mass) * shrink
    if radius <= 0.0:
        # Degenerate distribution head (duplicates); use the smallest
        # strictly positive sampled distance instead.
        positive = distribution.samples[distribution.samples > 0.0]
        radius = float(positive[0]) if positive.size else 1.0
    return float(radius)


def radius_schedule(initial: float, c: float, rounds: int) -> np.ndarray:
    """Algorithm 2's radius ladder ``r, c·r, c²·r, …`` as one array.

    Returns ``rounds + 1`` values (the extra entry is the radius the loop
    holds after its last enlargement, which is what the probe reports when
    it exhausts ``max_iterations``).  Produced by repeated multiplication,
    not powers, so the floats match a sequential ``r *= c`` loop exactly —
    the batched flat traversal and the per-query probe must agree bit for
    bit on every radius they test.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if initial <= 0.0:
        raise ValueError(f"initial radius must be positive, got {initial}")
    if c <= 1.0:
        raise ValueError(f"c must exceed 1, got {c}")
    out = np.empty(rounds + 1, dtype=np.float64)
    r = float(initial)
    for i in range(rounds + 1):
        out[i] = r
        r *= c
    return out


def range_candidate_budget(
    distribution: DistanceDistribution,
    n: int,
    beta: float,
    radius: float,
) -> int:
    """Candidate cap for an (r, c)-ball range query.

    A kNN query caps verification at ⌈βn⌉ + k; for a range query the "k"
    role — the result population — is unknown in advance, so it is
    estimated from the same F(x) sample that drives r_min selection:
    expected ball mass ``n·F(radius)`` (with *radius* already including
    the c slack).  The returned budget is ``⌈βn⌉ + max(1, ⌈n·F(radius)⌉)``
    — sublinear whenever the query ball holds a vanishing fraction of the
    dataset, which is the regime range queries are useful in.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    if radius <= 0.0:
        raise ValueError(f"radius must be positive, got {radius}")
    expected = int(np.ceil(n * distribution.cdf(radius)))
    return int(np.ceil(beta * n)) + max(1, expected)


def radius_from_points(
    points: np.ndarray,
    beta: float,
    k: int,
    num_pairs: int = 50_000,
    shrink: float = DEFAULT_SHRINK,
    seed: RandomState = None,
) -> float:
    """Convenience wrapper: estimate F from *points*, then pick r_min."""
    distribution = sample_distance_distribution(points, num_pairs=num_pairs, seed=seed)
    return select_initial_radius(
        distribution, n=points.shape[0], beta=beta, k=k, shrink=shrink
    )
