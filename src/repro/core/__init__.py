"""Core PM-LSH: the paper's primary contribution.

* :mod:`repro.core.hashing` — p-stable Gaussian projections (Eqs. 1–3).
* :mod:`repro.core.estimation` — the χ²(m) distance-estimation theory
  (Lemmas 1–3), the Eq. 10 parameter solver, and the Fig. 3 estimators.
* :mod:`repro.core.radius` — distance-distribution-driven r_min (§4.5).
* :mod:`repro.core.pmlsh` — Algorithms 1 and 2 on top of the PM-tree.
"""

from repro.core.estimation import (
    ConfidenceInterval,
    DistanceEstimator,
    EstimatorKind,
    confidence_interval,
    estimate_original_distance,
    solve_parameters,
)
from repro.core.hashing import GaussianProjection, LSHFunction, collision_probability
from repro.core.params import PMLSHParams
from repro.core.pmlsh import PMLSH
from repro.core.radius import select_initial_radius

__all__ = [
    "ConfidenceInterval",
    "DistanceEstimator",
    "EstimatorKind",
    "GaussianProjection",
    "LSHFunction",
    "PMLSH",
    "PMLSHParams",
    "collision_probability",
    "confidence_interval",
    "estimate_original_distance",
    "select_initial_radius",
    "solve_parameters",
]
