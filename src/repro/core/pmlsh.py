"""PM-LSH: Algorithms 1 and 2 of the paper on top of the PM-tree.

Query pipeline (Fig. 2's three components):

1. **data partitioning** — m Gaussian projections map the dataset into R^m,
   a PM-tree with s global pivots indexes the projected points;
2. **distance estimation** — the Eq. 10 solver turns (m, c, α1) into the
   projected radius multiplier t and candidate budget β;
3. **point probing** — range queries ``range(q', t·r)`` with
   ``r = r_min, c·r_min, c²·r_min, …`` collect candidates, each verified by
   its true distance, until k points within c·r are known or βn + k
   candidates have been inspected.

Beyond (c, k)-ANN the same machinery answers the VLDBJ extension's other
workloads: :meth:`PMLSH._run_range` routes (r, c)-ball range queries
through a single projected range probe at radius t·c·r, and
:meth:`PMLSH._closest_pairs` finds approximate closest pairs by a
projected-space self-join (candidate pairs ranked by Lemma 2's distance
estimate, verified in the original space).  Per-query runtime knobs —
candidate budget and approximation ratio — arrive through the
:class:`~repro.queries.QuerySpec` layer; a per-call ``c`` re-solves the
(t, β) pair through a small cache.

Traversal backends
------------------
The pointer PM-tree built at ``fit`` time remains the insert/validate
structure, but the batched entry points (``search``/``run``/
``range_search``/``closest_pairs``) default to its *flattened*
structure-of-arrays snapshot (:class:`~repro.pmtree.flat.FlatPMTree`):
one level-synchronous traversal answers the whole query batch, pruning
with the same Eq. 5 tests as vectorised masks and returning bit-identical
candidate sets.  ``PMLSHParams(traversal="recursive")`` switches the
batch paths back to per-query pointer-tree walks (the micro-bench and
the equivalence tests compare the two).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, BatchResult, QueryResult, aggregate_stats
from repro.core.estimation import SolvedParameters, solve_parameters
from repro.core.hashing import GaussianProjection, SampledProjection
from repro.core.params import PMLSHParams
from repro.core.radius import (
    radius_schedule,
    range_candidate_budget,
    select_initial_radius,
)
from repro.datasets.distance import (
    DistanceDistribution,
    chunked_knn,
    point_to_points_distances,
    sample_distance_distribution,
)
from repro.obs.tracing import current_trace
from repro.pmtree.flat import FlatPMTree
from repro.pmtree.tree import PMTree
from repro.queries import (
    ClosestPairResult,
    Knn,
    Range,
    RangeResult,
    dedupe_pairs,
    sort_pairs,
)
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator


class _TreeWork:
    """Accumulates flat-traversal counters across rounds and query blocks.

    ``into_stats`` publishes them as per-query means on a batch-level
    stats dict: total node accesses (``tree_nodes``), distance
    evaluations (``tree_dist_comps``), the tree height (``tree_levels``)
    and one ``tree_visits_l{d}`` counter per depth level — the per-level
    frontier work the sharded engine surfaces per shard.
    """

    def __init__(self, height: int) -> None:
        self.height = height
        self.nodes = 0
        self.dist_comps = 0
        self.level_visits = np.zeros(height, dtype=np.int64)

    def add(self, stats) -> None:
        self.nodes += int(stats.nodes.sum())
        self.dist_comps += int(stats.dist_comps.sum())
        self.level_visits[: stats.level_visits.size] += stats.level_visits

    def into_stats(self, target: Dict[str, float], num_queries: int) -> None:
        per_query = max(1, num_queries)
        target["tree_nodes"] = self.nodes / per_query
        target["tree_dist_comps"] = self.dist_comps / per_query
        target["tree_levels"] = float(self.height)
        for depth in range(self.height):
            target[f"tree_visits_l{depth}"] = float(self.level_visits[depth]) / per_query


@register_index("pm-lsh")
class PMLSH(ANNIndex):
    """The PM-LSH index (the paper's primary contribution).

    Parameters
    ----------
    params:
        Tunables; see :class:`~repro.core.params.PMLSHParams`.
    seed:
        Controls projection directions, pivot selection and the F(x) sample.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import PMLSH
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(1000, 64))
    >>> index = PMLSH(seed=0).fit(data)
    >>> result = index.query(data[0] + 0.01, k=5)
    >>> len(result)
    5
    >>> batch = index.search(data[:8] + 0.01, k=5)
    >>> batch.ids.shape
    (8, 5)
    """

    name = "PM-LSH"
    _honours_knn_overrides = True
    _honours_range_overrides = True
    #: Tombstones are dropped inside the probe itself: the flat traversal
    #: masks dead leaf members, the recursive paths exclude the dead set —
    #: so dead points never consume candidate budget or reach a result.
    _knn_filters_tombstones = True

    def __init__(
        self,
        *,
        params: PMLSHParams | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        self.params = params or PMLSHParams()
        self._rng = as_generator(seed)
        self.projection: Optional[GaussianProjection | SampledProjection] = None
        self.projected: Optional[np.ndarray] = None
        self._tree: Optional[PMTree] = None
        #: pivots to rebuild the pointer tree from lazily — set by
        #: :meth:`load`, which restores the flat snapshot directly and
        #: only materialises the pointer tree if something needs it.
        self._lazy_pivots: Optional[np.ndarray] = None
        #: lazily flattened snapshot of ``tree`` (see :attr:`flat_tree`).
        self._flat: Optional[FlatPMTree] = None
        self.solved: SolvedParameters = self._solve_for(self.params.c)
        #: (t, β) re-solved per approximation ratio — per-query ``c``
        #: overrides hit this cache instead of scipy's χ² solver.
        self._solved_cache: Dict[float, SolvedParameters] = {
            self.params.c: self.solved
        }
        self.distance_distribution: Optional[DistanceDistribution] = None
        self.metrics  # bind the registry so the probe counters exist

    def _on_metrics_changed(self) -> None:
        """(Re)bind the probe counters.  Deliberately *unlabeled*: every
        PM-LSH instance in the process (each engine shard included)
        publishes into the same series, so ``tree_nodes_visited`` and
        ``candidates_verified`` read as whole-process probe work."""
        registry = self.metrics
        self._c_tree_nodes = registry.counter(
            "tree_nodes_visited", "PM-tree nodes visited by flat traversals"
        )
        self._c_verified = registry.counter(
            "candidates_verified", "Candidates verified by original-space distance"
        )
        self._c_rounds = registry.counter(
            "probe_rounds", "Radius-enlarging probe rounds executed"
        )

    def _solve_for(self, c: float) -> SolvedParameters:
        solved = solve_parameters(
            m=self.params.m,
            c=c,
            alpha1=self.params.alpha1,
            beta_multiplier=self.params.beta_multiplier,
        )
        if self.params.beta_override is not None:
            solved = replace(solved, beta=self.params.beta_override)
        return solved

    def solved_for(self, c: float | None) -> SolvedParameters:
        """The (t, β) bundle for approximation ratio *c* (cached; ``None``
        means the index's own ``params.c``)."""
        if c is None:
            return self.solved
        c = float(c)
        if c not in self._solved_cache:
            self._solved_cache[c] = self._solve_for(c)
        return self._solved_cache[c]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_projection(self):
        """The hash bank ``params.hash_family`` selects: the paper's dense
        Gaussian GEMM, or the FastLSH-style sampled structured family
        (each function reads ~√d coordinates — cheaper ``fit``/``add``
        projections and cheaper serving-cache keys, same χ²(m)
        calibration)."""
        params = self.params
        if params.hash_family == "sampled":
            return SampledProjection(
                self.d,
                params.m,
                sample_size=params.hash_sample_size,
                seed=self._rng,
            )
        return GaussianProjection(self.d, params.m, seed=self._rng)

    def _fit(self) -> None:
        """Project the dataset, build the PM-tree, estimate F(x)."""
        params = self.params
        self.projection = self._make_projection()
        self.projected = self.projection.project(self.data)
        self._tree = PMTree.build(
            self.projected,
            num_pivots=params.num_pivots,
            capacity=params.node_capacity,
            method=params.build_method,
            pivot_method=params.pivot_method,
            split_promotion=params.split_promotion,
            split_partition=params.split_partition,
            use_rings=params.use_rings,
            use_parent_filter=params.use_parent_filter,
            seed=self._rng,
        )
        self._lazy_pivots = None
        self._flat = None
        # F(x) over ORIGINAL distances drives r_min selection (§4.5); the HV
        # statistic being ≈ 1 is what licenses reusing it for every query.
        self.distance_distribution = sample_distance_distribution(
            self.data,
            num_pairs=min(params.radius_sample_pairs, max(1000, 10 * self.n)),
            seed=self._rng,
        )

    @property
    def tree(self) -> Optional[PMTree]:
        """The pointer PM-tree — the build/insert/validate structure.

        After :meth:`fit` it is the tree that was just built.  After
        :meth:`load` it starts out *unmaterialised* (the archive restores
        the flat snapshot directly, so queries never need it) and is
        rebuilt deterministically from the stored pivots on first access
        — :meth:`add`, the recursive traversal, and
        :meth:`ball_cover_query` all trigger that rebuild transparently.
        """
        if self._tree is None and self._lazy_pivots is not None:
            self._tree = self._build_tree(self._lazy_pivots)
        return self._tree

    @tree.setter
    def tree(self, value: Optional[PMTree]) -> None:
        self._tree = value

    def _build_tree(self, pivots: np.ndarray) -> PMTree:
        """Deterministic pointer-tree (re)build over ``self.projected``
        with fixed *pivots* — the restore path of :meth:`load`."""
        params = self.params
        return PMTree.build(
            self.projected,
            num_pivots=pivots.shape[0],
            capacity=params.node_capacity,
            method=params.build_method,
            pivot_method=params.pivot_method,
            split_promotion=params.split_promotion,
            split_partition=params.split_partition,
            use_rings=params.use_rings,
            use_parent_filter=params.use_parent_filter,
            seed=0,
            pivots=pivots,
        )

    @property
    def flat_tree(self) -> FlatPMTree:
        """The flattened PM-tree snapshot the batched paths traverse.

        Taken lazily from the pointer tree and re-taken after any
        structural mutation (:meth:`add` invalidates it) — or restored
        directly from a saved archive by :meth:`load` — so every build
        path serves from arrays that mirror the current tree exactly.
        """
        self._require_built()
        if self._flat is None:
            self._flat = self.tree.flatten()
            if self._tombstones:
                self._flat.set_tombstones(self._tombstones.ids())
        return self._flat

    def _on_delete(self, ids: np.ndarray) -> None:
        """Push the grown dead set into the flat snapshot (if one exists;
        a later lazy flatten picks the set up in :attr:`flat_tree`)."""
        if self._flat is not None:
            self._flat.set_tombstones(self._tombstones.ids())

    def _dead_set(self) -> Optional[set]:
        """The tombstoned ids as a Python set for the recursive tree's
        ``exclude`` parameter, or None when nothing is deleted."""
        return self._tombstones.as_set() if self._tombstones else None

    def candidate_budget(self, k: int, solved: SolvedParameters | None = None) -> int:
        """Algorithm 2's verification cap ⌈βn⌉ + k at the *current live* n.

        Evaluated per query so the budget tracks dataset growth through
        :meth:`add` and shrinkage through :meth:`delete`; a *solved*
        bundle from a per-query ``c`` override supplies its own β.
        """
        beta = (solved or self.solved).beta
        return int(np.ceil(beta * self.nlive)) + k

    # ------------------------------------------------------------------
    # Algorithm 1: the (r, c)-BC query
    # ------------------------------------------------------------------

    def ball_cover_query(
        self, q: np.ndarray, r: float, exclude: Optional[set] = None
    ) -> Optional[Tuple[int, float]]:
        """Algorithm 1: answer an (r, c)-ball-cover query.

        Returns ``(point_id, distance)`` for some point inside B(q, c·r), or
        ``None`` — correct with constant probability by Lemma 5.
        ``exclude`` skips the given point ids, e.g. the query's own row when
        probing for a near-duplicate of an indexed item.
        """
        self._require_built()
        q = self._validate_query(q, k=1)
        if r <= 0:
            raise ValueError(f"radius r must be positive, got {r}")
        dead = self._dead_set()
        if dead:
            exclude = dead if exclude is None else set(exclude) | dead
        projected_query = self.projection.project(q)
        budget = self.candidate_budget(1)
        candidates = self.tree.range_query(
            projected_query, self.solved.t * r, limit=budget, exclude=exclude
        )
        if not candidates:
            return None
        ids = np.asarray([pid for pid, _ in candidates], dtype=np.int64)
        true_dists = point_to_points_distances(q, self.data[ids])
        best = int(np.argmin(true_dists))
        best_id, best_dist = int(ids[best]), float(true_dists[best])
        if len(candidates) >= budget:
            # ≥ βn + 1 collisions: E2 guarantees one of them lies in B(q, cr).
            return best_id, best_dist
        if best_dist <= self.params.c * r:
            return best_id, best_dist
        return None

    # ------------------------------------------------------------------
    # the (r, c)-ball range query
    # ------------------------------------------------------------------

    def _run_range(self, queries: np.ndarray, spec: Range) -> RangeResult:
        """(r, c)-ball range search through one projected range probe.

        Algorithm 1's machinery, generalised from "one witness" to "the
        whole ball" — with the c slack spent on the *probe* rather than
        on a constant-probability guarantee: candidates are the points
        whose projected distance is within t·c·r (the PM-tree range
        query, capped at a budget of ⌈βn⌉ collisions plus the expected
        ball population n·F(c·r)); each is verified in the original space
        and reported iff its true distance is at most c·r.  A point at
        true distance s ≤ r has projected distance s·√(χ²_m), so it
        collides with probability CDF_{χ²(m)}(t²c²/ (s/r)²) ≥
        CDF_{χ²(m)}(t²c²) — e.g. ≈ 0.998 at the paper's defaults
        (m = 15, α1 = 1/e, c = 1.5), which is where the high recall on
        the exact ball B(q, r) comes from.  Nothing outside B(q, c·r) is
        ever reported, and the candidate budget keeps the probe sublinear
        whenever the query ball holds a vanishing fraction of the data.
        """
        c = spec.c if spec.c is not None else self.params.c
        solved = self.solved_for(spec.c)
        projected = np.atleast_2d(self.projection.project(queries))
        default_budget = range_candidate_budget(
            self.distance_distribution, self.n, solved.beta, c * spec.r
        )
        budget = spec.budget if spec.budget is not None else default_budget
        probe_radius = solved.t * c * spec.r
        if self.params.traversal == "recursive":
            dead = self._dead_set()
            results: List[QueryResult] = []
            for q, projected_query in zip(queries, projected):
                candidates = self.tree.range_query(
                    projected_query, probe_radius, limit=budget, exclude=dead
                )
                stats = {"candidates": float(len(candidates)), "budget": float(budget)}
                if not candidates:
                    results.append(
                        QueryResult(
                            ids=np.empty(0, dtype=np.int64),
                            distances=np.empty(0, dtype=np.float64),
                            stats={**stats, "returned": 0.0},
                        )
                    )
                    continue
                ids = np.asarray([pid for pid, _ in candidates], dtype=np.int64)
                true_dists = point_to_points_distances(q, self.data[ids])
                inside = true_dists <= c * spec.r
                ids, true_dists = ids[inside], true_dists[inside]
                order = np.lexsort((ids, true_dists))
                stats["returned"] = float(ids.size)
                results.append(
                    QueryResult(ids=ids[order], distances=true_dists[order], stats=stats)
                )
            return RangeResult.from_queries(results)
        return self._run_range_flat(queries, projected, spec, c, budget, probe_radius)

    def _run_range_flat(
        self,
        queries: np.ndarray,
        projected: np.ndarray,
        spec: Range,
        c: float,
        budget: int,
        probe_radius: float,
    ) -> RangeResult:
        """Batched (r, c)-ball range search: one flat traversal at t·c·r
        for the whole batch, one gathered verification kernel, then a
        per-query ``(true distance, id)`` re-sort of the survivors."""
        flat = self.flat_tree
        tree_work = _TreeWork(flat.height)
        num_queries = queries.shape[0]
        query_blocks: List[np.ndarray] = []
        id_blocks: List[np.ndarray] = []
        dist_blocks: List[np.ndarray] = []
        fetched = np.zeros(num_queries, dtype=np.int64)
        block = self._flat_query_block()
        for start in range(0, num_queries, block):
            stop = min(start + block, num_queries)
            lims, ids, _, stats = flat.batch_range(
                projected[start:stop],
                probe_radius,
                limits=np.full(stop - start, budget, dtype=np.int64),
                sort=False,
            )
            tree_work.add(stats)
            counts = np.diff(lims)
            fetched[start:stop] = counts
            if ids.size == 0:
                continue
            rep = start + np.repeat(np.arange(stop - start, dtype=np.int64), counts)
            true_dists = self._verify_distances(ids, rep, queries)
            inside = true_dists <= c * spec.r
            query_blocks.append(rep[inside])
            id_blocks.append(ids[inside])
            dist_blocks.append(true_dists[inside])
        query_index = (
            np.concatenate(query_blocks) if query_blocks else np.empty(0, dtype=np.int64)
        )
        kept_ids = np.concatenate(id_blocks) if id_blocks else np.empty(0, dtype=np.int64)
        kept_dists = (
            np.concatenate(dist_blocks) if dist_blocks else np.empty(0, dtype=np.float64)
        )
        order = np.lexsort((kept_ids, kept_dists, query_index))
        query_index = query_index[order]
        returned = np.bincount(query_index, minlength=num_queries)
        lims_out = np.concatenate([[0], np.cumsum(returned)]).astype(np.int64)
        per_query = tuple(
            {
                "candidates": float(fetched[q]),
                "budget": float(budget),
                "returned": float(returned[q]),
            }
            for q in range(num_queries)
        )
        result = RangeResult(
            lims=lims_out,
            ids=kept_ids[order],
            distances=kept_dists[order],
            stats=aggregate_stats(per_query),
            per_query_stats=per_query,
        )
        tree_work.into_stats(result.stats, num_queries)
        self._c_tree_nodes.inc(tree_work.nodes)
        return result

    # ------------------------------------------------------------------
    # Algorithm 2: the (c, k)-ANN query
    # ------------------------------------------------------------------

    def _initial_radius(self, k: int, solved: SolvedParameters | None = None) -> float:
        return select_initial_radius(
            self.distance_distribution,
            n=self.nlive,
            beta=(solved or self.solved).beta,
            k=k,
            shrink=self.params.radius_shrink,
        )

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Algorithm 2: the (c, k)-ANN query via radius enlargement."""
        self._require_built()
        q = self._validate_query(q, k)
        projected_query = self.projection.project(q)
        return self._probe(
            q,
            k,
            budget=self.candidate_budget(k),
            initial_radius=self._initial_radius(k),
            fetch=self._tree_fetch(projected_query, self._dead_set()),
        )

    def _probe(
        self,
        q: np.ndarray,
        k: int,
        budget: int,
        initial_radius: float,
        fetch,
        scratch: np.ndarray | None = None,
        c: float | None = None,
        t: float | None = None,
    ) -> QueryResult:
        """The radius-enlarging probe loop shared by query() and search().

        ``fetch(radius, limit, seen)`` supplies the next batch of candidate
        ids — the closest unseen points whose *projected* distance is within
        ``radius``, capped at ``limit`` and sorted ascending.  The
        single-query path walks the PM-tree; the batch path reads a sorted
        projected-distance row.  Both produce the same candidate set (it is
        defined by projected distances alone, not by tree shape), so the
        two paths answer identically.  ``c`` and ``t`` default to the
        index's own tunables; per-query overrides pass theirs in.
        """
        params = self.params
        c = params.c if c is None else c
        t = self.solved.t if t is None else t
        r = initial_radius
        seen: Set[int] = set()
        collected: List[Tuple[int, float]] = []  # (id, true distance)
        rounds = 0
        for _ in range(params.max_iterations):
            rounds += 1
            # Termination test 1 (line 4): k verified points within c·r.
            if self._count_within(collected, c * r) >= k:
                break
            ids = fetch(t * r, max(0, budget - len(seen)), seen)
            if ids.size:
                true_dists = self._true_distances(q, ids, scratch)
                for pid, dist in zip(ids, true_dists):
                    seen.add(int(pid))
                    collected.append((int(pid), float(dist)))
            # Termination test 2 (line 9): candidate budget exhausted.
            if len(seen) >= budget:
                break
            r *= c
        collected.sort(key=lambda pair: (pair[1], pair[0]))
        top = collected[:k]
        stats = {
            "candidates": float(len(seen)),
            "rounds": float(rounds),
            "final_radius": float(r),
        }
        return QueryResult(
            ids=np.asarray([pid for pid, _ in top], dtype=np.int64),
            distances=np.asarray([dist for _, dist in top], dtype=np.float64),
            stats=stats,
        )

    def _true_distances(
        self, q: np.ndarray, ids: np.ndarray, scratch: np.ndarray | None = None
    ) -> np.ndarray:
        """Original-space distances q -> data[ids], through *scratch* when a
        large enough verification buffer is supplied (the batch hot path
        reuses one buffer across all queries instead of allocating a fresh
        difference matrix per round)."""
        rows = self.data[ids]
        self._c_verified.inc(ids.size)
        if scratch is not None and rows.shape[0] <= scratch.shape[0]:
            buffer = scratch[: rows.shape[0]]
            np.subtract(rows, q, out=buffer)
            return np.sqrt(np.einsum("ij,ij->i", buffer, buffer))
        return point_to_points_distances(q, rows)

    @staticmethod
    def _count_within(collected: List[Tuple[int, float]], threshold: float) -> int:
        return sum(1 for _, dist in collected if dist <= threshold)

    # ------------------------------------------------------------------
    # batch search (the vectorised hot path)
    # ------------------------------------------------------------------

    #: Hard cap on queries per flat-traversal block (a block shares every
    #: frontier and candidate buffer across its queries).
    _BATCH_QUERY_BLOCK = 1024
    #: Cap on (block queries × n) member-level entries one level-synchronous
    #: sweep may materialise before the budget cut — the worst case is every
    #: leaf member surviving the filters, so this bounds the sweep's
    #: temporaries to ~64 MB of int64 just like the old blocked-GEMM path.
    _BATCH_SWEEP_ENTRIES = 8_000_000

    def _flat_query_block(self) -> int:
        """Queries per sweep: the block cap, shrunk so block × n stays
        within the sweep-entry bound on large datasets."""
        by_memory = self._BATCH_SWEEP_ENTRIES // max(1, self.n)
        return max(1, min(self._BATCH_QUERY_BLOCK, by_memory))

    def _verify_distances(
        self, ids: np.ndarray, rep: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Original-space distances ``data[ids] → queries[rep]``.

        The gather runs in row chunks capped by ``_BATCH_SWEEP_ENTRIES``
        *elements* (rows × d), so verification memory stays ~64 MB no
        matter how large the candidate round or the dimensionality —
        the bounded-scratch guarantee of the old per-query path.  The
        per-row kernel keeps the floats identical across chunkings.
        """
        out = np.empty(ids.size, dtype=np.float64)
        step = max(1, self._BATCH_SWEEP_ENTRIES // max(1, self.d))
        for start in range(0, ids.size, step):
            rows = self.data[ids[start : start + step]]
            np.subtract(rows, queries[rep[start : start + step]], out=rows)
            out[start : start + step] = np.sqrt(np.einsum("ij,ij->i", rows, rows))
        self._c_verified.inc(ids.size)
        return out

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Batched Algorithm 2 through the flat PM-tree traversal.

        Per-batch (not per-query) work replaces the per-query tree walks:

        * all Q queries are projected in **one GEMM** against the direction
          matrix instead of Q separate vector products;
        * every radius-enlarging round runs **one** level-synchronous
          traversal of the flattened tree for all still-active queries —
          each round fetches the fresh annulus (the closest unseen points
          inside the enlarged projected ball), which is the *same*
          candidate set the pointer tree's ``range_query`` produces,
          because that set is defined by projected distances alone;
        * the initial radius r_min — a quantile of the shared F(x) sample,
          identical for every query at fixed (n, β, k) — is solved once,
          and the whole radius ladder is laid out up front;
        * all of a round's fresh candidates are verified in the original
          space with one gathered kernel call, through buffers shared
          across the queries of the batch.

        Results are exactly those of a per-query :meth:`query` loop.  The
        spec's runtime knobs are honoured here: ``budget`` replaces the
        ⌈βn⌉ + k cap, and ``c`` swaps in a re-solved (t, β) pair.  With
        ``PMLSHParams(traversal="recursive")`` the batch becomes a
        per-query pointer-tree loop instead.
        """
        k = spec.k
        c = spec.c if spec.c is not None else self.params.c
        solved = self.solved_for(spec.c)
        budget = (
            spec.budget if spec.budget is not None else self.candidate_budget(k, solved)
        )
        budget = max(budget, k)  # can't answer k neighbours on fewer candidates
        initial_radius = self._initial_radius(k, solved)
        projected = np.atleast_2d(self.projection.project(queries))  # one GEMM
        if self.params.traversal == "recursive":
            dead = self._dead_set()
            scratch = np.empty((min(budget, self.n), self.d), dtype=np.float64)
            results = [
                self._probe(
                    q,
                    k,
                    budget,
                    initial_radius,
                    self._tree_fetch(projected_query, dead),
                    scratch,
                    c=c,
                    t=solved.t,
                )
                for q, projected_query in zip(queries, projected)
            ]
            return BatchResult.from_queries(results, k=k)

        flat = self.flat_tree
        results = []
        tree_work = _TreeWork(flat.height)
        block = self._flat_query_block()
        for start in range(0, queries.shape[0], block):
            results.extend(
                self._flat_probe_block(
                    queries[start : start + block],
                    projected[start : start + block],
                    k,
                    budget,
                    initial_radius,
                    c,
                    solved.t,
                    flat,
                    tree_work,
                )
            )
        batch = BatchResult.from_queries(results, k=k)
        tree_work.into_stats(batch.stats, queries.shape[0])
        self._c_tree_nodes.inc(tree_work.nodes)
        return batch

    def _tree_fetch(self, projected_query: np.ndarray, dead: Optional[set] = None):
        """Candidate source for the per-query pointer-tree probe: the
        closest unseen points inside the projected ball, ascending.
        *dead* (the tombstone set) is excluded alongside the seen set."""

        def fetch(radius: float, limit: int, seen: Set[int]) -> np.ndarray:
            exclude = seen if not dead else seen | dead
            matches = self.tree.range_query(
                projected_query, radius, limit=limit, exclude=exclude
            )
            return np.asarray([pid for pid, _ in matches], dtype=np.int64)

        return fetch

    def _flat_probe_block(
        self,
        queries: np.ndarray,
        projected: np.ndarray,
        k: int,
        budget: int,
        initial_radius: float,
        c: float,
        t: float,
        flat: FlatPMTree,
        tree_work: "_TreeWork",
    ) -> List[QueryResult]:
        """One query block through the batched radius-enlarging loop.

        Mirrors :meth:`_probe` exactly — same round structure, same
        termination tests, same floats — but advances *every* active query
        of the block per round with one flat traversal and one gathered
        verification kernel.
        """
        num_queries = queries.shape[0]
        trace = current_trace()
        schedule = radius_schedule(initial_radius, c, self.params.max_iterations)
        seen = np.zeros(num_queries, dtype=np.int64)
        rounds = np.zeros(num_queries, dtype=np.int64)
        final_radius = np.full(num_queries, schedule[-1])
        active = np.ones(num_queries, dtype=bool)
        collected_ids: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        collected_dists: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        previous_fetch: Optional[float] = None
        for round_index in range(self.params.max_iterations):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            r = float(schedule[round_index])
            rounds[idx] += 1
            self._c_rounds.inc()
            # Termination test 1 (line 4): k verified points within c·r.
            threshold = c * r
            for q in idx:
                within = sum(
                    int((chunk <= threshold).sum()) for chunk in collected_dists[q]
                )
                if within >= k:
                    final_radius[q] = r
                    active[q] = False
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            limits = np.maximum(budget - seen[idx], 0)
            traversal_span = (
                trace.span(
                    "tree_traversal",
                    round=round_index,
                    active_queries=int(idx.size),
                    levels=flat.height,
                )
                if trace is not None
                else nullcontext()
            )
            with traversal_span:
                lims, ids, _, stats = flat.batch_range(
                    projected[idx], t * r, limits=limits, lower=previous_fetch, sort=False
                )
            tree_work.add(stats)
            counts = np.diff(lims)
            if ids.size:
                # One gathered verification kernel for the whole round —
                # float-identical to the per-query scratch-buffer kernel.
                # Candidates are re-ordered by id within each query slice
                # first: the big (candidates × d) gather then walks the
                # dataset near-sequentially instead of at random.
                rep = np.repeat(idx, counts)
                id_order = np.lexsort((ids, rep))
                rep, ids = rep[id_order], ids[id_order]
                verify_span = (
                    trace.span("verification", round=round_index, candidates=int(ids.size))
                    if trace is not None
                    else nullcontext()
                )
                with verify_span:
                    true_dists = self._verify_distances(ids, rep, queries)
                for position, q in enumerate(idx):
                    lo, hi = int(lims[position]), int(lims[position + 1])
                    if hi > lo:
                        collected_ids[q].append(ids[lo:hi])
                        collected_dists[q].append(true_dists[lo:hi])
                seen[idx] += counts
            # Termination test 2 (line 9): candidate budget exhausted.
            exhausted = idx[seen[idx] >= budget]
            final_radius[exhausted] = r
            active[exhausted] = False
            previous_fetch = t * r
        results: List[QueryResult] = []
        for q in range(num_queries):
            if collected_ids[q]:
                all_ids = np.concatenate(collected_ids[q])
                all_dists = np.concatenate(collected_dists[q])
                order = np.lexsort((all_ids, all_dists))[:k]
                top_ids, top_dists = all_ids[order], all_dists[order]
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float64)
            results.append(
                QueryResult(
                    ids=top_ids,
                    distances=top_dists,
                    stats={
                        "candidates": float(seen[q]),
                        "rounds": float(rounds[q]),
                        "final_radius": float(final_radius[q]),
                    },
                )
            )
        return results

    # ------------------------------------------------------------------
    # closest-pair search (projected-space self-join)
    # ------------------------------------------------------------------

    def _closest_pairs(self, m: int, budget: int | None = None) -> ClosestPairResult:
        """Approximate m closest pairs via a projected-space self-join.

        Lemma 2 makes the projected distance an unbiased estimator of the
        original distance, so genuinely close pairs are close in R^m with
        high probability.  The join:

        1. computes each point's nearest projected neighbours — by default
           a batched exact kNN *through the flat PM-tree* (radius-doubling
           ``batch_knn`` over the same traversal the query paths use;
           ``traversal="recursive"`` falls back to the blocked
           brute-force GEMM);
        2. ranks the deduplicated candidate pairs by projected distance
           and keeps the ``budget`` best (default ⌈βn⌉ + 16·m — original
           space verification is O(d) per pair, so the floor is generous);
        3. verifies the survivors in the original space and returns the m
           best by ``(distance, i, j)``.
        """
        # The self-join runs over the live points only: tombstoned rows
        # neither seed neighbourhoods nor appear as neighbours (the masked
        # flat traversal skips them; the recursive path joins the gathered
        # live submatrix and maps dense ids back through the live array).
        live = self.live_ids() if self._tombstones else None
        n_live = self.nlive
        budget = (
            int(budget)
            if budget is not None
            else int(np.ceil(self.solved.beta * n_live)) + 16 * m
        )
        # Neighbours per point so the candidate pool comfortably covers the
        # budget cut; every point contributes a few edges, and the n - 1
        # cap keeps the projected kNN well-defined on tiny datasets.
        per_point = min(n_live - 1, max(4, int(np.ceil(2.0 * budget / n_live))))
        source = self.projected if live is None else self.projected[live]
        tree_stats: Dict[str, float] = {}
        if self.params.traversal == "recursive":
            neighbor_ids, neighbor_dists = chunked_knn(source, source, per_point + 1)
            if live is not None:
                neighbor_ids = live[neighbor_ids]
        else:
            flat = self.flat_tree
            nodes = dist_comps = 0
            id_blocks: List[np.ndarray] = []
            dist_blocks: List[np.ndarray] = []
            block = self._flat_query_block()
            for start in range(0, n_live, block):
                stop = min(start + block, n_live)
                flat.reset_counters()
                block_ids, block_dists = flat.batch_knn(
                    source[start:stop], per_point + 1
                )
                id_blocks.append(block_ids)
                dist_blocks.append(block_dists)
                nodes += flat.node_accesses
                dist_comps += flat.distance_computations
            neighbor_ids = np.concatenate(id_blocks)
            neighbor_dists = np.concatenate(dist_blocks)
            tree_stats["tree_nodes"] = nodes / n_live
            tree_stats["tree_dist_comps"] = dist_comps / n_live
            self._c_tree_nodes.inc(nodes)
        row_src = (
            np.arange(n_live, dtype=np.int64) if live is None else live
        )
        rows = np.repeat(row_src, per_point + 1)
        cols = neighbor_ids.ravel()
        proj_dists = neighbor_dists.ravel()
        keep = rows != cols  # drop the self match
        rows, cols, proj_dists = rows[keep], cols[keep], proj_dists[keep]
        pairs = np.column_stack([np.minimum(rows, cols), np.maximum(rows, cols)])
        # Rank by the projected estimate BEFORE deduplication so the kept
        # occurrence of each pair is also its best-ranked one.
        order = np.lexsort((pairs[:, 1], pairs[:, 0], proj_dists))
        pairs, proj_dists = pairs[order], proj_dists[order]
        pairs, proj_dists = dedupe_pairs(pairs, proj_dists)
        candidate_count = pairs.shape[0]
        # Both the lexsort above and dedupe_pairs preserve ascending
        # projected distance, so the budget cut is a plain prefix.
        pairs = pairs[:budget]
        diff = self.data[pairs[:, 0]] - self.data[pairs[:, 1]]
        true_dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        best_pairs, best_dists = sort_pairs(pairs, true_dists, m)
        return ClosestPairResult(
            pairs=best_pairs,
            distances=best_dists,
            stats={
                "candidate_pairs": float(candidate_count),
                "verified": float(pairs.shape[0]),
                "budget": float(budget),
                "neighbors_per_point": float(per_point),
                **tree_stats,
            },
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _projection_arrays(self) -> Dict[str, np.ndarray]:
        """The arrays that reconstruct ``self.projection`` exactly.

        Dense banks store their direction matrix; sampled banks store
        ``sample_idx``/``weights`` (never a densified equivalent — exact
        arrays are what keep reloaded projections bit-identical)."""
        if isinstance(self.projection, SampledProjection):
            return {
                "hash_sample_idx": self.projection.sample_idx,
                "hash_weights": self.projection.weights,
            }
        return {"directions": self.projection.directions}

    @staticmethod
    def _restore_projection(arrays) -> GaussianProjection | SampledProjection:
        """Invert :meth:`_projection_arrays` from an archive/shm mapping
        (*arrays* needs ``in`` and ``[]`` plus a ``data`` entry for d)."""
        if "hash_sample_idx" in arrays:
            return SampledProjection.from_arrays(
                arrays["hash_sample_idx"],
                arrays["hash_weights"],
                dim=np.asarray(arrays["data"]).shape[1],
            )
        return GaussianProjection.from_directions(arrays["directions"])

    def save(self, path: str) -> None:
        """Persist the index to a ``.npz`` archive (no pickle involved).

        Stored: the registry name (so :func:`repro.load_index` can
        dispatch), the dataset, the projection bank (dense directions, or
        the sampled family's index/weight arrays), the PM-tree
        pivots, the F(x) sample behind r_min selection, the parameter
        bundle as JSON — and the **flat-tree arrays**
        (:meth:`FlatPMTree.to_arrays`), so :meth:`load` restores the
        batched hot path directly from the archive: no pointer-tree
        rebuild, no re-flatten, and bit-identical traversal (the stored
        entry fields and pivot distances are the ones queries prune
        against).  The pointer tree is only rebuilt — deterministically,
        from the stored pivots — if something later needs it (``add``,
        the recursive traversal).
        """
        self._require_built()
        import json
        from dataclasses import asdict

        from repro.persistence import lifecycle_arrays

        flat = self.flat_tree
        params_json = json.dumps(asdict(self.params))
        np.savez_compressed(
            path,
            registry_name=np.asarray(self.registry_name),
            data=self.data,
            **self._projection_arrays(),
            pivots=flat.pivots,
            distance_samples=self.distance_distribution.samples,
            params_json=np.frombuffer(params_json.encode("utf-8"), dtype=np.uint8),
            **lifecycle_arrays(self),
            **flat.to_arrays(),
        )

    @classmethod
    def load(cls, path: str) -> "PMLSH":
        """Restore an index persisted with :meth:`save`.

        Archives written since the flat arrays were added restore the
        :class:`FlatPMTree` snapshot directly — queries serve with no
        tree rebuild and no re-flatten; the pointer tree materialises
        lazily from the stored pivots only when needed.  Older archives
        (no ``flat_*`` keys) fall back to the eager deterministic
        rebuild.
        """
        import json

        from repro.persistence import apply_lifecycle_state, read_lifecycle_state

        with np.load(path) as archive:
            data = archive["data"]
            projection_arrays = {
                key: archive[key]
                for key in ("directions", "hash_sample_idx", "hash_weights")
                if key in archive.files
            }
            pivots = archive["pivots"]
            samples = archive["distance_samples"]
            params_json = bytes(archive["params_json"]).decode("utf-8")
            state = read_lifecycle_state(archive)
            flat_arrays = (
                {key: archive[key] for key in archive.files if key.startswith("flat_")}
                if "flat_is_leaf" in archive.files
                else None
            )
        params = PMLSHParams(**json.loads(params_json))
        index = cls(params=params, seed=0)
        index._set_data(data)
        index.projection = cls._restore_projection({**projection_arrays, "data": data})
        index.projected = index.projection.project(index.data)
        index._lazy_pivots = np.asarray(pivots, dtype=np.float64)
        if flat_arrays is not None:
            index._flat = FlatPMTree.from_arrays(
                flat_arrays,
                points=index.projected,
                pivots=index._lazy_pivots,
                use_rings=params.use_rings,
                use_parent_filter=params.use_parent_filter,
            )
        else:  # legacy archive: rebuild the pointer tree eagerly
            index._tree = index._build_tree(index._lazy_pivots)
        index.distance_distribution = DistanceDistribution(samples)
        index._built = True
        index._fitted_n = index.ntotal  # legacy default; the stored value wins
        apply_lifecycle_state(index, state)
        return index

    def to_shm(self):
        """Export ``(arrays, state)`` for shared-memory serving replicas.

        Everything :meth:`save` persists rides along — plus ``projected``
        itself, which ``load`` re-derives with a GEMM: a worker process
        attaching the snapshot does **zero** numerical work.  The flat
        arrays are the exact matrices queries prune against, so a replica
        restored by :meth:`from_shm` traverses bit-identically to this
        index.
        """
        self._require_built()
        import json
        from dataclasses import asdict

        flat = self.flat_tree
        arrays = {
            "data": self.data,
            "projected": self.projected,
            **self._projection_arrays(),
            "pivots": flat.pivots,
            "distance_samples": self.distance_distribution.samples,
            "tombstone_ids": self._tombstones.ids(),
            **flat.to_arrays(),
        }
        state = {
            "params_json": json.dumps(asdict(self.params)),
            "epoch": self.epoch,
            "fitted_n": self.fitted_n,
        }
        return arrays, state

    @classmethod
    def from_shm(cls, arrays, state) -> "PMLSH":
        """Rebuild a serving replica over (read-only) :meth:`to_shm` views.

        The :meth:`load` restore path minus every copy: ``data``,
        ``projected``, the flat-tree arrays and the F(x) sample stay
        zero-copy views into the shared segment (all already contiguous
        float64, so the dtype coercions below are no-ops); only the
        per-replica leaf re-packs (``leaf_points``) materialise privately.
        The pointer tree stays lazy and is never needed read-only.
        """
        import json

        from repro.persistence import apply_lifecycle_state

        params = PMLSHParams(**json.loads(state["params_json"]))
        index = cls(params=params, seed=0)
        index._set_data(arrays["data"])
        index.projection = cls._restore_projection(arrays)
        index.projected = np.asarray(arrays["projected"], dtype=np.float64)
        index._lazy_pivots = np.asarray(arrays["pivots"], dtype=np.float64)
        index._flat = FlatPMTree.from_arrays(
            arrays,
            points=index.projected,
            pivots=index._lazy_pivots,
            use_rings=params.use_rings,
            use_parent_filter=params.use_parent_filter,
        )
        index.distance_distribution = DistanceDistribution(arrays["distance_samples"])
        index._built = True
        index._fitted_n = index.ntotal  # legacy default; the stored value wins
        apply_lifecycle_state(
            index,
            {
                "epoch": int(state["epoch"]),
                "fitted_n": int(state["fitted_n"]),
                "tombstone_ids": np.asarray(arrays["tombstone_ids"], dtype=np.int64),
            },
        )
        return index

    # ------------------------------------------------------------------
    # dynamic growth
    # ------------------------------------------------------------------

    def _add(self, new_points: np.ndarray) -> np.ndarray:
        """Incremental growth: project with the existing hash functions and
        insert into the PM-tree through the ordinary insertion path; the
        r_min distance distribution keeps serving (it drifts only as much
        as the data distribution does, which HV ≈ 1 keeps small).  Every
        n-dependent quantity (the ⌈βn⌉ + k candidate budget, r_min's target
        mass) is evaluated per query from the grown ``self.n``, so queries
        stay consistent after growth."""
        projected_new = self.projection.project(new_points)
        new_ids = self.tree.append_points(projected_new)
        self._set_data(np.vstack([self.data, new_points]))
        self.projected = self.tree.points
        self._flat = None  # the snapshot is stale; re-flatten lazily
        return new_ids

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def estimated_distance(self, o1: np.ndarray, o2: np.ndarray) -> float:
        """Lemma 2's estimate of ‖o1, o2‖ from their projections."""
        self._require_built()
        p1 = self.projection.project(np.asarray(o1, dtype=np.float64))
        p2 = self.projection.project(np.asarray(o2, dtype=np.float64))
        return float(np.linalg.norm(p1 - p2) / np.sqrt(self.params.m))
