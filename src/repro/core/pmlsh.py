"""PM-LSH: Algorithms 1 and 2 of the paper on top of the PM-tree.

Query pipeline (Fig. 2's three components):

1. **data partitioning** — m Gaussian projections map the dataset into R^m,
   a PM-tree with s global pivots indexes the projected points;
2. **distance estimation** — the Eq. 10 solver turns (m, c, α1) into the
   projected radius multiplier t and candidate budget β;
3. **point probing** — range queries ``range(q', t·r)`` with
   ``r = r_min, c·r_min, c²·r_min, …`` collect candidates, each verified by
   its true distance, until k points within c·r are known or βn + k
   candidates have been inspected.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.core.estimation import SolvedParameters, solve_parameters
from repro.core.hashing import GaussianProjection
from repro.core.params import PMLSHParams
from repro.core.radius import select_initial_radius
from repro.datasets.distance import (
    DistanceDistribution,
    point_to_points_distances,
    sample_distance_distribution,
)
from repro.pmtree.tree import PMTree
from repro.utils.rng import RandomState, as_generator


class PMLSH(ANNIndex):
    """The PM-LSH index (the paper's primary contribution).

    Parameters
    ----------
    data:
        ``(n, d)`` dataset in the original space.
    params:
        Tunables; see :class:`~repro.core.params.PMLSHParams`.
    seed:
        Controls projection directions, pivot selection and the F(x) sample.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import PMLSH
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(1000, 64))
    >>> index = PMLSH(data, seed=0).build()
    >>> result = index.query(data[0] + 0.01, k=5)
    >>> len(result)
    5
    """

    name = "PM-LSH"

    def __init__(
        self,
        data: np.ndarray,
        params: PMLSHParams | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(data)
        self.params = params or PMLSHParams()
        self._rng = as_generator(seed)
        self.projection: Optional[GaussianProjection] = None
        self.projected: Optional[np.ndarray] = None
        self.tree: Optional[PMTree] = None
        self.solved: SolvedParameters = solve_parameters(
            m=self.params.m,
            c=self.params.c,
            alpha1=self.params.alpha1,
            beta_multiplier=self.params.beta_multiplier,
        )
        if self.params.beta_override is not None:
            self.solved = replace(self.solved, beta=self.params.beta_override)
        self.distance_distribution: Optional[DistanceDistribution] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self) -> "PMLSH":
        """Project the dataset, build the PM-tree, estimate F(x)."""
        params = self.params
        self.projection = GaussianProjection(self.d, params.m, seed=self._rng)
        self.projected = self.projection.project(self.data)
        self.tree = PMTree.build(
            self.projected,
            num_pivots=params.num_pivots,
            capacity=params.node_capacity,
            method=params.build_method,
            pivot_method=params.pivot_method,
            split_promotion=params.split_promotion,
            split_partition=params.split_partition,
            use_rings=params.use_rings,
            use_parent_filter=params.use_parent_filter,
            seed=self._rng,
        )
        # F(x) over ORIGINAL distances drives r_min selection (§4.5); the HV
        # statistic being ≈ 1 is what licenses reusing it for every query.
        self.distance_distribution = sample_distance_distribution(
            self.data,
            num_pairs=min(params.radius_sample_pairs, max(1000, 10 * self.n)),
            seed=self._rng,
        )
        self._built = True
        return self

    # ------------------------------------------------------------------
    # Algorithm 1: the (r, c)-BC query
    # ------------------------------------------------------------------

    def ball_cover_query(
        self, q: np.ndarray, r: float, exclude: Optional[set] = None
    ) -> Optional[Tuple[int, float]]:
        """Algorithm 1: answer an (r, c)-ball-cover query.

        Returns ``(point_id, distance)`` for some point inside B(q, c·r), or
        ``None`` — correct with constant probability by Lemma 5.
        ``exclude`` skips the given point ids, e.g. the query's own row when
        probing for a near-duplicate of an indexed item.
        """
        self._require_built()
        q = self._validate_query(q, k=1)
        if r <= 0:
            raise ValueError(f"radius r must be positive, got {r}")
        projected_query = self.projection.project(q)
        budget = int(np.ceil(self.solved.beta * self.n)) + 1
        candidates = self.tree.range_query(
            projected_query, self.solved.t * r, limit=budget, exclude=exclude
        )
        if not candidates:
            return None
        ids = np.asarray([pid for pid, _ in candidates], dtype=np.int64)
        true_dists = point_to_points_distances(q, self.data[ids])
        best = int(np.argmin(true_dists))
        best_id, best_dist = int(ids[best]), float(true_dists[best])
        if len(candidates) >= budget:
            # ≥ βn + 1 collisions: E2 guarantees one of them lies in B(q, cr).
            return best_id, best_dist
        if best_dist <= self.params.c * r:
            return best_id, best_dist
        return None

    # ------------------------------------------------------------------
    # Algorithm 2: the (c, k)-ANN query
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Algorithm 2: the (c, k)-ANN query via radius enlargement."""
        self._require_built()
        q = self._validate_query(q, k)
        params = self.params
        projected_query = self.projection.project(q)
        budget = int(np.ceil(self.solved.beta * self.n)) + k
        r = select_initial_radius(
            self.distance_distribution,
            n=self.n,
            beta=self.solved.beta,
            k=k,
            shrink=params.radius_shrink,
        )
        seen: Set[int] = set()
        collected: List[Tuple[int, float]] = []  # (id, true distance)
        rounds = 0
        for _ in range(params.max_iterations):
            rounds += 1
            # Termination test 1 (line 4): k verified points within c·r.
            if self._count_within(collected, params.c * r) >= k:
                break
            new_candidates = self.tree.range_query(
                projected_query,
                self.solved.t * r,
                limit=max(0, budget - len(seen)),
                exclude=seen,
            )
            if new_candidates:
                ids = np.asarray([pid for pid, _ in new_candidates], dtype=np.int64)
                true_dists = point_to_points_distances(q, self.data[ids])
                for pid, dist in zip(ids, true_dists):
                    seen.add(int(pid))
                    collected.append((int(pid), float(dist)))
            # Termination test 2 (line 9): candidate budget exhausted.
            if len(seen) >= budget:
                break
            r *= params.c
        collected.sort(key=lambda pair: pair[1])
        top = collected[:k]
        stats = {
            "candidates": float(len(seen)),
            "rounds": float(rounds),
            "final_radius": float(r),
        }
        return QueryResult(
            ids=np.asarray([pid for pid, _ in top], dtype=np.int64),
            distances=np.asarray([dist for _, dist in top], dtype=np.float64),
            stats=stats,
        )

    @staticmethod
    def _count_within(collected: List[Tuple[int, float]], threshold: float) -> int:
        return sum(1 for _, dist in collected if dist <= threshold)

    def query_batch(self, queries: np.ndarray, k: int) -> List[QueryResult]:
        """Answer one (c, k)-ANN query per row of *queries*.

        A convenience wrapper over :meth:`query`; results are independent,
        so the list order matches the input rows.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.d:
            raise ValueError(
                f"queries must have dimension {self.d}, got {queries.shape[1]}"
            )
        return [self.query(row, k) for row in queries]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the index to a ``.npz`` archive (no pickle involved).

        Stored: the dataset, the projection directions, the PM-tree pivots,
        the F(x) sample behind r_min selection, and the parameter bundle as
        JSON.  :meth:`load` rebuilds the PM-tree deterministically from
        those; because Algorithm 2's candidate set (the closest βn + k
        points inside the projected ball) does not depend on tree shape,
        the restored index answers every query identically.
        """
        self._require_built()
        import json
        from dataclasses import asdict

        params_json = json.dumps(asdict(self.params))
        np.savez_compressed(
            path,
            data=self.data,
            directions=self.projection.directions,
            pivots=self.tree.pivots,
            distance_samples=self.distance_distribution.samples,
            params_json=np.frombuffer(params_json.encode("utf-8"), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path: str) -> "PMLSH":
        """Restore an index persisted with :meth:`save`."""
        import json

        with np.load(path) as archive:
            data = archive["data"]
            directions = archive["directions"]
            pivots = archive["pivots"]
            samples = archive["distance_samples"]
            params_json = bytes(archive["params_json"]).decode("utf-8")
        params = PMLSHParams(**json.loads(params_json))
        index = cls(data, params=params, seed=0)
        index.projection = GaussianProjection.from_directions(directions)
        index.projected = index.projection.project(index.data)
        index.tree = PMTree.build(
            index.projected,
            num_pivots=pivots.shape[0],
            capacity=params.node_capacity,
            method=params.build_method,
            split_promotion=params.split_promotion,
            split_partition=params.split_partition,
            use_rings=params.use_rings,
            use_parent_filter=params.use_parent_filter,
            seed=0,
            pivots=pivots,
        )
        index.distance_distribution = DistanceDistribution(samples)
        index._built = True
        return index

    def extend(self, new_points: np.ndarray) -> np.ndarray:
        """Add *new_points* to the index dynamically.

        New rows are projected with the existing hash functions and
        inserted into the PM-tree through the ordinary insertion path; the
        r_min distance distribution keeps serving (it drifts only as much
        as the data distribution does, which HV ≈ 1 keeps small).  Returns
        the ids assigned to the new rows — subsequent queries can return
        them immediately.
        """
        self._require_built()
        new_points = np.atleast_2d(np.asarray(new_points, dtype=np.float64))
        if new_points.shape[1] != self.d:
            raise ValueError(
                f"new points have dimension {new_points.shape[1]}, expected {self.d}"
            )
        projected_new = self.projection.project(new_points)
        new_ids = self.tree.append_points(projected_new)
        self.data = np.ascontiguousarray(np.vstack([self.data, new_points]))
        self.projected = self.tree.points
        return new_ids

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def estimated_distance(self, o1: np.ndarray, o2: np.ndarray) -> float:
        """Lemma 2's estimate of ‖o1, o2‖ from their projections."""
        self._require_built()
        p1 = self.projection.project(np.asarray(o1, dtype=np.float64))
        p2 = self.projection.project(np.asarray(o2, dtype=np.float64))
        return float(np.linalg.norm(p1 - p2) / np.sqrt(self.params.m))
